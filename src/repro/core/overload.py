"""The overload-resilience plane: admission control + graceful degradation.

The paper's only nod to oversubscription is that scheduling jitter grows
with "overload of server computation" — the emulator silently leaves its
validity envelope.  Lochin et al. (PAPERS.md) argue an emulator must
*know and report* when that happens; this module is the knowing half.

:class:`OverloadController` is a small state machine fed by the scan
path: every flush reports the worst scheduler lag of its batch plus the
current schedule depth.  An EWMA of the lag, together with depth as a
fraction of the schedule capacity, classifies the run into one of three
states::

    NOMINAL ──escalate──▶ PRESSURED ──escalate──▶ SATURATED
       ◀──recover (hysteresis)──┘ ◀──recover──────────┘

Escalation is immediate (a saturated server must shed *now*); recovery
steps down **one level at a time** after ``recovery_observations``
consecutive quiet observations, so a bursty load cannot flap the
controller.  Each state sheds the lowest-value work first:

* ``PRESSURED`` — trace sampling off, modest fire-window batching;
* ``SATURATED`` — additionally: per-packet delivery records coalesced
  into counters, frames already late by more than the shed horizon
  dropped with the dedicated ``deadline-shed`` cause, new ingest shed at
  the door once the schedule passes the admission depth, and a brief
  backpressure pause applied to receiver threads.

The controller itself is deployment-agnostic and pure (injected
``time_fn``, no I/O): the owning server wires ``on_transition`` to the
log/record/telemetry planes.  :class:`DeadlineAccounting` is the
companion bookkeeping: every delivery lands in an on-time / late /
missed bucket against a configurable lag budget, giving the run report
its real-time fidelity verdict.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import PoEmError

__all__ = [
    "OverloadState",
    "OverloadConfig",
    "OverloadController",
    "DeadlineAccounting",
]


class OverloadState:
    """The controller's three load regimes (ordered by severity)."""

    NOMINAL = "nominal"
    PRESSURED = "pressured"
    SATURATED = "saturated"

    ALL = (NOMINAL, PRESSURED, SATURATED)
    SEVERITY = {NOMINAL: 0, PRESSURED: 1, SATURATED: 2}


_ORDER = OverloadState.ALL
_SEV = OverloadState.SEVERITY


@dataclass(frozen=True)
class OverloadConfig:
    """Tuning knobs of the overload controller (see docs/overload.md).

    All lag thresholds derive from ``lag_budget`` so one number moves
    the whole envelope: a delivery within the budget is *on time*, an
    EWMA beyond it is *pressure*, beyond ``saturate_factor`` times it is
    *saturation*, and an individual frame already ``shed_lag_factor``
    budgets late is not worth delivering at all.
    """

    lag_budget: float = 0.010
    """On-time threshold (s) for a single delivery; anchors everything."""

    pressure_factor: float = 1.0
    """EWMA lag ≥ ``pressure_factor × lag_budget`` ⇒ at least PRESSURED."""

    saturate_factor: float = 5.0
    """EWMA lag ≥ ``saturate_factor × lag_budget`` ⇒ SATURATED."""

    shed_lag_factor: float = 10.0
    """A frame late by more than this many budgets is shed (SATURATED)."""

    depth_pressured: float = 0.5
    """Schedule depth as a capacity fraction ⇒ at least PRESSURED
    (ignored when the schedule is unbounded)."""

    depth_saturated: float = 0.9
    """Schedule depth as a capacity fraction ⇒ SATURATED."""

    admission_fraction: float = 0.8
    """While SATURATED, new ingest is shed at the door once depth
    reaches this capacity fraction — backpressure *before* the schedule
    overflows."""

    ewma_alpha: float = 0.25
    """EWMA smoothing weight for new lag observations."""

    recovery_observations: int = 5
    """Consecutive quiet observations required to step down one level."""

    fire_window_pressured: float = 0.001
    """Fire-window batching (s) under PRESSURED: near-due entries fire
    up to this much early, amortizing wakeups."""

    fire_window_saturated: float = 0.005
    """Fire-window batching (s) under SATURATED."""

    ingest_pause: float = 0.002
    """Receiver-thread pause (s) per ingested frame while SATURATED."""

    def __post_init__(self) -> None:
        if self.lag_budget <= 0.0:
            raise PoEmError(
                f"lag_budget must be positive, got {self.lag_budget}"
            )
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise PoEmError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        if self.recovery_observations < 1:
            raise PoEmError(
                "recovery_observations must be >= 1, got "
                f"{self.recovery_observations}"
            )
        for name in ("pressure_factor", "saturate_factor",
                     "shed_lag_factor"):
            if getattr(self, name) <= 0.0:
                raise PoEmError(f"{name} must be positive")
        if self.saturate_factor < self.pressure_factor:
            raise PoEmError(
                "saturate_factor must be >= pressure_factor"
            )
        for name in ("depth_pressured", "depth_saturated",
                     "admission_fraction"):
            v = getattr(self, name)
            if not 0.0 < v <= 1.0:
                raise PoEmError(
                    f"{name} must be a fraction in (0, 1], got {v}"
                )
        for name in ("fire_window_pressured", "fire_window_saturated",
                     "ingest_pause"):
            if getattr(self, name) < 0.0:
                raise PoEmError(f"{name} must be >= 0")


class OverloadController:
    """EWMA-lag + depth state machine driving graceful degradation.

    Thread model: :meth:`observe` runs on the scan/flush thread; the
    degradation properties (``fire_window``, ``shed_horizon``,
    ``admission_limit``, ...) are read lock-free from receiver threads —
    reading the current state string is atomic, and every consumer
    tolerates a one-observation-stale answer.  ``on_transition`` is
    invoked *outside* the controller lock, so owners may log/record from
    it without lock-order constraints.
    """

    def __init__(
        self,
        config: Optional[OverloadConfig] = None,
        *,
        capacity: Optional[int] = None,
        time_fn: Callable[[], float] = time.monotonic,
        on_transition: Optional[Callable[[str, str, dict], None]] = None,
    ) -> None:
        self.config = config if config is not None else OverloadConfig()
        self.capacity = capacity
        self.on_transition = on_transition
        self._time_fn = time_fn
        self._lock = threading.Lock()
        self._state = OverloadState.NOMINAL
        self._ewma = 0.0
        self._depth = 0
        self._quiet = 0
        self._since = time_fn()
        self._time_in = {s: 0.0 for s in OverloadState.ALL}
        self.transitions = 0
        self.shed_total = 0
        self.records_coalesced = 0
        cfg = self.config
        self._pressured_lag = cfg.lag_budget * cfg.pressure_factor
        self._saturated_lag = cfg.lag_budget * cfg.saturate_factor
        self._shed_horizon = cfg.lag_budget * cfg.shed_lag_factor
        if capacity is not None:
            self._depth_pressured: Optional[int] = max(
                int(capacity * cfg.depth_pressured), 1
            )
            self._depth_saturated: Optional[int] = max(
                int(capacity * cfg.depth_saturated), 1
            )
            self._admission_limit: Optional[int] = max(
                int(capacity * cfg.admission_fraction), 1
            )
        else:
            self._depth_pressured = None
            self._depth_saturated = None
            self._admission_limit = None
        self._m_transitions = None

    # -- classification ------------------------------------------------------

    def _classify(self, ewma: float, depth: int) -> str:
        if ewma >= self._saturated_lag or (
            self._depth_saturated is not None
            and depth >= self._depth_saturated
        ):
            return OverloadState.SATURATED
        if ewma >= self._pressured_lag or (
            self._depth_pressured is not None
            and depth >= self._depth_pressured
        ):
            return OverloadState.PRESSURED
        return OverloadState.NOMINAL

    def observe(self, lag: float, depth: int) -> str:
        """Fold one flush observation; returns the (possibly new) state.

        ``lag`` is the worst scheduler lag of the flushed batch (0 for
        an idle flush — idle observations are how the controller steps
        back toward NOMINAL after a burst).
        """
        if not math.isfinite(lag):
            lag = self._shed_horizon  # a broken stamp reads as overload
        elif lag < 0.0:
            lag = 0.0
        event: Optional[tuple[str, str, dict]] = None
        with self._lock:
            self._ewma += self.config.ewma_alpha * (lag - self._ewma)
            self._depth = depth
            target = self._classify(self._ewma, depth)
            current = self._state
            if _SEV[target] > _SEV[current]:
                event = self._transition_locked(target)
            elif _SEV[target] < _SEV[current]:
                self._quiet += 1
                if self._quiet >= self.config.recovery_observations:
                    # Hysteresis: one severity level per recovery span.
                    event = self._transition_locked(
                        _ORDER[_SEV[current] - 1]
                    )
            else:
                self._quiet = 0
            state = self._state
        if event is not None:
            self._notify(*event)
        return state

    def _transition_locked(self, new: str) -> tuple[str, str, dict]:
        old = self._state
        now = self._time_fn()
        self._time_in[old] += max(now - self._since, 0.0)
        self._since = now
        self._state = new
        self._quiet = 0
        self.transitions += 1
        return old, new, {
            "lag_ewma": self._ewma,
            "depth": self._depth,
            "t": now,
        }

    def _notify(self, old: str, new: str, info: dict) -> None:
        if self._m_transitions is not None:
            self._m_transitions.labels(new).inc()
        if self.on_transition is not None:
            self.on_transition(old, new, info)

    # -- shed bookkeeping ----------------------------------------------------

    def note_shed(self, n: int = 1) -> None:
        """Count entries dropped with the ``deadline-shed`` cause."""
        with self._lock:
            self.shed_total += n

    def note_coalesced(self, n: int = 1) -> None:
        """Count delivered frames whose per-packet records were folded
        into this counter instead of being written (SATURATED only)."""
        with self._lock:
            self.records_coalesced += n

    # -- degradation policy (lock-free reads from the hot path) ---------------

    @property
    def state(self) -> str:
        return self._state

    @property
    def severity(self) -> int:
        return _SEV[self._state]

    @property
    def lag_ewma(self) -> float:
        return self._ewma

    @property
    def allow_tracing(self) -> bool:
        """Trace sampling is the first work shed: NOMINAL only."""
        return self._state == OverloadState.NOMINAL

    @property
    def coalesce_records(self) -> bool:
        """Per-delivery records collapse to counters while SATURATED."""
        return self._state == OverloadState.SATURATED

    @property
    def fire_window(self) -> float:
        state = self._state
        if state == OverloadState.SATURATED:
            return self.config.fire_window_saturated
        if state == OverloadState.PRESSURED:
            return self.config.fire_window_pressured
        return 0.0

    @property
    def shed_horizon(self) -> Optional[float]:
        """Lag beyond which a due frame is shed (None unless SATURATED)."""
        if self._state == OverloadState.SATURATED:
            return self._shed_horizon
        return None

    @property
    def admission_limit(self) -> Optional[int]:
        """Schedule depth at which new ingest is shed at the door
        (None unless SATURATED, or when the schedule is unbounded)."""
        if self._state == OverloadState.SATURATED:
            return self._admission_limit
        return None

    @property
    def ingest_pause(self) -> float:
        """Backpressure pause for receiver threads (0 unless SATURATED)."""
        if self._state == OverloadState.SATURATED:
            return self.config.ingest_pause
        return 0.0

    # -- reporting -----------------------------------------------------------

    def _accumulated_locked(self, state: str) -> float:
        total = self._time_in[state]
        if self._state == state:
            total += max(self._time_fn() - self._since, 0.0)
        return total

    def time_in_state(self, state: str) -> float:
        """Seconds spent in ``state`` so far (including the current stay)."""
        with self._lock:
            return self._accumulated_locked(state)

    def degraded_seconds(self) -> float:
        """Total time spent outside NOMINAL (monotone non-decreasing)."""
        with self._lock:
            return (
                self._accumulated_locked(OverloadState.PRESSURED)
                + self._accumulated_locked(OverloadState.SATURATED)
            )

    def snapshot(self) -> dict:
        """JSON-friendly summary for ``health()`` and the run summary."""
        with self._lock:
            saturated = self._accumulated_locked(OverloadState.SATURATED)
            return {
                "state": self._state,
                "lag_ewma": self._ewma,
                "lag_budget": self.config.lag_budget,
                "depth": self._depth,
                "transitions": self.transitions,
                "shed": self.shed_total,
                "coalesced": self.records_coalesced,
                "degraded_seconds": (
                    self._accumulated_locked(OverloadState.PRESSURED)
                    + saturated
                ),
                "saturated_seconds": saturated,
            }

    def bind_telemetry(self, registry) -> None:
        """Register the overload metric catalog on an obs registry."""
        registry.gauge_fn(
            "poem_overload_severity",
            "Overload controller state (0 nominal, 1 pressured, "
            "2 saturated)",
            lambda: self.severity,
        )
        registry.gauge_fn(
            "poem_overload_lag_ewma_seconds",
            "EWMA of per-flush worst scheduler lag feeding the controller",
            lambda: self._ewma,
        )
        registry.counter_fn(
            "poem_deadline_shed_total",
            "Frames dropped with the deadline-shed cause under saturation",
            lambda: self.shed_total,
        )
        registry.counter_fn(
            "poem_records_coalesced_total",
            "Delivered frames whose per-packet records were coalesced "
            "into counters under saturation",
            lambda: self.records_coalesced,
        )
        registry.counter_fn(
            "poem_overload_degraded_seconds_total",
            "Cumulative seconds spent outside the NOMINAL state",
            self.degraded_seconds,
        )
        self._m_transitions = registry.counter(
            "poem_overload_transitions_total",
            "Overload controller state transitions, by destination state",
            labels=("to",),
        )


class DeadlineAccounting:
    """On-time / late / missed buckets for every delivery (Step 5-6).

    ``lag ≤ budget`` is on time, ``lag ≤ miss_factor × budget`` is late,
    anything beyond is a miss — the same 10× convention the forensics
    plane uses to escalate a lag warning to critical.  Counters are bare
    ints bumped from the delivery path (single scan thread per
    deployment); readers tolerate a torn-by-one snapshot.
    """

    __slots__ = ("budget", "miss_factor", "on_time", "late", "missed")

    def __init__(
        self, budget: float = 0.010, miss_factor: float = 10.0
    ) -> None:
        if budget <= 0.0:
            raise PoEmError(f"lag budget must be positive, got {budget}")
        if miss_factor < 1.0:
            raise PoEmError(
                f"miss_factor must be >= 1, got {miss_factor}"
            )
        self.budget = budget
        self.miss_factor = miss_factor
        self.on_time = 0
        self.late = 0
        self.missed = 0

    def note(self, lag: float) -> None:
        if lag <= self.budget:
            self.on_time += 1
        elif lag <= self.budget * self.miss_factor:
            self.late += 1
        else:
            self.missed += 1

    @property
    def total(self) -> int:
        return self.on_time + self.late + self.missed

    @property
    def miss_rate(self) -> float:
        """Fraction of deliveries beyond the miss threshold."""
        total = self.total
        return self.missed / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "budget": self.budget,
            "on_time": self.on_time,
            "late": self.late,
            "missed": self.missed,
        }
