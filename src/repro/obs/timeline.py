"""Chrome trace-event timeline export: the cluster, legible at a glance.

Not the replay scrubber — that is :mod:`repro.gui.timeline`, the ASCII
*emulation-time* view of a recording for terminals.  This module is the
**wall-clock machine view**: it renders pipeline spans, shard-hop IPC
stages, overload transitions, scene events, and profiler samples as
Chrome trace-event JSON, the format Perfetto (https://ui.perfetto.dev)
and ``chrome://tracing`` load directly.

Lane model (cluster runs):

* the parent process is pid 1; shard worker *w* is pid ``2 + w`` —
  every process gets its own named lane, so a 4-worker run shows five
  pid groups;
* a sampled span's stages render as ``"X"`` (complete) slices laid
  end-to-end from the span's wall-clock start: the parent keeps the
  ``ipc_encode`` stage, everything from ``ipc_queue`` (pipe dwell)
  onward lands on the owning shard's lane, and a ``shard-hop`` flow
  arrow (``"s"``/``"f"``) connects the two — the cross-process hop is
  *visible*, not inferred;
* profiler samples (:meth:`repro.obs.profiler.SamplingProfiler.
  recent_samples`) and crash-ring overload transitions are instant
  events on their own threads;
* scene events are **emulation-time** markers: their stamps are the
  virtual clock, not the machine clock, so they live on an explicitly
  labelled ``scene (emulation time)`` thread rather than pretending the
  two timebases align.  Wall-clock stamps are normalized so t=0 is the
  first sampled event; emulation stamps are near zero already.

Offline, :func:`timeline_from_recorder` rebuilds the same view from a
recording: persisted trace spans, the ``cluster-run`` event's shard
map (which is what maps spans onto worker lanes), and the ``profile``
scene event if the run recorded one.  ``poem analyze --timeline`` and
``GET /timeline`` are thin wrappers over these builders.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "PARENT_PID",
    "build_timeline",
    "timeline_from_recorder",
    "write_timeline",
]

#: pid lane of the parent/only process; shard worker ``w`` is ``2 + w``.
PARENT_PID = 1

#: Stages that run in the parent before a frame crosses the pipe.
_PARENT_STAGES = frozenset({"ipc_encode"})


def _shard_pid(shard: int) -> int:
    return 2 + int(shard)


class _Tids:
    """Integer tid allocation per (pid, thread name) + metadata events."""

    def __init__(self, events: list[dict[str, Any]]) -> None:
        self._events = events
        self._tids: dict[tuple[int, str], int] = {}
        self._pids: dict[int, str] = {}

    def pid(self, pid: int, name: str) -> int:
        if pid not in self._pids:
            self._pids[pid] = name
            self._events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": name},
                }
            )
            self._events.append(
                {
                    "name": "process_sort_index",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"sort_index": pid},
                }
            )
        return pid

    def tid(self, pid: int, name: str) -> int:
        key = (pid, name)
        tid = self._tids.get(key)
        if tid is None:
            tid = len([k for k in self._tids if k[0] == pid]) + 1
            self._tids[key] = tid
            self._events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": name},
                }
            )
        return tid


def _span_get(span: Any, field: str, default: Any = None) -> Any:
    if isinstance(span, Mapping):
        return span.get(field, default)
    return getattr(span, field, default)


def _scene_get(event: Any, field: str, default: Any = None) -> Any:
    if isinstance(event, Mapping):
        return event.get(field, default)
    return getattr(event, field, default)


def _normalize_shard_map(
    shard_map: Optional[Mapping[Any, Any]],
) -> dict[int, int]:
    if not shard_map:
        return {}
    out: dict[int, int] = {}
    for node, shard in shard_map.items():
        try:
            out[int(node)] = int(shard)
        except (TypeError, ValueError):
            continue
    return out


def build_timeline(
    *,
    spans: Iterable[Any] = (),
    scene_events: Iterable[Any] = (),
    samples: Iterable[Sequence[Any]] = (),
    transitions: Iterable[Mapping[str, Any]] = (),
    shard_map: Optional[Mapping[Any, Any]] = None,
    parent_role: str = "parent",
) -> dict[str, Any]:
    """Assemble one Perfetto-loadable trace dict.

    ``spans`` are :class:`~repro.obs.tracing.TraceSpan` objects or their
    ``as_dict`` forms; ``samples`` are the profiler's ``(wall t, thread,
    leaf)`` ring entries; ``transitions`` are flight-recorder rows with
    a wall-clock ``t``; ``shard_map`` (node → shard) routes each span's
    worker-side stages onto the owning shard's pid lane.
    """
    spans = list(spans)
    scene_events = list(scene_events)
    samples = [tuple(s) for s in samples]
    transitions = [dict(t) for t in transitions]
    shards = _normalize_shard_map(shard_map)

    # One wall-clock origin across every wall-stamped feed, so lanes
    # line up.  (Scene events are emulation time and stay unshifted.)
    wall_stamps = [
        float(t)
        for t in (
            [_span_get(s, "t_start", None) for s in spans]
            + [s[0] for s in samples if len(s) >= 1]
            + [t.get("t") for t in transitions]
        )
        if t is not None
    ]
    t0 = min(wall_stamps) if wall_stamps else 0.0

    def us(t: float) -> float:
        return (float(t) - t0) * 1e6

    events: list[dict[str, Any]] = []
    tids = _Tids(events)
    parent = tids.pid(PARENT_PID, parent_role)
    seen_shards: set[int] = set()

    def shard_lane(shard: int) -> int:
        pid = _shard_pid(shard)
        if shard not in seen_shards:
            seen_shards.add(shard)
            tids.pid(pid, f"shard-{shard}")
        return pid

    for span in spans:
        stages = _span_get(span, "stages", ()) or ()
        t_start = _span_get(span, "t_start", None)
        if t_start is None or not stages:
            continue
        trace_id = _span_get(span, "trace_id", 0)
        source = _span_get(span, "source", None)
        shard = shards.get(int(source)) if source is not None else None
        args = {
            "trace_id": trace_id,
            "source": source,
            "seqno": _span_get(span, "seqno"),
            "outcome": _span_get(span, "outcome"),
            "lag": _span_get(span, "lag"),
        }
        cursor = us(t_start)
        hopped = shard is None  # no shard → everything stays on parent
        pid = parent
        tid = tids.tid(parent, "pipeline")
        for name, duration in stages:
            if not hopped and name not in _PARENT_STAGES:
                # The frame crosses the pipe here: arrow from the
                # parent's encode to the worker's first stage.
                events.append(
                    {
                        "name": "shard-hop",
                        "cat": "ipc",
                        "ph": "s",
                        "id": int(trace_id),
                        "ts": cursor,
                        "pid": pid,
                        "tid": tid,
                    }
                )
                pid = shard_lane(int(shard))
                tid = tids.tid(pid, "pipeline")
                events.append(
                    {
                        "name": "shard-hop",
                        "cat": "ipc",
                        "ph": "f",
                        "bp": "e",
                        "id": int(trace_id),
                        "ts": cursor,
                        "pid": pid,
                        "tid": tid,
                    }
                )
                hopped = True
            dur = max(float(duration), 0.0) * 1e6
            events.append(
                {
                    "name": str(name),
                    "cat": "pipeline",
                    "ph": "X",
                    "ts": cursor,
                    "dur": dur,
                    "pid": pid,
                    "tid": tid,
                    "args": args,
                }
            )
            cursor += dur

    for t, thread, leaf in (
        s for s in samples if len(s) >= 3
    ):
        tid = tids.tid(parent, f"samples:{thread}")
        events.append(
            {
                "name": str(leaf),
                "cat": "sample",
                "ph": "i",
                "s": "t",
                "ts": us(float(t)),
                "pid": parent,
                "tid": tid,
            }
        )

    for row in transitions:
        t = row.get("t")
        if t is None:
            continue
        tid = tids.tid(parent, "overload")
        events.append(
            {
                "name": str(row.get("event", "overload")),
                "cat": "overload",
                "ph": "i",
                "s": "p",
                "ts": us(float(t)),
                "pid": parent,
                "tid": tid,
                "args": {
                    k: v for k, v in row.items() if k not in ("t", "event")
                },
            }
        )

    for event in scene_events:
        t = _scene_get(event, "time", None)
        kind = _scene_get(event, "kind", "scene")
        if t is None:
            continue
        tid = tids.tid(parent, "scene (emulation time)")
        details = _scene_get(event, "details", {}) or {}
        events.append(
            {
                "name": str(kind),
                "cat": "scene",
                "ph": "i",
                "s": "p",
                "ts": float(t) * 1e6,  # emulation seconds, unshifted
                "pid": parent,
                "tid": tid,
                "args": {
                    "node": _scene_get(event, "node"),
                    **{
                        k: v
                        for k, v in details.items()
                        # the profile/cluster payloads are huge; keep
                        # marker args skimmable
                        if k not in ("stacks", "per_worker", "shard_map")
                    },
                },
            }
        )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs.timeline",
            "wall_t0": t0,
            "spans": len(spans),
            "samples": len(samples),
        },
    }


def timeline_from_recorder(
    recorder: Any,
    *,
    profiler: Optional[Any] = None,
    transitions: Iterable[Mapping[str, Any]] = (),
) -> dict[str, Any]:
    """Build the timeline from a recording (offline ``poem analyze
    --timeline`` and the live ``/timeline`` endpoint share this).

    The ``cluster-run`` scene event's shard map, when present, is what
    puts each span's worker stages on the right shard lane.
    """
    scene_events = list(recorder.scene_events())
    shard_map: Optional[Mapping[Any, Any]] = None
    for event in scene_events:
        if _scene_get(event, "kind") == "cluster-run":
            details = _scene_get(event, "details", {}) or {}
            shard_map = details.get("shard_map") or shard_map
    samples: list[Sequence[Any]] = []
    if profiler is not None:
        samples = list(profiler.recent_samples())
    return build_timeline(
        spans=recorder.spans(),
        scene_events=scene_events,
        samples=samples,
        transitions=transitions,
        shard_map=shard_map,
    )


def write_timeline(
    path: Union[str, Path], timeline: Mapping[str, Any]
) -> str:
    """Serialize one timeline dict to ``path`` (JSON, Perfetto-ready)."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(timeline, default=str))
    return str(target)
