"""Sampled pipeline tracing through the paper's §3.2 Steps 1–7.

A :class:`PipelineTracer` samples one in ``sample_every`` ingested frames
and follows the sampled frame through every stage of the forwarding
pipeline, recording a per-stage duration:

========  =================  ==============================================
step      stage name         measured interval
========  =================  ==============================================
1         ``receive``        transport frame handling (decode → ingest)
2         ``neighbor_lookup``  channel-indexed neighbor-table fan-out read
3         ``drop_decision``  loss draws + ``t_forward`` computation
4         ``schedule_push``  listing into the forward schedule
5         ``scan_wakeup``    ``actual_fire − t_forward`` — scheduler lag,
                             the real-time deadline slack
6         ``send``           delivery callback (outbox enqueue / dispatch)
7         ``record``         recorder append for the flush batch
========  =================  ==============================================

Completed spans land in a bounded ring (``recent()``, the console's
``trace`` command), are optionally persisted through the
:class:`~repro.core.recording.Recorder` (``sink``) so replay can
reconstruct pipeline timing, and feed the per-stage duration histogram
(``stage_hist``) when one is bound.

Cost model: the *unsampled* path pays exactly one counter decrement in
:meth:`maybe_start` per ingest (the countdown race between threads is
benign — it only jitters the effective sampling rate, never corrupts a
span).  All dict/lock traffic happens on sampled frames only.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Optional

__all__ = ["TraceSpan", "Trace", "PipelineTracer", "PIPELINE_STAGES",
           "IPC_STAGES", "format_span", "span_from_dict"]

PIPELINE_STAGES = (
    "receive",
    "neighbor_lookup",
    "drop_decision",
    "schedule_push",
    "scan_wakeup",
    "send",
    "record",
)
"""Canonical stage names, in pipeline order (§3.2 Steps 1–7)."""

IPC_STAGES = (
    "ipc_encode",
    "ipc_queue",
    "ipc_decode",
)
"""Cross-process stages prepended by the sharded cluster: wire-encode in
the parent, pipe dwell (worker receive stamp − batch send stamp), and
wire-decode in the worker.  A cluster-traced packet's span reads
``ipc_encode → ipc_queue → ipc_decode → receive → … → record``."""


@dataclass(frozen=True, slots=True)
class TraceSpan:
    """One completed sampled-packet trace."""

    trace_id: int
    source: int
    seqno: int
    channel: int
    sender: int
    receiver: Optional[int]
    t_start: float
    """Wall-clock time (``time.time``) the trace began."""
    outcome: str
    """``delivered``, a drop reason, or an eviction marker."""
    stages: tuple[tuple[str, float], ...]
    """Ordered ``(stage_name, duration_seconds)`` pairs."""
    t_forward: Optional[float] = None
    """Scheduled forward time (None when dropped before scheduling)."""
    lag: Optional[float] = None
    """Scheduler lag ``actual_fire − t_forward`` (the deadline metric)."""

    def stage_names(self) -> tuple[str, ...]:
        return tuple(name for name, _ in self.stages)

    def duration(self) -> float:
        """Total measured pipeline time across all stages."""
        return sum(d for _, d in self.stages)

    def as_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "source": self.source,
            "seqno": self.seqno,
            "channel": self.channel,
            "sender": self.sender,
            "receiver": self.receiver,
            "t_start": self.t_start,
            "outcome": self.outcome,
            "t_forward": self.t_forward,
            "lag": self.lag,
            "stages": [[n, d] for n, d in self.stages],
        }


class Trace:
    """A sampled packet's in-flight working record (mutable)."""

    __slots__ = (
        "trace_id", "t_start", "source", "seqno", "channel", "sender",
        "receiver", "t_forward", "lag", "stages",
    )

    def __init__(self, trace_id: int) -> None:
        self.trace_id = trace_id
        self.t_start = time.time()
        self.source = -1
        self.seqno = -1
        self.channel = -1
        self.sender = -1
        self.receiver: Optional[int] = None
        self.t_forward: Optional[float] = None
        self.lag: Optional[float] = None
        self.stages: list[tuple[str, float]] = []

    def bind(self, sender, packet) -> None:
        """Attach packet identity (called by the first pipeline layer
        that has the decoded packet in hand)."""
        self.sender = int(sender)
        self.source = int(packet.source)
        self.seqno = int(packet.seqno)
        self.channel = int(packet.channel)

    def stage(self, name: str, duration: float) -> None:
        self.stages.append((name, duration))

    @property
    def key(self) -> tuple[int, int]:
        """In-flight correlation key: (source, seqno)."""
        return (self.source, self.seqno)


class PipelineTracer:
    """Sampling trace collector shared by one deployment's pipeline."""

    def __init__(
        self,
        sample_every: int = 128,
        capacity: int = 512,
        max_inflight: int = 1024,
        sink: Optional[Callable[[TraceSpan], None]] = None,
    ) -> None:
        if sample_every < 1:
            raise ValueError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        self.sample_every = int(sample_every)
        self.max_inflight = max(int(max_inflight), 1)
        self.sink = sink
        self.stage_hist = None  # bound by Telemetry: labels=("stage",)
        #: True once a transport layer owns the sampling decision, so the
        #: engine must not double-sample (see ForwardingEngine.ingest).
        self.delegated = False
        # Sample the very first frame, then one in every sample_every.
        self._countdown = 1
        self._ids = itertools.count(1)
        self._inflight: dict[tuple[int, int], Trace] = {}
        self._recent: deque[TraceSpan] = deque(maxlen=max(int(capacity), 1))
        self._lock = threading.Lock()
        self.sampled = 0
        self.completed = 0
        self.evicted = 0

    # -- sampling (the only hot-path entry point) ------------------------------

    def maybe_start(self) -> Optional[Trace]:
        """1-in-N sampling decision; returns a live Trace or None.

        Unsynchronized on purpose: a racing decrement merely perturbs
        the sampling interval.  The first call always samples, so every
        run yields at least one span.
        """
        self._countdown -= 1  # poem: ignore[POEM008] — see docstring
        if self._countdown > 0:
            return None
        self._countdown = self.sample_every  # poem: ignore[POEM008]
        self.sampled += 1
        return Trace(next(self._ids))

    # -- ingest-side completion -------------------------------------------------

    def commit(self, trace: Trace, scheduled, drops) -> None:
        """Called at the end of ingest: park the trace for the flush
        stages when anything was scheduled, otherwise finalize it with
        the drop outcome."""
        if scheduled:
            trace.t_forward = scheduled[0].t_forward
            self.park(trace)
        else:
            outcome = drops[-1][1] if drops else "no-neighbors"
            self.finalize(trace, outcome)

    def park(self, trace: Trace) -> None:
        """Hold a sampled trace in the inflight table until a later
        pipeline layer finalizes it — the flush stages in-process, or
        the worker-span merge when the cluster parent owns the trace."""
        with self._lock:
            while len(self._inflight) >= self.max_inflight:
                _, stale = self._inflight.popitem()
                self.evicted += 1
                self._finalize_locked(stale, "trace-evicted")
            self._inflight[trace.key] = trace

    # -- flush-side lookup ------------------------------------------------------

    @property
    def active(self) -> bool:
        """True when any sampled packet awaits its flush stages (lets
        the scan path skip per-entry key construction entirely)."""
        return bool(self._inflight)

    def inflight_pop(self, key: tuple[int, int]) -> Optional[Trace]:
        with self._lock:
            return self._inflight.pop(key, None)

    # -- finalization -----------------------------------------------------------

    def finalize(self, trace: Trace, outcome: str) -> None:
        with self._lock:
            self._finalize_locked(trace, outcome)

    def _finalize_locked(self, trace: Trace, outcome: str) -> None:
        span = TraceSpan(
            trace_id=trace.trace_id,
            source=trace.source,
            seqno=trace.seqno,
            channel=trace.channel,
            sender=trace.sender,
            receiver=trace.receiver,
            t_start=trace.t_start,
            outcome=outcome,
            stages=tuple(trace.stages),
            t_forward=trace.t_forward,
            lag=trace.lag,
        )
        self._emit_locked(span)

    def complete_span(self, span: TraceSpan) -> None:
        """Adopt an externally assembled span (the cluster parent merges
        parent-side IPC stages with a worker's shipped-back span and
        feeds the result here so ring/histogram/sink see one contiguous
        cross-process trace)."""
        with self._lock:
            self._emit_locked(span)

    def _emit_locked(self, span: TraceSpan) -> None:
        self._recent.append(span)
        self.completed += 1
        hist = self.stage_hist
        if hist is not None:
            try:
                for name, dur in span.stages:
                    hist.labels(name).observe(dur)
            # Telemetry boundary: metrics must never break the pipeline.
            except Exception:  # poem: ignore[POEM005]
                pass
        sink = self.sink
        if sink is not None:
            try:
                sink(span)
            # Telemetry boundary: a broken recorder sink must never
            # break the pipeline it observes.
            except Exception:  # poem: ignore[POEM005]
                pass

    # -- introspection ----------------------------------------------------------

    def recent(self, n: Optional[int] = None) -> list[TraceSpan]:
        """The most recent completed spans, oldest first."""
        with self._lock:
            spans = list(self._recent)
        return spans if n is None else spans[-n:]

    def clear(self) -> None:
        with self._lock:
            self._recent.clear()
            self._inflight.clear()


def span_from_dict(d: dict) -> TraceSpan:
    """Inverse of :meth:`TraceSpan.as_dict` (worker→parent ship-back)."""
    return TraceSpan(
        trace_id=int(d["trace_id"]),
        source=int(d["source"]),
        seqno=int(d["seqno"]),
        channel=int(d["channel"]),
        sender=int(d["sender"]),
        receiver=None if d.get("receiver") is None else int(d["receiver"]),
        t_start=float(d["t_start"]),
        outcome=str(d["outcome"]),
        stages=tuple(
            (str(name), float(dur)) for name, dur in d.get("stages", [])
        ),
        t_forward=(
            None if d.get("t_forward") is None else float(d["t_forward"])
        ),
        lag=None if d.get("lag") is None else float(d["lag"]),
    )


def format_span(span: TraceSpan) -> str:
    """Render one span as the console's ``trace`` command line block."""
    head = (
        f"trace #{span.trace_id}  src={span.source} seq={span.seqno} "
        f"ch={span.channel} sender={span.sender}"
        + (f" recv={span.receiver}" if span.receiver is not None else "")
        + f"  outcome={span.outcome}"
    )
    if span.lag is not None:
        head += f"  lag={span.lag * 1e6:.1f}us"
    lines = [head]
    for name, dur in span.stages:
        lines.append(f"    {name:<16} {dur * 1e6:10.2f} us")
    lines.append(f"    {'total':<16} {span.duration() * 1e6:10.2f} us")
    return "\n".join(lines)
