"""Localhost HTTP exposition: ``/metrics``, ``/health``, ``/trace``,
``/report``, ``/flight``, ``/profile``, ``/timeline``.

A tiny stdlib :mod:`http.server` wrapper that a deployment can hang off
its telemetry bundle:

* ``GET /metrics`` — Prometheus text format
  (:meth:`repro.obs.metrics.MetricsRegistry.render`), scrapable by any
  collector;
* ``GET /health`` — the deployment's ``health()`` snapshot as JSON (the
  same dict the console's ``health`` command renders);
* ``GET /trace`` — recent sampled pipeline spans as JSON
  (``?n=10`` limits the count);
* ``GET /report`` — the forensics plane's analysis of the deployment's
  recorder-so-far (:func:`repro.analysis.analyze`) as a self-contained
  HTML page; ``?format=json`` or ``?format=text`` for the other
  renderers.  404 when the deployment exposes no recorder.
* ``GET /flight`` — the process's crash flight recorder (last events,
  spans, overload transitions) as the same JSON artifact it would dump
  on death — a *pre-mortem* peek at what a post-mortem would show.
* ``GET /profile`` — the process profiler's collapsed stacks
  (flamegraph.pl input).  ``?seconds=N`` samples a fresh window first
  (on the running profiler, or an ephemeral burst sampler when none is
  installed); ``?format=json`` returns the snapshot dict,
  ``?format=summary`` the per-thread self-time text.
* ``GET /timeline`` — the wall-clock Chrome trace-event timeline
  (:mod:`repro.obs.timeline`): recent spans, profiler samples, and
  overload transitions, ready for https://ui.perfetto.dev.

Every route answers ``HEAD`` with the same status/headers (correct
``Content-Length``, no body), and every error — 404 included — carries
a JSON body, so callers never have to sniff content types on failures.

Bound to localhost by default — this is an *operator* surface, not a
public one; anything wider belongs behind a real reverse proxy.  The
server runs on one daemon thread (``poem-metrics-http``) and per-request
handler threads, all torn down by :meth:`TelemetryHTTPServer.stop`.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

from ..core.supervision import SupervisedThread
from .metrics import MetricsRegistry
from .tracing import PipelineTracer

__all__ = ["TelemetryHTTPServer"]

#: Ceiling on ``/profile?seconds=N`` burst windows (one handler thread
#: sleeps through the window; it must not be parkable forever).
MAX_PROFILE_WINDOW = 60.0


class _Handler(BaseHTTPRequestHandler):
    # Injected by TelemetryHTTPServer.start() via a subclass attribute.
    registry: MetricsRegistry
    health_fn: Optional[Callable[[], dict]]
    tracer: Optional[PipelineTracer]
    recorder = None  # Optional[repro.core.recording.Recorder]
    profiler = None  # Optional[repro.obs.profiler.SamplingProfiler]

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle(include_body=True)

    def do_HEAD(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._handle(include_body=False)

    def _handle(self, include_body: bool) -> None:
        try:
            code, body, ctype = self._route()
        except Exception as exc:  # noqa: BLE001 — exposition must not crash
            code = 500
            body = json.dumps({"error": str(exc)}).encode()
            ctype = "application/json"
        self._send(code, body, ctype, include_body=include_body)

    def _route(self) -> tuple[int, bytes, str]:
        parsed = urlparse(self.path)
        if parsed.path == "/metrics":
            return (
                200,
                self.registry.render().encode(),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if parsed.path == "/health":
            if self.health_fn is None:
                return self._error(404, "no health source")
            body = json.dumps(self.health_fn(), default=str).encode()
            return 200, body, "application/json"
        if parsed.path == "/trace":
            if self.tracer is None:
                return self._error(404, "tracing disabled")
            qs = parse_qs(parsed.query)
            n = None
            if "n" in qs:
                try:
                    n = max(int(qs["n"][0]), 0)
                except ValueError:
                    n = None
            spans = [s.as_dict() for s in self.tracer.recent(n)]
            body = json.dumps({"spans": spans}, default=str).encode()
            return 200, body, "application/json"
        if parsed.path == "/report":
            if self.recorder is None:
                return self._error(404, "no recorder attached")
            # Lazy import: obs must stay importable without the
            # analysis plane (and analysis imports core, which
            # imports obs — the cycle only resolves lazily).
            from ..analysis.report import (
                analyze, render_html, render_json, render_text,
            )

            qs = parse_qs(parsed.query)
            fmt = qs.get("format", ["html"])[0]
            report = analyze(self.recorder)
            if fmt == "json":
                return 200, render_json(report).encode(), "application/json"
            if fmt == "text":
                return (
                    200,
                    render_text(report).encode(),
                    "text/plain; charset=utf-8",
                )
            return 200, render_html(report).encode(), "text/html; charset=utf-8"
        if parsed.path == "/flight":
            from .flightrec import get_default

            flight = get_default()
            if flight is None:
                return self._error(404, "no flight recorder")
            body = json.dumps(
                flight.snapshot(reason="http"), default=str
            ).encode()
            return 200, body, "application/json"
        if parsed.path == "/profile":
            return self._profile(parse_qs(parsed.query))
        if parsed.path == "/timeline":
            return self._timeline()
        return self._error(404, "not found", path=parsed.path)

    def _profile(self, qs: dict) -> tuple[int, bytes, str]:
        from . import profiler as profiler_mod
        from .profiler import SamplingProfiler, format_profile

        prof = self.profiler or profiler_mod.get_default()
        seconds = None
        if "seconds" in qs:
            try:
                seconds = min(
                    max(float(qs["seconds"][0]), 0.0), MAX_PROFILE_WINDOW
                )
            except ValueError:
                seconds = None
        fmt = qs.get("format", ["collapsed"])[0]
        if seconds:
            if prof is not None and prof.running:
                # Window the continuous profiler: diff its folded table
                # across the requested interval.
                before = prof.folded()
                time.sleep(seconds)
                after = prof.folded()
                stacks = {
                    key: count - before.get(key, 0)
                    for key, count in after.items()
                    if count - before.get(key, 0) > 0
                }
                snapshot = prof.snapshot(top=0)
                snapshot["stacks"] = stacks
                snapshot["window_seconds"] = seconds
            else:
                burst = SamplingProfiler(role="burst")
                burst.start()
                time.sleep(seconds)
                burst.stop()
                stacks = burst.folded()
                snapshot = burst.snapshot()
                snapshot["window_seconds"] = seconds
        else:
            if prof is None:
                return self._error(
                    404,
                    "no profiler running; pass ?seconds=N for a burst "
                    "sample",
                )
            stacks = prof.folded()
            snapshot = prof.snapshot()
        if fmt == "json":
            return (
                200,
                json.dumps(snapshot, default=str).encode(),
                "application/json",
            )
        if fmt == "summary":
            return (
                200,
                (format_profile(stacks) + "\n").encode(),
                "text/plain; charset=utf-8",
            )
        lines = [
            f"{key} {count}"
            for key, count in sorted(
                stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        body = ("\n".join(lines) + "\n" if lines else "").encode()
        return 200, body, "text/plain; charset=utf-8"

    def _timeline(self) -> tuple[int, bytes, str]:
        from . import profiler as profiler_mod
        from .flightrec import get_default as get_flight
        from .timeline import build_timeline

        prof = self.profiler or profiler_mod.get_default()
        flight = get_flight()
        spans = self.tracer.recent(None) if self.tracer is not None else []
        timeline = build_timeline(
            spans=spans,
            samples=prof.recent_samples() if prof is not None else (),
            transitions=(
                flight.snapshot(reason="http").get("transitions", [])
                if flight is not None
                else ()
            ),
        )
        return (
            200,
            json.dumps(timeline, default=str).encode(),
            "application/json",
        )

    @staticmethod
    def _error(code: int, message: str, **extra: str) -> tuple[int, bytes, str]:
        body = json.dumps({"error": message, **extra}).encode()
        return code, body, "application/json"

    def _send(
        self,
        code: int,
        body: bytes,
        ctype: str,
        *,
        include_body: bool = True,
    ) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        # Content-Length always reflects the GET body — HEAD answers
        # with the same headers and an empty body, per the RFC.
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        if include_body:
            self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # silence stderr chatter
        pass


class TelemetryHTTPServer:
    """Lifecycle wrapper around the exposition endpoint."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        health_fn: Optional[Callable[[], dict]] = None,
        tracer: Optional[PipelineTracer] = None,
        recorder=None,
        profiler=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._health_fn = health_fn
        self._tracer = tracer
        self._recorder = recorder
        self._profiler = profiler
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[SupervisedThread] = None

    def start(self) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        if self._httpd is not None:
            return self.address
        # health_fn must be wrapped in staticmethod: a plain function
        # stored as a class attribute turns into a bound method, which
        # would pass the handler instance to a zero-arg callback.
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "registry": self._registry,
                "health_fn": (
                    staticmethod(self._health_fn)
                    if self._health_fn is not None
                    else None
                ),
                "tracer": self._tracer,
                "recorder": self._recorder,
                "profiler": self._profiler,
            },
        )
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        # Supervised: a crash in serve_forever() restarts the accept
        # loop with backoff; shutdown() still returns it cleanly.
        self._thread = SupervisedThread(
            "poem-metrics-http",
            self._httpd.serve_forever,
            restartable=True,
            should_run=lambda: self._httpd is not None,
        ).start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("telemetry HTTP server not started")
        return self._httpd.server_address[:2]

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None and thread.is_alive():
            thread.stop(timeout=2.0)
