"""Localhost HTTP exposition: ``/metrics``, ``/health``, ``/trace``,
``/report``, ``/flight``.

A tiny stdlib :mod:`http.server` wrapper that a deployment can hang off
its telemetry bundle:

* ``GET /metrics`` — Prometheus text format
  (:meth:`repro.obs.metrics.MetricsRegistry.render`), scrapable by any
  collector;
* ``GET /health`` — the deployment's ``health()`` snapshot as JSON (the
  same dict the console's ``health`` command renders);
* ``GET /trace`` — recent sampled pipeline spans as JSON
  (``?n=10`` limits the count);
* ``GET /report`` — the forensics plane's analysis of the deployment's
  recorder-so-far (:func:`repro.analysis.analyze`) as a self-contained
  HTML page; ``?format=json`` or ``?format=text`` for the other
  renderers.  404 when the deployment exposes no recorder.
* ``GET /flight`` — the process's crash flight recorder (last events,
  spans, overload transitions) as the same JSON artifact it would dump
  on death — a *pre-mortem* peek at what a post-mortem would show.

Bound to localhost by default — this is an *operator* surface, not a
public one; anything wider belongs behind a real reverse proxy.  The
server runs on one daemon thread (``poem-metrics-http``) and per-request
handler threads, all torn down by :meth:`TelemetryHTTPServer.stop`.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Optional
from urllib.parse import parse_qs, urlparse

from ..core.supervision import SupervisedThread
from .metrics import MetricsRegistry
from .tracing import PipelineTracer

__all__ = ["TelemetryHTTPServer"]


class _Handler(BaseHTTPRequestHandler):
    # Injected by TelemetryHTTPServer.start() via a subclass attribute.
    registry: MetricsRegistry
    health_fn: Optional[Callable[[], dict]]
    tracer: Optional[PipelineTracer]
    recorder = None  # Optional[repro.core.recording.Recorder]

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/metrics":
                body = self.registry.render().encode()
                ctype = "text/plain; version=0.0.4; charset=utf-8"
            elif parsed.path == "/health":
                if self.health_fn is None:
                    self._send(404, b'{"error": "no health source"}',
                               "application/json")
                    return
                body = json.dumps(self.health_fn(), default=str).encode()
                ctype = "application/json"
            elif parsed.path == "/trace":
                if self.tracer is None:
                    self._send(404, b'{"error": "tracing disabled"}',
                               "application/json")
                    return
                qs = parse_qs(parsed.query)
                n = None
                if "n" in qs:
                    try:
                        n = max(int(qs["n"][0]), 0)
                    except ValueError:
                        n = None
                spans = [s.as_dict() for s in self.tracer.recent(n)]
                body = json.dumps({"spans": spans}, default=str).encode()
                ctype = "application/json"
            elif parsed.path == "/report":
                if self.recorder is None:
                    self._send(404, b'{"error": "no recorder attached"}',
                               "application/json")
                    return
                # Lazy import: obs must stay importable without the
                # analysis plane (and analysis imports core, which
                # imports obs — the cycle only resolves lazily).
                from ..analysis.report import (
                    analyze, render_html, render_json, render_text,
                )

                qs = parse_qs(parsed.query)
                fmt = qs.get("format", ["html"])[0]
                report = analyze(self.recorder)
                if fmt == "json":
                    body = render_json(report).encode()
                    ctype = "application/json"
                elif fmt == "text":
                    body = render_text(report).encode()
                    ctype = "text/plain; charset=utf-8"
                else:
                    body = render_html(report).encode()
                    ctype = "text/html; charset=utf-8"
            elif parsed.path == "/flight":
                from .flightrec import get_default

                flight = get_default()
                if flight is None:
                    self._send(404, b'{"error": "no flight recorder"}',
                               "application/json")
                    return
                body = json.dumps(
                    flight.snapshot(reason="http"), default=str
                ).encode()
                ctype = "application/json"
            else:
                self._send(404, b"not found\n", "text/plain")
                return
        except Exception as exc:  # noqa: BLE001 — exposition must not crash
            self._send(
                500,
                json.dumps({"error": str(exc)}).encode(),
                "application/json",
            )
            return
        self._send(200, body, ctype)

    def _send(self, code: int, body: bytes, ctype: str) -> None:
        self.send_response(code)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt: str, *args) -> None:  # silence stderr chatter
        pass


class TelemetryHTTPServer:
    """Lifecycle wrapper around the exposition endpoint."""

    def __init__(
        self,
        registry: MetricsRegistry,
        *,
        health_fn: Optional[Callable[[], dict]] = None,
        tracer: Optional[PipelineTracer] = None,
        recorder=None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._registry = registry
        self._health_fn = health_fn
        self._tracer = tracer
        self._recorder = recorder
        self._host = host
        self._port = port
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[SupervisedThread] = None

    def start(self) -> tuple[str, int]:
        """Bind and serve; returns the bound (host, port)."""
        if self._httpd is not None:
            return self.address
        # health_fn must be wrapped in staticmethod: a plain function
        # stored as a class attribute turns into a bound method, which
        # would pass the handler instance to a zero-arg callback.
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "registry": self._registry,
                "health_fn": (
                    staticmethod(self._health_fn)
                    if self._health_fn is not None
                    else None
                ),
                "tracer": self._tracer,
                "recorder": self._recorder,
            },
        )
        self._httpd = ThreadingHTTPServer((self._host, self._port), handler)
        self._httpd.daemon_threads = True
        # Supervised: a crash in serve_forever() restarts the accept
        # loop with backoff; shutdown() still returns it cleanly.
        self._thread = SupervisedThread(
            "poem-metrics-http",
            self._httpd.serve_forever,
            restartable=True,
            should_run=lambda: self._httpd is not None,
        ).start()
        return self.address

    @property
    def address(self) -> tuple[str, int]:
        if self._httpd is None:
            raise RuntimeError("telemetry HTTP server not started")
        return self._httpd.server_address[:2]

    def stop(self) -> None:
        httpd, thread = self._httpd, self._thread
        self._httpd = self._thread = None
        if httpd is not None:
            httpd.shutdown()
            httpd.server_close()
        if thread is not None and thread.is_alive():
            thread.stop(timeout=2.0)
