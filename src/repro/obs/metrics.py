"""Thread-safe metrics primitives: Counter, Gauge, Histogram, Registry.

Dependency-free runtime telemetry for the PoEm server stack.  Design
constraints (docs/observability.md):

* **Ingest fast path stays hot.**  :class:`Counter` and :class:`Histogram`
  keep one *shard* per writer thread (a plain Python list cell reached
  through ``threading.local``), so an increment is an unsynchronized
  in-place add on thread-private storage — no lock, no CAS.  Shards are
  folded under a lock only on *read* (scrapes, snapshots), which is rare
  and off the forwarding path.  PR 2's 58.8 µs broadcast-ingest number
  must not regress more than 5 % with telemetry enabled.
* **Fixed log-scale buckets.**  Histograms use geometric bucket bounds
  (quarter-decades from 1 µs to 10 s by default) so one layout serves
  per-stage pipeline durations and the scheduler-lag deadline metric
  without per-run tuning.
* **Prometheus-text exposition.**  :meth:`MetricsRegistry.render` emits
  the standard ``# HELP``/``# TYPE`` + samples format consumed by any
  scraper; :meth:`MetricsRegistry.snapshot` returns the same data as a
  JSON-friendly dict for :func:`repro.stats.export.export_metrics_json`.

Label support is deliberately minimal: a metric family declares its label
*names* at registration and hands out per-label-value children via
:meth:`MetricFamily.labels` (cached, so steady-state lookup is one dict
hit).  That covers the stack's needs (drop reasons, pipeline stages,
wire encodings) without growing a dependency.
"""

from __future__ import annotations

import math
import threading
import time
from bisect import bisect_left
from typing import Any, Callable, Iterable, Optional, Sequence, Union

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "SnapshotMerger",
    "default_latency_buckets",
]


def default_latency_buckets() -> tuple[float, ...]:
    """Fixed log-scale bucket upper bounds: quarter-decades, 1 µs → 10 s.

    29 finite buckets (a +Inf bucket is implicit); geometric growth of
    ``10**0.25 ≈ 1.78×`` keeps relative quantile error below ~39 % per
    bucket — plenty for latency/deadline telemetry.
    """
    return tuple(10.0 ** (-6 + i / 4.0) for i in range(29))


_DEFAULT_BUCKETS = default_latency_buckets()


class Counter:
    """Monotonic counter with per-thread shards folded on read.

    ``inc`` touches only thread-private storage (one list cell reached
    through ``threading.local``), so concurrent writers never contend.
    A shard created by a thread that later exits stays referenced from
    ``_shards`` — its contribution to :meth:`value` is never lost.
    """

    __slots__ = ("name", "help", "label_values", "_shards", "_local",
                 "_lock", "_fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        label_values: tuple[tuple[str, str], ...] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.label_values = label_values
        self._shards: list[list[float]] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._fn = fn

    def inc(self, n: Union[int, float] = 1) -> None:
        """Add ``n`` (must be >= 0) to this thread's shard. Lock-free."""
        try:
            self._local.cell[0] += n
        except AttributeError:
            cell = [float(n)]
            self._local.cell = cell
            with self._lock:
                self._shards.append(cell)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """(Re)bind a read-time callback.

        A callback counter mirrors a total already maintained elsewhere
        (e.g. the engine's lock-folded ``ingested``) at *zero* hot-path
        cost — the scrape pays one call, the forwarding path nothing.
        ``inc`` contributions are added on top of the callback value.
        """
        self._fn = fn

    def value(self) -> float:
        """Fold every shard (including those of finished threads)."""
        with self._lock:
            total = sum(cell[0] for cell in self._shards)
        if self._fn is not None:
            try:
                total += float(self._fn())
            # Read path of /metrics: a broken user callback must not
            # kill a scrape, and there is no registry to report into.
            except Exception:  # poem: ignore[POEM005]
                pass
        return total

    def kind(self) -> str:
        return "counter"


class Gauge:
    """A value that goes up and down; optionally callback-backed.

    A callback gauge (``fn`` given) is evaluated at *read* time — the
    idiom for zero-hot-path-cost depth/size metrics (schedule depth,
    connected clients): the forwarding path pays nothing, the scrape
    pays one call.
    """

    __slots__ = ("name", "help", "label_values", "_value", "_fn", "_lock")

    def __init__(
        self,
        name: str,
        help: str = "",
        label_values: tuple[tuple[str, str], ...] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.label_values = label_values
        self._value = 0.0
        self._fn = fn
        self._lock = threading.Lock()

    def set(self, v: float) -> None:
        # Must take the lock: an unlocked store can land inside a
        # concurrent ``inc``'s read-modify-write and be silently undone.
        with self._lock:
            self._value = v

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    def dec(self, n: float = 1.0) -> None:
        self.inc(-n)

    def set_function(self, fn: Optional[Callable[[], float]]) -> None:
        """(Re)bind the read-time callback (None reverts to stored value)."""
        self._fn = fn

    def value(self) -> float:
        if self._fn is not None:
            try:
                return float(self._fn())
            except Exception:
                return float("nan")  # a broken callback must not kill a scrape
        return self._value

    def kind(self) -> str:
        return "gauge"


class Histogram:
    """Fixed-bucket histogram with per-thread shards folded on read.

    ``buckets`` is the sorted sequence of finite upper bounds (Prometheus
    ``le`` semantics: ``bucket[i]`` counts observations ``<= bounds[i]``);
    an implicit +Inf bucket catches the tail.  Defaults to the log-scale
    latency layout of :func:`default_latency_buckets`.

    Each shard is ``[counts_list, sum, count]``; ``observe`` does one
    bisect over ~30 bounds plus three thread-private writes.
    """

    __slots__ = (
        "name", "help", "label_values", "bounds", "_nb",
        "_shards", "_local", "_lock", "_merge_shard",
    )

    def __init__(
        self,
        name: str,
        help: str = "",
        label_values: tuple[tuple[str, str], ...] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets) if buckets is not None else _DEFAULT_BUCKETS
        if list(bounds) != sorted(bounds):
            raise ValueError(f"histogram buckets must be sorted: {bounds}")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"histogram buckets must be distinct: {bounds}")
        self.name = name
        self.help = help
        self.label_values = label_values
        self.bounds = bounds
        self._nb = len(bounds) + 1  # + the +Inf bucket
        self._shards: list[list] = []
        self._local = threading.local()
        self._lock = threading.Lock()
        self._merge_shard: Optional[list] = None

    def observe(self, v: float) -> None:
        """Record one observation. Lock-free (thread-private shard)."""
        try:
            shard = self._local.shard
        except AttributeError:
            shard = [[0] * self._nb, 0.0, 0]
            self._local.shard = shard
            with self._lock:
                self._shards.append(shard)
        shard[0][bisect_left(self.bounds, v)] += 1
        shard[1] += v
        shard[2] += 1

    def merge_folded(self, counts: Sequence[int], total: float) -> None:
        """Bucket-wise add an already-folded ``(counts, sum)`` delta.

        The cluster merge path: worker registries ship folded snapshots,
        the parent injects the per-pull delta here.  All merges share one
        dedicated shard (folded on read like any other), so repeated
        pulls accumulate instead of growing the shard list.
        """
        if len(counts) != self._nb:
            raise ValueError(
                f"{self.name}: merge has {len(counts)} buckets, "
                f"expected {self._nb}"
            )
        with self._lock:
            acc = self._merge_shard
            if acc is None:
                acc = [[0] * self._nb, 0.0, 0]
                self._merge_shard = acc
                self._shards.append(acc)
            ac = acc[0]
            n = 0
            for i, c in enumerate(counts):
                ac[i] += c
                n += c
            acc[1] += total
            acc[2] += n

    # -- folded reads ----------------------------------------------------------

    def folded(self) -> tuple[list[int], float, int]:
        """``(per_bucket_counts, sum, count)`` across all shards."""
        counts = [0] * self._nb
        total = 0.0
        n = 0
        with self._lock:
            shards = list(self._shards)
        for shard in shards:
            sc = shard[0]
            for i in range(self._nb):
                counts[i] += sc[i]
            total += shard[1]
            n += shard[2]
        return counts, total, n

    def count(self) -> int:
        return self.folded()[2]

    def sum(self) -> float:
        return self.folded()[1]

    def value(self) -> float:
        """Mean observation (NaN when empty) — the scalar summary."""
        _, total, n = self.folded()
        return total / n if n else float("nan")

    def percentile(self, q: float) -> float:
        """Estimate the ``q`` (0..1) quantile by linear interpolation
        within the winning bucket (log-scale buckets keep the relative
        error below one bucket's growth factor)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        counts, _, n = self.folded()
        if n == 0:
            return float("nan")
        rank = q * n
        seen = 0
        for i, c in enumerate(counts):
            if c == 0:
                continue
            if seen + c >= rank:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i] if i < len(self.bounds) else lo
                if hi <= lo:  # +Inf bucket: report its lower bound
                    return lo
                frac = (rank - seen) / c
                return lo + (hi - lo) * min(max(frac, 0.0), 1.0)
            seen += c
        return self.bounds[-1] if self.bounds else float("nan")

    def kind(self) -> str:
        return "histogram"


Metric = Union[Counter, Gauge, Histogram]


class MetricFamily:
    """A labelled metric: one ``(name, label_names)`` declaration handing
    out cached per-label-value children."""

    __slots__ = ("name", "help", "label_names", "_kind", "_buckets",
                 "_children", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        label_names: tuple[str, ...],
        kind: str,
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self.label_names = label_names
        self._kind = kind
        self._buckets = buckets
        self._children: dict[tuple[str, ...], Metric] = {}
        self._lock = threading.Lock()

    def labels(self, *values: object) -> Metric:
        """Child metric for these label values (created on first use)."""
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is not None:
            return child
        if len(key) != len(self.label_names):
            raise ValueError(
                f"{self.name}: expected {len(self.label_names)} label "
                f"values {self.label_names}, got {key}"
            )
        with self._lock:
            child = self._children.get(key)
            if child is None:
                lv = tuple(zip(self.label_names, key))
                if self._kind == "counter":
                    child = Counter(self.name, self.help, lv)
                elif self._kind == "gauge":
                    child = Gauge(self.name, self.help, lv)
                else:
                    child = Histogram(self.name, self.help, lv,
                                      buckets=self._buckets)
                self._children[key] = child
        return child

    def children(self) -> list[Metric]:
        with self._lock:
            return list(self._children.values())

    def kind(self) -> str:
        return self._kind


def _fmt(v: float) -> str:
    """Prometheus sample-value formatting (ints without the .0 noise)."""
    if isinstance(v, float) and (math.isnan(v) or math.isinf(v)):
        return "NaN" if math.isnan(v) else ("+Inf" if v > 0 else "-Inf")
    if float(v).is_integer():
        return str(int(v))
    return repr(float(v))


def _label_str(pairs: Iterable[tuple[str, str]]) -> str:
    inner = ",".join(
        f'{k}="{_escape(v)}"' for k, v in pairs
    )
    return "{" + inner + "}" if inner else ""


def _escape(v: str) -> str:
    return v.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


class MetricsRegistry:
    """The process-wide (or per-server) catalog of metrics.

    ``counter``/``gauge``/``histogram`` are get-or-create: registering the
    same name twice returns the existing object (and raises when the
    second registration disagrees on kind or labels — silent type drift
    is how dashboards rot).
    """

    def __init__(self, namespace: str = "poem") -> None:
        self.namespace = namespace
        self._metrics: dict[str, Union[Metric, MetricFamily]] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------------

    def _get_or_create(
        self,
        name: str,
        help: str,
        kind: str,
        labels: Optional[Sequence[str]],
        buckets: Optional[Sequence[float]] = None,
        fn: Optional[Callable[[], float]] = None,
    ) -> Union[Metric, MetricFamily]:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind() != kind:
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind()!r}, not {kind!r}"
                    )
                is_family = isinstance(existing, MetricFamily)
                if bool(labels) != is_family:
                    raise ValueError(
                        f"metric {name!r} label declaration mismatch"
                    )
                if (
                    isinstance(existing, MetricFamily)
                    and tuple(labels or ()) != existing.label_names
                ):
                    raise ValueError(
                        f"metric {name!r} labels {existing.label_names} "
                        f"!= {tuple(labels or ())}"
                    )
                return existing
            if labels:
                metric: Union[Metric, MetricFamily] = MetricFamily(
                    name, help, tuple(labels), kind, buckets=buckets
                )
            elif kind == "counter":
                metric = Counter(name, help, fn=fn)
            elif kind == "gauge":
                metric = Gauge(name, help, fn=fn)
            else:
                metric = Histogram(name, help, buckets=buckets)
            self._metrics[name] = metric
            return metric

    def counter(
        self, name: str, help: str = "",
        labels: Optional[Sequence[str]] = None,
    ) -> Union[Metric, MetricFamily]:
        return self._get_or_create(name, help, "counter", labels)

    def gauge(
        self, name: str, help: str = "",
        labels: Optional[Sequence[str]] = None,
    ) -> Union[Metric, MetricFamily]:
        return self._get_or_create(name, help, "gauge", labels)

    def gauge_fn(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> Gauge:
        """Callback-backed gauge: evaluated at scrape time, free on the
        hot path.  Re-registering rebinds the callback (a restarted
        server re-wires its depth gauges)."""
        g = self._get_or_create(name, help, "gauge", None, fn=fn)
        assert isinstance(g, Gauge)  # no labels -> always a plain gauge
        g.set_function(fn)
        return g

    def counter_fn(
        self, name: str, help: str, fn: Callable[[], float]
    ) -> Counter:
        """Callback-backed counter: mirrors a monotonic total already
        maintained elsewhere (engine counters) at zero hot-path cost."""
        c = self._get_or_create(name, help, "counter", None, fn=fn)
        assert isinstance(c, Counter)  # no labels -> always plain
        c.set_function(fn)
        return c

    def histogram(
        self, name: str, help: str = "",
        labels: Optional[Sequence[str]] = None,
        buckets: Optional[Sequence[float]] = None,
    ) -> Union[Metric, MetricFamily]:
        return self._get_or_create(name, help, "histogram", labels, buckets)

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def get(self, name: str) -> Optional[Union[Metric, MetricFamily]]:
        with self._lock:
            return self._metrics.get(name)

    # -- exposition -----------------------------------------------------------

    def _flat(self) -> list[tuple[str, str, str, list[Metric]]]:
        """``(name, help, kind, [children...])`` for every metric."""
        with self._lock:
            items = sorted(self._metrics.items())
        out: list[tuple[str, str, str, list[Metric]]] = []
        for name, m in items:
            if isinstance(m, MetricFamily):
                out.append((name, m.help, m.kind(), m.children()))
            else:
                out.append((name, m.help, m.kind(), [m]))
        return out

    def render(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for name, help_, kind, children in self._flat():
            if help_:
                lines.append(f"# HELP {name} {help_}")
            lines.append(f"# TYPE {name} {kind}")
            for child in children:
                base_labels = child.label_values
                if kind == "histogram":
                    assert isinstance(child, Histogram)
                    counts, total, n = child.folded()
                    cum = 0
                    for i, bound in enumerate(child.bounds):
                        cum += counts[i]
                        lab = _label_str(
                            base_labels + (("le", _fmt(bound)),)
                        )
                        lines.append(f"{name}_bucket{lab} {cum}")
                    cum += counts[-1]
                    lab = _label_str(base_labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{lab} {cum}")
                    lines.append(
                        f"{name}_sum{_label_str(base_labels)} {_fmt(total)}"
                    )
                    lines.append(
                        f"{name}_count{_label_str(base_labels)} {n}"
                    )
                else:
                    lines.append(
                        f"{name}{_label_str(base_labels)} "
                        f"{_fmt(child.value())}"
                    )
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        """JSON-friendly snapshot of every metric (for export/console).

        Doubles as the cluster's wire codec: a worker ships
        ``snapshot()`` over the pipe and the parent folds it in through
        :class:`SnapshotMerger`.
        """
        out: dict = {"time": time.time(), "metrics": {}}
        for name, help_, kind, children in self._flat():
            entries = []
            for child in children:
                entry: dict = {"labels": dict(child.label_values)}
                if kind == "histogram":
                    assert isinstance(child, Histogram)
                    counts, total, n = child.folded()
                    entry.update(
                        {
                            "buckets": list(child.bounds),
                            "counts": counts,
                            "sum": total,
                            "count": n,
                            "p50": child.percentile(0.5),
                            "p95": child.percentile(0.95),
                            "p99": child.percentile(0.99),
                        }
                    )
                else:
                    entry["value"] = child.value()
                entries.append(entry)
            out["metrics"][name] = {
                "kind": kind,
                "help": help_,
                "samples": entries,
            }
        return out


class SnapshotMerger:
    """Fold :meth:`MetricsRegistry.snapshot` dicts from other processes
    into a parent registry (the cluster's worker-telemetry export).

    Merge semantics, per metric kind:

    * **counters** sum across sources: the merger remembers the last
      value seen per ``(source, name, labels)`` and injects only the
      positive delta, so folding the same worker repeatedly (every
      barrier *and* every periodic pull) never double-counts.  A value
      that went backwards means the source restarted — the full value is
      re-injected.
    * **histograms** bucket-wise add (same delta discipline) through
      :meth:`Histogram.merge_folded`; bucket layouts must match or the
      sample is skipped.
    * **gauges** are *not* summed (a mean busy-fraction of two shards is
      meaningless): each lands as its own child labelled
      ``shard=<source>`` on top of any labels it already carried.

    Registration conflicts (a worker name colliding with a parent metric
    of a different kind/labels) are skipped, not raised: merging is a
    telemetry-plane activity and must never take down the pipeline.
    Thread-safe: one lock around the whole fold keeps delta bookkeeping
    consistent under a concurrent periodic pull + flush barrier.
    """

    def __init__(
        self, registry: MetricsRegistry, *, source_label: str = "shard"
    ) -> None:
        self.registry = registry
        self.source_label = source_label
        self._last: dict[tuple, Any] = {}
        self._lock = threading.Lock()
        self.folded_samples = 0
        self.skipped_samples = 0

    def fold(self, source: object, snap: dict) -> int:
        """Merge one source's snapshot; returns samples folded in."""
        folded = 0
        with self._lock:
            for name, family in (snap.get("metrics") or {}).items():
                kind = family.get("kind")
                help_ = family.get("help", "")
                for sample in family.get("samples", []):
                    try:
                        if self._fold_sample(
                            str(source), name, kind, help_, sample
                        ):
                            folded += 1
                    except (ValueError, KeyError, TypeError):
                        # Kind/label/bucket mismatch with what the parent
                        # already registered: skip, don't break telemetry.
                        self.skipped_samples += 1
        self.folded_samples += folded
        return folded

    def _fold_sample(
        self, source: str, name: str, kind: str, help_: str, sample: dict
    ) -> bool:
        labels = dict(sample.get("labels") or {})
        if kind == "counter":
            value = float(sample["value"])
            child = self._child(name, help_, "counter", labels)
            key = (source, name, tuple(sorted(labels.items())))
            last = float(self._last.get(key, 0.0))
            delta = value - last
            if delta < 0:  # source restarted: its counter began again at 0
                delta = value
            self._last[key] = value
            if delta > 0:
                child.inc(delta)
            return True
        if kind == "gauge":
            value = float(sample["value"])
            merged_labels = dict(labels)
            merged_labels[self.source_label] = source
            child = self._child(name, help_, "gauge", merged_labels)
            child.set(value)
            return True
        if kind == "histogram":
            counts = [int(c) for c in sample["counts"]]
            total = float(sample["sum"])
            bounds = tuple(float(b) for b in sample["buckets"])
            child = self._child(
                name, help_, "histogram", labels, buckets=bounds
            )
            if child.bounds != bounds:
                self.skipped_samples += 1
                return False
            key = (source, name, tuple(sorted(labels.items())))
            last = self._last.get(key)
            if last is not None and all(
                c >= lc for c, lc in zip(counts, last[0])
            ):
                d_counts = [c - lc for c, lc in zip(counts, last[0])]
                d_total = total - last[1]
            else:  # first sight, or the source restarted
                d_counts, d_total = counts, total
            self._last[key] = (counts, total)
            if any(d_counts):
                child.merge_folded(d_counts, d_total)
            return True
        self.skipped_samples += 1
        return False

    def _child(
        self,
        name: str,
        help_: str,
        kind: str,
        labels: dict,
        buckets: Optional[Sequence[float]] = None,
    ) -> Any:
        """Get-or-create the parent-side target metric/child.

        Typed ``Any`` on purpose: the caller immediately uses the
        kind-specific surface (``inc``/``set``/``merge_folded``) it just
        asked for, and the registry's union return would force a cast at
        every call site."""
        label_names = tuple(labels) or None
        reg = self.registry
        if kind == "counter":
            target = reg.counter(name, help_, labels=label_names)
        elif kind == "gauge":
            target = reg.gauge(name, help_, labels=label_names)
        else:
            target = reg.histogram(
                name, help_, labels=label_names, buckets=buckets
            )
        if isinstance(target, MetricFamily):
            return target.labels(*labels.values())
        return target
