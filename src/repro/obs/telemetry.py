"""The per-deployment telemetry bundle: registry + tracer, pre-wired.

One :class:`Telemetry` instance belongs to one deployment
(:class:`~repro.core.tcpserver.PoEmServer` or
:class:`~repro.core.server.InProcessEmulator`); both create an enabled
bundle by default and thread it through the engine, schedule, transport
and recorder.  Pass ``Telemetry.disabled()`` (or construct components
with ``telemetry=None``) to strip the instrumentation back to bare
guards — the benchmark-guarded "telemetry disabled ≈ free" property.

The bundle also owns the **metric catalog** for the forwarding pipeline
(see docs/observability.md): engine totals are mirrored through
zero-cost callback counters, drop reasons / wire encodings through
labelled counter families, and the scheduler-lag + per-stage duration
histograms use the fixed log-scale bucket layout.
"""

from __future__ import annotations

from typing import Optional

from .metrics import MetricsRegistry, SnapshotMerger
from .tracing import PipelineTracer

__all__ = ["Telemetry"]


class Telemetry:
    """Metrics registry + pipeline tracer for one deployment."""

    #: Default sampling interval: one traced packet per N ingests.
    DEFAULT_SAMPLE_EVERY = 128

    def __init__(
        self,
        *,
        enabled: bool = True,
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        trace_capacity: int = 512,
        namespace: str = "poem",
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.enabled = enabled
        self.registry = (
            registry if registry is not None else MetricsRegistry(namespace)
        )
        # Eager, not lazy: a racing periodic pull + flush barrier must
        # share one merger or its delta bookkeeping double-counts.
        self._merger: Optional[SnapshotMerger] = (
            SnapshotMerger(self.registry) if enabled else None
        )
        self.tracer: Optional[PipelineTracer] = (
            PipelineTracer(
                sample_every=sample_every, capacity=trace_capacity
            )
            if enabled
            else None
        )
        if enabled:
            # The per-stage pipeline histogram is fed by the tracer on
            # span completion (sampled packets only).
            self.tracer.stage_hist = self.registry.histogram(
                "poem_pipeline_stage_seconds",
                "Per-stage duration of sampled packets through the "
                "Steps 1-7 pipeline",
                labels=("stage",),
            )

    @classmethod
    def disabled(cls) -> "Telemetry":
        """A no-op bundle: empty registry, no tracer, no hot-path cost."""
        return cls(enabled=False)

    # -- convenience -----------------------------------------------------------

    def render(self) -> str:
        """Prometheus text snapshot (the ``/metrics`` body)."""
        return self.registry.render()

    def snapshot(self) -> dict:
        """JSON-friendly snapshot of every metric."""
        return self.registry.snapshot()

    def recent_spans(self, n: Optional[int] = None):
        """Recent completed pipeline spans (empty when disabled)."""
        return self.tracer.recent(n) if self.tracer is not None else []

    def fold_snapshot(self, source: object, snap: Optional[dict]) -> int:
        """Merge another process's registry snapshot into this bundle
        (the cluster parent's worker-telemetry import; see
        :class:`~repro.obs.metrics.SnapshotMerger` for the semantics).
        No-op when disabled or ``snap`` is None; returns samples folded.
        """
        if self._merger is None or not snap:
            return 0
        return self._merger.fold(source, snap)
