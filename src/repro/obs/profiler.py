"""Continuous wall-clock sampling profiler: where every microsecond goes.

Metrics (PR 3) say *how much* work the emulator did and tracing says
*which packets* were slow; neither says which **functions** burned the
wall clock.  This module closes that gap with a dependency-free
sampling profiler in the flamegraph tradition:

* a sampler daemon (a :class:`~repro.core.supervision.SupervisedThread`,
  like every other background loop in the stack) wakes ~97 times a
  second — a prime-ish default rate so it cannot alias against 10/50/
  100 Hz periodic work — and walks ``sys._current_frames()``;
* every live thread's stack is folded into a bounded table of
  ``role;thread;frame;frame;… → count`` entries, with thread idents
  resolved to their :class:`~repro.core.supervision.SupervisedThread`
  names via :func:`threading.enumerate`, so a profile reads
  "poem-scan-ch3 spent 41% of samples in ``engine.flush_due``";
* :meth:`SamplingProfiler.collapsed` renders the table in the
  collapsed-stack format that ``flamegraph.pl`` and speedscope ingest
  directly, and :meth:`SamplingProfiler.thread_summary` reduces it to a
  per-thread self-time table for consoles;
* the sampler **degrades with the overload plane exactly like
  tracing**: given an :class:`~repro.core.overload.OverloadController`,
  sampling pauses whenever the controller has left NOMINAL (its
  ``allow_tracing`` lever), so profiling overhead is the first thing
  shed when deadlines are at risk;
* a bounded ring of recent ``(wall time, thread, leaf frame)`` samples
  feeds the Chrome-trace timeline (:mod:`repro.obs.timeline`).

Cluster story: each shard worker runs its *own* sampler and ships its
cumulative folded-stack table on ``flushed`` / ``telemetry_report`` /
``worker_report`` control frames; the parent folds them through
:class:`ProfileMerger` — the same last-seen delta-merge idiom as
:class:`~repro.obs.metrics.SnapshotMerger`, including the
restart-re-inject rule — so one merged profile covers the whole
cluster, worker roles kept distinct by the ``role`` root frame.

Overhead model (see docs/observability.md): one sample costs one
``sys._current_frames()`` call plus a frame walk per live thread —
O(threads × depth) dict work, a few tens of microseconds.  At the
default 97 Hz that is well under 1% of one core; the CI bench
``test_profiler_overhead`` gates the measured ratio at ≤1.05×.

The module keeps one process-default profiler
(:func:`set_default`/:func:`get_default`) so operator surfaces (console
``profile``, ``GET /profile``) and the crash flight recorder can find
the running sampler without plumbing.
"""

from __future__ import annotations

import sys
import threading
import time
from collections import deque
from typing import Any, Callable, Mapping, MutableMapping, Optional

from ..core.supervision import SupervisedThread

__all__ = [
    "SamplingProfiler",
    "ProfileMerger",
    "DEFAULT_HZ",
    "PROFILE_SCHEMA",
    "format_profile",
    "merge_folded",
    "set_default",
    "get_default",
]

PROFILE_SCHEMA = 1

#: Default sampling rate (Hz).  Deliberately *not* a round number: a
#: 100 Hz sampler phase-locks with 10 ms periodic loops and sees either
#: always-the-loop or never-the-loop; 97 drifts through them.
DEFAULT_HZ = 97.0

#: Stack-table entries above this bound fold into a per-thread
#: ``(other)`` leaf instead of growing the table (overload can make
#: stack shapes explode; the profiler must never be the leak).
DEFAULT_MAX_STACKS = 2048

#: Frames kept per stack (leaf-most survive; deep recursions truncate).
DEFAULT_MAX_DEPTH = 48


def _frame_label(frame: Any) -> str:
    """One stack frame as ``module.qualname`` (semicolon-safe: ``;`` is
    the folded-stack separator)."""
    code = frame.f_code
    mod = frame.f_globals.get("__name__", "?")
    func = getattr(code, "co_qualname", None) or code.co_name
    label = f"{mod}.{func}"
    return label.replace(";", ",") if ";" in label else label


class SamplingProfiler:
    """Wall-clock sampling profiler over ``sys._current_frames()``.

    ``role`` becomes the root frame of every folded stack, which is how
    merged cluster profiles keep parent and worker samples apart.  Pass
    an :class:`~repro.core.overload.OverloadController` as ``overload``
    and the sampler pauses (counting :attr:`paused`) whenever the
    controller has shed tracing — profiling is sacrificed before any
    emulation fidelity is.
    """

    def __init__(
        self,
        *,
        hz: float = DEFAULT_HZ,
        role: str = "parent",
        max_stacks: int = DEFAULT_MAX_STACKS,
        max_depth: int = DEFAULT_MAX_DEPTH,
        overload: Optional[Any] = None,
        ring_capacity: int = 512,
        clock: Callable[[], float] = time.time,
    ) -> None:
        if hz <= 0:
            raise ValueError(f"sampling rate must be positive: {hz}")
        self.hz = float(hz)
        self.role = str(role)
        self.max_stacks = max(int(max_stacks), 1)
        self.max_depth = max(int(max_depth), 1)
        self._overload = overload
        self._clock = clock
        self._lock = threading.Lock()
        #: cumulative local folded stacks: ``role;thread;…frames → count``
        self._stacks: dict[str, int] = {}
        #: folded stacks merged in from other processes (cluster workers)
        self._remote: dict[str, int] = {}
        self._merger = ProfileMerger(self._remote)
        #: recent samples for the timeline: (wall t, thread, leaf frame)
        self._ring: deque[tuple[float, str, str]] = deque(
            maxlen=max(int(ring_capacity), 1)
        )
        self.samples = 0  # sampling passes that captured frames
        self.paused = 0  # passes skipped because overload shed tracing
        self.errors = 0  # passes that raised (never propagate)
        self.dropped_stacks = 0  # samples folded into (other) by the bound
        self._busy_seconds = 0.0
        self.started_at: Optional[float] = None
        self._thread: Optional[SupervisedThread] = None
        self._stop = threading.Event()
        self._own_ident: Optional[int] = None

    # -- lifecycle -------------------------------------------------------------

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "SamplingProfiler":
        """Start the sampler daemon (idempotent while running).

        Guarded by ``_lock``: two concurrent ``/profile`` requests must
        not both pass the ``running`` check and leak a sampler thread.
        """
        with self._lock:
            if self.running:
                return self
            self._stop = threading.Event()
            self.started_at = time.monotonic()
            self._thread = SupervisedThread(
                f"poem-profiler-{self.role}",
                self._run,
                restartable=False,
            ).start()
        return self

    def stop(self, timeout: float = 2.0) -> None:
        """Stop sampling; the collected profile stays readable."""
        with self._lock:
            thread = self._thread
            self._thread = None
            self._stop.set()
        # Join outside the lock — the sampler takes it in sample_once.
        if thread is not None:
            thread.stop(timeout=timeout)

    def _run(self) -> None:
        self._own_ident = threading.get_ident()
        period = 1.0 / self.hz
        overload = self._overload
        while not self._stop.wait(period):
            # Degrade with the overload plane exactly like tracing: the
            # sampler is the cheapest work to shed, so it goes first.
            if overload is not None and not overload.allow_tracing:
                self.paused += 1
                continue
            t0 = time.perf_counter()
            try:
                self.sample_once()
            except Exception:  # poem: ignore[POEM005] — counted in errors
                self.errors += 1
            self._busy_seconds += time.perf_counter() - t0

    # -- sampling --------------------------------------------------------------

    def sample_once(self) -> int:
        """Take one sampling pass (the daemon's body; callable directly
        from tests for deterministic profiles).  Returns the number of
        threads captured."""
        frames = sys._current_frames()
        names = {t.ident: t.name for t in threading.enumerate()}
        now = self._clock()
        captured = 0
        ring = self._ring  # bounded deque (maxlen above)
        with self._lock:
            for ident, frame in frames.items():
                if ident == self._own_ident:
                    continue  # the sampler never profiles itself
                thread = names.get(ident) or f"tid-{ident}"
                labels: list[str] = []
                depth = 0
                f: Any = frame
                while f is not None and depth < self.max_depth:
                    labels.append(_frame_label(f))
                    f = f.f_back
                    depth += 1
                labels.reverse()
                if f is not None:
                    labels.insert(0, "(deeper)")
                key = f"{self.role};{thread};" + ";".join(labels)
                stacks = self._stacks
                if key in stacks:
                    stacks[key] += 1
                elif len(stacks) < self.max_stacks:
                    stacks[key] = 1
                else:
                    overflow = f"{self.role};{thread};(other)"
                    stacks[overflow] = stacks.get(overflow, 0) + 1
                    self.dropped_stacks += 1
                ring.append((now, thread, labels[-1] if labels else "?"))
                captured += 1
            self.samples += 1
        return captured

    # -- reading the profile ---------------------------------------------------

    def folded(self) -> dict[str, int]:
        """The merged folded-stack table: local samples plus everything
        folded in from remote processes (disjoint by ``role`` root)."""
        with self._lock:
            combined = dict(self._stacks)
            for key, count in self._remote.items():
                combined[key] = combined.get(key, 0) + count
        return combined

    def collapsed(self) -> str:
        """flamegraph.pl / speedscope input: one ``stack count`` line
        per folded stack, heaviest first."""
        table = self.folded()
        lines = [
            f"{key} {count}"
            for key, count in sorted(
                table.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def thread_summary(self) -> dict[str, dict[str, Any]]:
        """Per-thread self-time: how many samples each ``role;thread``
        lane took, and which leaf frames they were executing."""
        return summarize_folded(self.folded())

    def recent_samples(self) -> list[tuple[float, str, str]]:
        """The bounded ring of recent local samples (timeline feed)."""
        with self._lock:
            return list(self._ring)

    def overhead_fraction(self) -> float:
        """Wall-clock fraction this process spent inside the sampler."""
        if self.started_at is None:
            return 0.0
        wall = time.monotonic() - self.started_at
        return self._busy_seconds / wall if wall > 0 else 0.0

    def snapshot(self, top: Optional[int] = None) -> dict[str, Any]:
        """The profile as a JSON-safe dict (control frames, crash
        artifacts, ``GET /profile?format=json``).  ``top`` bounds the
        stack table to the heaviest N entries — crash artifacts must
        stay small."""
        stacks = self.folded()
        if top is not None and len(stacks) > top:
            kept = sorted(stacks.items(), key=lambda kv: (-kv[1], kv[0]))
            stacks = dict(kept[: max(int(top), 1)])
        return {
            "schema": PROFILE_SCHEMA,
            "role": self.role,
            "hz": self.hz,
            "samples": self.samples,
            "paused": self.paused,
            "errors": self.errors,
            "dropped_stacks": self.dropped_stacks,
            "overhead_fraction": self.overhead_fraction(),
            "stacks": stacks,
        }

    # -- cluster merge ---------------------------------------------------------

    def fold_remote(
        self, source: Any, profile: Optional[Mapping[str, Any]]
    ) -> None:
        """Fold one remote process's profile snapshot (its ``stacks``
        table is cumulative; the merger turns it into deltas)."""
        if not profile:
            return
        stacks = profile.get("stacks")
        if not stacks:
            return
        with self._lock:
            self._merger.fold(source, stacks)


class ProfileMerger:
    """Delta-merge cumulative remote stack tables into one sink table.

    The :class:`~repro.obs.metrics.SnapshotMerger` idiom, applied to
    folded stacks: remember the last value seen per ``(source, stack)``
    and add only the growth, so re-sending a cumulative table (every
    barrier does) never double-counts.  A value *below* the last seen
    means the remote process restarted — its whole count is new work
    and is re-injected in full.
    """

    def __init__(self, sink: MutableMapping[str, int]) -> None:
        self._sink = sink
        self._last: dict[tuple[Any, str], int] = {}

    def fold(self, source: Any, stacks: Mapping[str, int]) -> None:
        last = self._last
        sink = self._sink
        for key, raw in stacks.items():
            value = int(raw)
            prev = last.get((source, key), 0)
            delta = value - prev if value >= prev else value
            if delta > 0:
                sink[key] = sink.get(key, 0) + delta
            last[(source, key)] = value


# -- folded-table helpers ------------------------------------------------------


def merge_folded(
    into: MutableMapping[str, int], table: Mapping[str, int]
) -> MutableMapping[str, int]:
    """Plain additive merge of one folded table into another."""
    for key, count in table.items():
        into[key] = into.get(key, 0) + int(count)
    return into


def summarize_folded(
    table: Mapping[str, int],
) -> dict[str, dict[str, Any]]:
    """Reduce a folded table to per-``role;thread`` self-time.

    Self-time goes to the *leaf* frame — the function actually on-CPU
    (or holding the GIL slot) when the sample landed.
    """
    threads: dict[str, dict[str, Any]] = {}
    for key, count in table.items():
        parts = key.split(";")
        if len(parts) < 3:
            continue
        lane = f"{parts[0]};{parts[1]}"
        leaf = parts[-1]
        entry = threads.setdefault(lane, {"samples": 0, "self": {}})
        entry["samples"] += count
        entry["self"][leaf] = entry["self"].get(leaf, 0) + count
    return threads


def format_profile(
    table: Mapping[str, int], *, top: int = 8
) -> str:
    """Render a folded table as the console/CLI text block: one section
    per thread, heaviest threads first, top self-time leaves within."""
    threads = summarize_folded(table)
    total = sum(entry["samples"] for entry in threads.values())
    if total == 0:
        return "profile: no samples"
    lines = [f"profile: {total} samples across {len(threads)} threads"]
    ordered = sorted(
        threads.items(), key=lambda kv: (-kv[1]["samples"], kv[0])
    )
    for lane, entry in ordered:
        share = 100.0 * entry["samples"] / total
        lines.append(f"  {lane:40s} {entry['samples']:7d}  {share:5.1f}%")
        leaves = sorted(
            entry["self"].items(), key=lambda kv: (-kv[1], kv[0])
        )
        for leaf, count in leaves[:top]:
            pct = 100.0 * count / entry["samples"]
            lines.append(f"      {pct:5.1f}%  {leaf}")
    return "\n".join(lines)


# -- the process default -------------------------------------------------------

_default: Optional[SamplingProfiler] = None
_default_lock = threading.Lock()


def set_default(profiler: Optional[SamplingProfiler]) -> None:
    """Install (or clear, with None) the process-default profiler that
    operator surfaces and the flight recorder read."""
    global _default
    with _default_lock:
        _default = profiler


def get_default() -> Optional[SamplingProfiler]:
    return _default
