"""Runtime telemetry for the PoEm stack (metrics, tracing, logs, HTTP).

A dependency-free observability plane for the real-time emulator:

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives with per-thread shards
  folded on read, collected in a :class:`MetricsRegistry` that renders
  Prometheus text;
* :mod:`repro.obs.tracing` — 1-in-N sampled packet traces through the
  paper's §3.2 Steps 1–7, including the scheduler-lag deadline metric;
* :mod:`repro.obs.logging` — structured JSON logs for the stack's
  failure/lifecycle events;
* :mod:`repro.obs.httpd` — the localhost ``/metrics`` + ``/health`` +
  ``/trace`` (+ ``/profile``, ``/timeline``) endpoint;
* :mod:`repro.obs.profiler` — the continuous wall-clock sampling
  profiler (folded stacks, per-thread self-time, cluster merge);
* :mod:`repro.obs.timeline` — Chrome trace-event (Perfetto) export of
  spans, shard hops, overload transitions, and profiler samples;
* :mod:`repro.obs.telemetry` — the per-deployment bundle wiring it all
  together.

See docs/observability.md for the metric catalog, trace schema, and a
scrape example.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_latency_buckets,
)
from .tracing import PIPELINE_STAGES, PipelineTracer, Trace, TraceSpan, format_span
from .telemetry import Telemetry
from .httpd import TelemetryHTTPServer
from .profiler import SamplingProfiler, format_profile
from .timeline import build_timeline, timeline_from_recorder, write_timeline
from .logging import JsonFormatter, configure, get_logger, log_event, set_level

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_latency_buckets",
    "PIPELINE_STAGES",
    "PipelineTracer",
    "Trace",
    "TraceSpan",
    "format_span",
    "Telemetry",
    "TelemetryHTTPServer",
    "SamplingProfiler",
    "format_profile",
    "build_timeline",
    "timeline_from_recorder",
    "write_timeline",
    "JsonFormatter",
    "configure",
    "get_logger",
    "log_event",
    "set_level",
]
