"""Runtime telemetry for the PoEm stack (metrics, tracing, logs, HTTP).

A dependency-free observability plane for the real-time emulator:

* :mod:`repro.obs.metrics` — thread-safe :class:`Counter` /
  :class:`Gauge` / :class:`Histogram` primitives with per-thread shards
  folded on read, collected in a :class:`MetricsRegistry` that renders
  Prometheus text;
* :mod:`repro.obs.tracing` — 1-in-N sampled packet traces through the
  paper's §3.2 Steps 1–7, including the scheduler-lag deadline metric;
* :mod:`repro.obs.logging` — structured JSON logs for the stack's
  failure/lifecycle events;
* :mod:`repro.obs.httpd` — the localhost ``/metrics`` + ``/health`` +
  ``/trace`` endpoint;
* :mod:`repro.obs.telemetry` — the per-deployment bundle wiring it all
  together.

See docs/observability.md for the metric catalog, trace schema, and a
scrape example.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    default_latency_buckets,
)
from .tracing import PIPELINE_STAGES, PipelineTracer, Trace, TraceSpan, format_span
from .telemetry import Telemetry
from .httpd import TelemetryHTTPServer
from .logging import JsonFormatter, configure, get_logger, log_event, set_level

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "default_latency_buckets",
    "PIPELINE_STAGES",
    "PipelineTracer",
    "Trace",
    "TraceSpan",
    "format_span",
    "Telemetry",
    "TelemetryHTTPServer",
    "JsonFormatter",
    "configure",
    "get_logger",
    "log_event",
    "set_level",
]
