"""Structured JSON logging for the PoEm stack.

The fault-tolerance layer (PR 1) turned silent thread deaths into
counters — but supervision restarts, client quarantines and outbox
overflows still *vanished* into those counters: nothing told the
operator **when** and **why** as it happened.  This module is the
missing log plane: one JSON object per line on stderr, machine-grepable
(``jq 'select(.event=="client-quarantined")'``) and human-skimmable.

Usage::

    from repro.obs.logging import get_logger, log_event
    log = get_logger("tcpserver")
    log_event(log, "client-quarantined", node=3, label="VMN3",
              deadline=12.5)

Every line carries ``ts`` (epoch seconds), ``level``, ``logger``
(``poem.<component>``), ``event`` (a stable kebab-case tag — the thing
you grep for), and the event's own fields.  The default level is
WARNING so routine traffic stays quiet; ``set_level(logging.INFO)``
opens up lifecycle events (reconnects, reclaims).

Everything rides on stdlib :mod:`logging`, so embedders can silence or
re-route the ``poem`` logger tree with the normal logging API;
:func:`configure` is a convenience for tests that want to capture the
stream.
"""

from __future__ import annotations

import io
import json
import logging
import threading
from typing import Optional, TextIO

from . import flightrec

__all__ = [
    "JsonFormatter",
    "get_logger",
    "log_event",
    "set_level",
    "configure",
]

ROOT_NAME = "poem"

_setup_lock = threading.Lock()
_handler: Optional[logging.Handler] = None


class JsonFormatter(logging.Formatter):
    """One JSON object per record; unserializable values become strings."""

    def format(self, record: logging.LogRecord) -> str:
        obj: dict = {
            "ts": round(record.created, 6),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": getattr(record, "event", None) or record.getMessage(),
        }
        fields = getattr(record, "fields", None)
        if fields:
            for key, value in fields.items():
                if key not in obj:
                    obj[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            obj["error"] = (
                f"{type(record.exc_info[1]).__name__}: {record.exc_info[1]}"
            )
        try:
            return json.dumps(obj, default=str)
        except (TypeError, ValueError):
            return json.dumps({k: str(v) for k, v in obj.items()})


def _ensure_configured() -> logging.Logger:
    """Attach the JSON handler to the ``poem`` root logger exactly once."""
    global _handler
    root = logging.getLogger(ROOT_NAME)
    with _setup_lock:
        if _handler is None:
            handler = logging.StreamHandler()
            handler.setFormatter(JsonFormatter())
            root.addHandler(handler)
            root.setLevel(logging.WARNING)
            root.propagate = False
            _handler = handler
    return root


def get_logger(component: str) -> logging.Logger:
    """Logger for one stack component (``poem.<component>``)."""
    _ensure_configured()
    return logging.getLogger(f"{ROOT_NAME}.{component}")


def log_event(
    logger: logging.Logger,
    event: str,
    *,
    level: int = logging.WARNING,
    **fields,
) -> None:
    """Emit one structured event if the logger's level admits it.

    ``event`` is the stable machine tag; ``fields`` are the payload.
    The level check happens first, so disabled events cost one
    comparison.  Every event — including ones below the logger's
    threshold — is also mirrored into the process flight recorder when
    one is installed, so a crash dump keeps the INFO-level breadcrumbs
    the stderr log suppressed.
    """
    recorder = flightrec.get_default()
    if recorder is not None:
        try:
            recorder.note(event, **{"logger": logger.name, **fields})
        # Telemetry boundary: the crash ring must never break logging.
        except Exception:  # poem: ignore[POEM005]
            pass
    if logger.isEnabledFor(level):
        logger.log(level, event, extra={"event": event, "fields": fields})


def set_level(level: int) -> None:
    """Set the whole ``poem`` logger tree's threshold."""
    _ensure_configured().setLevel(level)


def configure(
    stream: Optional[TextIO] = None, level: Optional[int] = None
) -> TextIO:
    """(Re)route the JSON stream — used by tests to capture output.

    Returns the active stream (a fresh :class:`io.StringIO` when none is
    given).
    """
    global _handler
    root = _ensure_configured()
    target: TextIO = stream if stream is not None else io.StringIO()
    with _setup_lock:
        assert _handler is not None
        root.removeHandler(_handler)
        handler = logging.StreamHandler(target)
        handler.setFormatter(JsonFormatter())
        root.addHandler(handler)
        _handler = handler
    if level is not None:
        root.setLevel(level)
    return target
