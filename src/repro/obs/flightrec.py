"""Crash flight recorder: the last seconds of a process, always on.

Live telemetry (metrics, traces, `/health`) answers "how is it going?";
the flight recorder answers "what just happened?" after the process is
gone.  Each process keeps three bounded rings — recent structured
events, the last completed pipeline spans, and overload-state
transitions — and dumps them to a small JSON artifact when something
dies: a worker's pipeline raises, the parent sees a worker vanish
(`ClusterError`), or SIGTERM arrives.  The artifact is rendered by
``poem analyze --flight`` and referenced by the forensics catalog's
``last-crash`` anomaly.

Everything is best-effort by design: a full disk or a half-dead
interpreter must never turn the dump into a second crash, so every I/O
path swallows `OSError` and reports failure through its return value.

The module keeps one process-default recorder
(:func:`set_default`/:func:`get_default`); the structured-log plane
(:func:`repro.obs.logging.log_event`) mirrors every event into it —
including events below the logger's threshold — so the ring holds the
INFO-level breadcrumbs the stderr log suppressed.

Artifact format (``schema`` 1)::

    {
      "schema": 1, "role": "worker-2", "pid": 4711,
      "dumped_at": 1754556000.0, "reason": "ClusterWorkerError(...)",
      "events":      [{"t": ..., "event": "flush", ...}, ...],
      "spans":       [TraceSpan.as_dict(), ...],
      "transitions": [{"t": ..., "event": "overload-state", ...}, ...],
      "profile":     SamplingProfiler.snapshot(top=40)   # when running
    }

The optional ``profile`` key embeds the process-default sampling
profiler's last window (:mod:`repro.obs.profiler`) so a post-mortem
also says what the process was *doing* — which functions were on-CPU —
when it died, not just which events preceded death.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Optional, Union

__all__ = [
    "FlightRecorder",
    "FLIGHT_SCHEMA",
    "set_default",
    "get_default",
    "load_flight",
    "format_flight",
]

FLIGHT_SCHEMA = 1

#: Environment override for where artifacts land (workers inherit it).
FLIGHT_DIR_ENV = "POEM_FLIGHT_DIR"


class FlightRecorder:
    """Bounded rings of recent events/spans/transitions + a JSON dump."""

    def __init__(
        self,
        *,
        role: str = "parent",
        capacity: int = 256,
        span_capacity: int = 64,
        transition_capacity: int = 64,
        flight_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        self.role = str(role)
        self.flight_dir = Path(
            flight_dir
            or os.environ.get(FLIGHT_DIR_ENV)
            or tempfile.gettempdir()
        )
        self._events: deque[dict] = deque(maxlen=max(int(capacity), 1))
        self._spans: deque[dict] = deque(maxlen=max(int(span_capacity), 1))
        self._transitions: deque[dict] = deque(
            maxlen=max(int(transition_capacity), 1)
        )
        self._lock = threading.Lock()
        self.dumped_path: Optional[str] = None
        self._prev_sigterm: Any = None

    # -- feeding the rings -----------------------------------------------------

    def note(self, event: str, /, **fields: Any) -> None:
        """Append one structured event (cheap: a dict + a deque append)."""
        entry: dict = {"t": time.time()}
        entry.update(fields)
        entry["event"] = str(event)
        with self._lock:
            self._events.append(entry)
            # Overload state changes get their own ring so a long event
            # tail cannot push the degradation history out of the dump.
            if "overload" in entry["event"]:
                self._transitions.append(entry)

    def note_span(self, span: Any) -> None:
        """Keep one completed pipeline span (TraceSpan or its dict)."""
        row = span.as_dict() if hasattr(span, "as_dict") else dict(span)
        with self._lock:
            self._spans.append(row)

    # -- dumping ---------------------------------------------------------------

    def snapshot(self, reason: str = "") -> dict:
        """The artifact as a dict (what :meth:`dump` serializes)."""
        # The profile window is read before taking our lock (the
        # profiler has its own) so the dump path never nests locks.
        profile = self._profile_window()
        with self._lock:
            artifact = {
                "schema": FLIGHT_SCHEMA,
                "role": self.role,
                "pid": os.getpid(),
                "dumped_at": time.time(),
                "reason": str(reason),
                "events": list(self._events),
                "spans": list(self._spans),
                "transitions": list(self._transitions),
            }
        if profile is not None:
            artifact["profile"] = profile
        return artifact

    @staticmethod
    def _profile_window(top: int = 40) -> Optional[dict]:
        """The process profiler's last window, bounded for the artifact.

        Post-mortems should say what the process was *doing* when it
        died, not only what happened to it — so the crash artifact
        embeds the top folded stacks of the process-default
        :class:`~repro.obs.profiler.SamplingProfiler` when one is
        installed.  Best-effort like every other dump path.
        """
        try:
            from .profiler import get_default as get_profiler

            profiler = get_profiler()
            if profiler is None:
                return None
            return profiler.snapshot(top=top)
        except Exception:  # poem: ignore[POEM005] — dump path, best-effort
            return None

    def artifact_path(self) -> Path:
        return self.flight_dir / f"poem-flight-{self.role}.json"

    def dump(
        self,
        path: Optional[Union[str, Path]] = None,
        *,
        reason: str = "",
    ) -> Optional[str]:
        """Write the artifact; returns its path, or None when even that
        failed (a dying process must never crash on the dump)."""
        target = Path(path) if path is not None else self.artifact_path()
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(
                json.dumps(self.snapshot(reason), default=str, indent=1)
            )
        except (OSError, ValueError):
            return None
        self.dumped_path = str(target)
        return self.dumped_path

    # -- signal hook -----------------------------------------------------------

    def install_sigterm(self) -> bool:
        """Dump on SIGTERM, then chain to the previous handler.

        Returns False off the main thread (signal API restriction) or
        when the runtime refuses the handler — callers treat the hook as
        optional.
        """
        try:
            prev = signal.signal(signal.SIGTERM, self._on_sigterm)
        except (ValueError, OSError):  # not the main thread / no signals
            return False
        self._prev_sigterm = prev
        return True

    def _on_sigterm(self, signum: int, frame: Any) -> None:
        self.note("sigterm", signum=int(signum))
        self.dump(reason="SIGTERM")
        prev = self._prev_sigterm
        if callable(prev):
            prev(signum, frame)
        elif prev == signal.SIG_DFL:
            # Re-raise with the default disposition so the exit status
            # still says "killed by SIGTERM".
            signal.signal(signal.SIGTERM, signal.SIG_DFL)
            os.kill(os.getpid(), signal.SIGTERM)


# -- the process default -------------------------------------------------------

_default: Optional[FlightRecorder] = None
_default_lock = threading.Lock()


def set_default(recorder: Optional[FlightRecorder]) -> None:
    """Install (or clear, with None) the process-default recorder that
    the structured-log plane mirrors into."""
    global _default
    with _default_lock:
        _default = recorder


def get_default() -> Optional[FlightRecorder]:
    return _default


# -- reading artifacts back ----------------------------------------------------

def load_flight(path: Union[str, Path]) -> dict:
    """Load + sanity-check one artifact (``poem analyze --flight``)."""
    raw = json.loads(Path(path).read_text())
    if not isinstance(raw, dict) or "events" not in raw:
        raise ValueError(f"{path}: not a flight-recorder artifact")
    return raw


def format_flight(artifact: dict, *, events: int = 20) -> str:
    """Render one artifact as the analyzer's text block."""
    when = artifact.get("dumped_at")
    when_s = (
        time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(float(when)))
        if when is not None
        else "?"
    )
    lines = [
        f"Flight recorder — {artifact.get('role', '?')} "
        f"(pid {artifact.get('pid', '?')})",
        f"  dumped at : {when_s}",
        f"  reason    : {artifact.get('reason') or '(none)'}",
    ]
    transitions = artifact.get("transitions") or []
    if transitions:
        lines.append("  overload transitions:")
        for tr in transitions[-8:]:
            extra = " ".join(
                f"{k}={v}" for k, v in sorted(tr.items())
                if k not in ("t", "event")
            )
            lines.append(
                f"    t={_rel(tr, when)} {tr.get('event')}  {extra}".rstrip()
            )
    evs = artifact.get("events") or []
    lines.append(f"  last {min(events, len(evs))} of {len(evs)} events:")
    for ev in evs[-events:]:
        extra = " ".join(
            f"{k}={v}" for k, v in sorted(ev.items())
            if k not in ("t", "event")
        )
        lines.append(
            f"    t={_rel(ev, when)} {ev.get('event')}  {extra}".rstrip()
        )
    spans = artifact.get("spans") or []
    if spans:
        lines.append(f"  last {len(spans)} spans:")
        for sp in spans[-8:]:
            stages = " ".join(
                f"{name}={dur * 1e6:.1f}us"
                for name, dur in sp.get("stages", [])
            )
            lines.append(
                f"    trace #{sp.get('trace_id')} src={sp.get('source')} "
                f"seq={sp.get('seqno')} outcome={sp.get('outcome')}  "
                f"{stages}".rstrip()
            )
    profile = artifact.get("profile")
    if isinstance(profile, dict) and profile.get("stacks"):
        from .profiler import format_profile  # lazy: keep imports light

        lines.append("  profile window (what the process was doing):")
        for row in format_profile(
            profile["stacks"], top=3
        ).splitlines():
            lines.append(f"    {row}")
    return "\n".join(lines)


def _rel(entry: dict, dumped_at: Any) -> str:
    """Event time as seconds-before-dump (what crash reading wants)."""
    t = entry.get("t")
    if t is None or dumped_at is None:
        return "?"
    return f"-{max(float(dumped_at) - float(t), 0.0):.3f}s"
