"""Traffic workload generators.

The paper's performance experiment (§6.2) drives a 4 Mbps CBR stream —
"actually heavy in real-life large-scope MANETs, especially for most
military use" — from VMN1 to VMN3.  :class:`CbrSource` reproduces it;
:class:`PoissonSource` and :class:`OnOffSource` provide the other two
classic workload shapes for wider evaluation.

A source is attached to a *send function* rather than a protocol, so the
same generator drives a routed protocol (``protocol.send_data``), a raw
host transmit, or a baseline emulator.  Packets carry a sequence number
and generation stamp in their payload so receivers can compute loss and
latency without consulting the server's records (end-to-end measurement,
the way a real test tool would).
"""

from __future__ import annotations

import struct
from typing import Callable, Optional

import numpy as np

from ..errors import ConfigurationError
from ..protocols.base import TimerHandle, TimerService

__all__ = [
    "SendFn",
    "TrafficSource",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "parse_probe",
    "PROBE_MAGIC",
]

SendFn = Callable[[bytes, int], None]
"""``send(payload, size_bits)`` — however frames leave this node."""

PROBE_MAGIC = b"PoEmPROB"
_PROBE = struct.Struct(">8sQd")  # magic, seqno, t_generated


def make_probe(seqno: int, t_generated: float) -> bytes:
    """Encode one probe payload."""
    return _PROBE.pack(PROBE_MAGIC, seqno, t_generated)


def parse_probe(payload: bytes) -> Optional[tuple[int, float]]:
    """Decode a probe payload → (seqno, t_generated); None if not a probe."""
    if len(payload) < _PROBE.size or not payload.startswith(PROBE_MAGIC):
        return None
    _magic, seqno, t_gen = _PROBE.unpack(payload[: _PROBE.size])
    return int(seqno), float(t_gen)


class TrafficSource:
    """Base generator: timer-driven frames through a send function."""

    def __init__(
        self,
        timers: TimerService,
        now: Callable[[], float],
        send: SendFn,
        *,
        packet_size_bits: int = 8192,
        seed: int = 0,
    ) -> None:
        if packet_size_bits <= 0:
            raise ConfigurationError(
                f"packet size must be positive: {packet_size_bits}"
            )
        self._timers = timers
        self._now = now
        self._send = send
        self.packet_size_bits = packet_size_bits
        self._rng = np.random.default_rng(seed)
        self._timer: Optional[TimerHandle] = None
        self._running = False
        self.sent = 0
        self.sent_log: list[tuple[float, int]] = []  # (time, seqno)

    # -- subclass hook ---------------------------------------------------------

    def next_interval(self) -> float:
        """Seconds until the next frame (subclasses define the process)."""
        raise NotImplementedError

    # -- lifecycle ----------------------------------------------------------------

    def start(self) -> None:
        if self._running:
            raise ConfigurationError("source already running")
        self._running = True
        self._arm(self.next_interval())

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timers.cancel(self._timer)
            self._timer = None

    def _arm(self, delay: float) -> None:
        self._timer = self._timers.call_after(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        t = self._now()
        self.sent += 1
        self.sent_log.append((t, self.sent))
        self._send(make_probe(self.sent, t), self.packet_size_bits)
        self._arm(self.next_interval())


class CbrSource(TrafficSource):
    """Constant bit rate: one frame every ``size/rate`` seconds.

    The paper's workload: ``CbrSource(..., rate_bps=4_000_000)``.
    """

    def __init__(
        self,
        timers: TimerService,
        now: Callable[[], float],
        send: SendFn,
        *,
        rate_bps: float,
        packet_size_bits: int = 8192,
        seed: int = 0,
    ) -> None:
        if rate_bps <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_bps}")
        super().__init__(
            timers, now, send, packet_size_bits=packet_size_bits, seed=seed
        )
        self.rate_bps = rate_bps
        self._period = packet_size_bits / rate_bps

    def next_interval(self) -> float:
        return self._period


class PoissonSource(TrafficSource):
    """Poisson arrivals at ``rate_pps`` packets/second."""

    def __init__(
        self,
        timers: TimerService,
        now: Callable[[], float],
        send: SendFn,
        *,
        rate_pps: float,
        packet_size_bits: int = 8192,
        seed: int = 0,
    ) -> None:
        if rate_pps <= 0:
            raise ConfigurationError(f"rate must be positive: {rate_pps}")
        super().__init__(
            timers, now, send, packet_size_bits=packet_size_bits, seed=seed
        )
        self.rate_pps = rate_pps

    def next_interval(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_pps))


class OnOffSource(TrafficSource):
    """Bursty traffic: CBR during exponential ON periods, silent OFF.

    Models the interactive/command traffic the paper's military use case
    implies between the heavy CBR flows.
    """

    def __init__(
        self,
        timers: TimerService,
        now: Callable[[], float],
        send: SendFn,
        *,
        rate_bps: float,
        mean_on: float = 1.0,
        mean_off: float = 1.0,
        packet_size_bits: int = 8192,
        seed: int = 0,
    ) -> None:
        if rate_bps <= 0 or mean_on <= 0 or mean_off <= 0:
            raise ConfigurationError("rates and period means must be positive")
        super().__init__(
            timers, now, send, packet_size_bits=packet_size_bits, seed=seed
        )
        self._period = packet_size_bits / rate_bps
        self.mean_on = mean_on
        self.mean_off = mean_off
        self._on_until = 0.0

    def next_interval(self) -> float:
        t = self._now()
        if t < self._on_until:
            return self._period
        # Burst over: silent OFF period, then a fresh ON burst.
        off = float(self._rng.exponential(self.mean_off))
        self._on_until = t + off + float(self._rng.exponential(self.mean_on))
        return off + self._period
