"""Trace-driven traffic: replay a recorded (or synthetic) arrival process.

Where :mod:`.generators` produces parametric workloads, a
:class:`TraceSource` plays back an explicit list of ``(time, size_bits)``
arrivals — letting an experiment reuse the exact offered load of a prior
run (extracted from its packet records via :func:`trace_from_records`) or
a hand-crafted worst case.  Combined with
:meth:`~repro.scenario.script.Scenario.from_scene_events`, a finished
recording can be re-executed wholesale: same topology dynamics, same
offered traffic, different protocol or models under test.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional, Sequence

from ..core.packet import PacketRecord
from ..errors import ConfigurationError
from ..protocols.base import TimerHandle, TimerService
from .generators import SendFn, make_probe

__all__ = ["TraceSource", "trace_from_records"]


def trace_from_records(
    records: Iterable[PacketRecord],
    *,
    source: Optional[int] = None,
    kind: str = "data",
) -> list[tuple[float, int]]:
    """Extract a ``(t_origin, size_bits)`` arrival trace from packet records.

    Deduplicates per (source, seqno) — the log has one row per receiver,
    but the offered load is one arrival per transmitted frame.
    """
    seen: set[tuple[int, int]] = set()
    trace: list[tuple[float, int]] = []
    for r in records:
        if r.t_origin is None or r.kind != kind:
            continue
        if source is not None and r.source != source:
            continue
        key = (r.source, r.seqno)
        if key in seen:
            continue
        seen.add(key)
        trace.append((r.t_origin, r.size_bits))
    trace.sort()
    return trace


class TraceSource:
    """Plays a fixed arrival trace through a send function.

    Times are interpreted relative to :meth:`start` (the trace's first
    arrival fires ``trace[0][0] - offset`` seconds after start, where
    ``offset`` defaults to the trace's own origin so arrival spacing is
    preserved exactly).
    """

    def __init__(
        self,
        timers: TimerService,
        now: Callable[[], float],
        send: SendFn,
        trace: Sequence[tuple[float, int]],
        *,
        rebase: bool = True,
    ) -> None:
        if not trace:
            raise ConfigurationError("trace must contain at least one arrival")
        times = [t for t, _ in trace]
        if times != sorted(times):
            raise ConfigurationError("trace times must be non-decreasing")
        if any(bits <= 0 for _, bits in trace):
            raise ConfigurationError("trace sizes must be positive")
        self._timers = timers
        self._now = now
        self._send = send
        base = trace[0][0] if rebase else 0.0
        self._trace = [(t - base, bits) for t, bits in trace]
        if self._trace[0][0] < 0:
            raise ConfigurationError(
                "trace contains arrivals before t=0 (rebase disabled?)"
            )
        self._index = 0
        self._timer: Optional[TimerHandle] = None
        self._running = False
        self._t_start = 0.0
        self.sent = 0
        self.sent_log: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._trace)

    @property
    def remaining(self) -> int:
        return len(self._trace) - self._index

    def start(self) -> None:
        if self._running:
            raise ConfigurationError("trace source already running")
        self._running = True
        self._t_start = self._now()
        self._arm()

    def stop(self) -> None:
        self._running = False
        if self._timer is not None:
            self._timers.cancel(self._timer)
            self._timer = None

    def _arm(self) -> None:
        if self._index >= len(self._trace):
            self._running = False
            return
        due = self._t_start + self._trace[self._index][0]
        delay = max(due - self._now(), 0.0)
        self._timer = self._timers.call_after(delay, self._fire)

    def _fire(self) -> None:
        if not self._running or self._index >= len(self._trace):
            return
        _, bits = self._trace[self._index]
        self._index += 1
        t = self._now()
        self.sent += 1
        self.sent_log.append((t, self.sent))
        self._send(make_probe(self.sent, t), bits)
        self._arm()
