"""Workload generators: CBR (the paper's 4 Mbps flow), Poisson, On-Off."""

from .trace import TraceSource, trace_from_records
from .generators import (
    CbrSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    make_probe,
    parse_probe,
)

__all__ = [
    "TrafficSource",
    "CbrSource",
    "PoissonSource",
    "OnOffSource",
    "make_probe",
    "parse_probe",
    "TraceSource",
    "trace_from_records",
]
