"""Exception hierarchy for the PoEm emulator.

All library-raised exceptions derive from :class:`PoEmError` so callers can
catch everything the emulator raises with a single ``except`` clause while
still distinguishing configuration mistakes from runtime failures.
"""

from __future__ import annotations

__all__ = [
    "PoEmError",
    "ConfigurationError",
    "SceneError",
    "UnknownNodeError",
    "UnknownRadioError",
    "ChannelError",
    "TransportError",
    "FramingError",
    "SupervisionError",
    "FaultInjectionError",
    "ProtocolError",
    "ClockError",
    "RecordingError",
    "ReplayError",
    "AnalysisError",
    "SchedulerError",
    "ClusterError",
    "ScenarioError",
]


class PoEmError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(PoEmError):
    """A model, node, or emulator was configured with invalid parameters."""


class SceneError(PoEmError):
    """An invalid operation was attempted on the emulation scene."""


class UnknownNodeError(SceneError):
    """A scene operation referenced a node id that does not exist."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node id: {node_id!r}")
        self.node_id = node_id


class UnknownRadioError(SceneError):
    """A scene operation referenced a radio index that does not exist."""

    def __init__(self, node_id: object, radio_index: int) -> None:
        super().__init__(f"node {node_id!r} has no radio #{radio_index}")
        self.node_id = node_id
        self.radio_index = radio_index


class ChannelError(SceneError):
    """An invalid channel id was used."""


class TransportError(PoEmError):
    """A transport (TCP or virtual) failed to deliver or connect."""


class FramingError(TransportError):
    """A stream contained a malformed or oversized frame."""


class SupervisionError(PoEmError):
    """The thread-supervision layer was misused (double start/register)."""


class FaultInjectionError(PoEmError):
    """A fault-injection schedule was misconfigured."""


class ProtocolError(PoEmError):
    """A routing-protocol implementation violated its host contract."""


class ClockError(PoEmError):
    """Emulation-clock misuse (e.g. scheduling into the past)."""


class RecordingError(PoEmError):
    """The packet/scene recorder could not persist a record."""


class ReplayError(PoEmError):
    """A replay source was missing, truncated, or inconsistent."""


class AnalysisError(PoEmError):
    """The offline forensics plane was asked something a recording
    cannot answer (unknown record id, empty dataset, bad window)."""


class SchedulerError(PoEmError):
    """The forwarding schedule was used incorrectly."""


class ClusterError(PoEmError):
    """The parallelized (multi-worker) server encountered an error."""


class ScenarioError(PoEmError):
    """A scenario script was malformed or failed to execute."""
