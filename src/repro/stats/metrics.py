"""Traffic statistics: the numbers PoEm's evaluation phase produces.

The paper's Phase 2 (performance evaluation for optimization) rests on
time-stamped packet records.  This module turns either the server-side
packet log (:class:`~repro.core.packet.PacketRecord` rows) or end-to-end
sender/receiver probe logs into the metrics the paper reports —
principally the **packet loss rate over time** of Fig 10 — plus
throughput and latency series for broader use.

All series are computed over fixed windows aligned to the evaluation
interval, returned as parallel numpy arrays (``t`` = window centers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

from ..core.packet import PacketRecord
from ..errors import ConfigurationError

__all__ = [
    "TimeSeries",
    "loss_rate_series",
    "loss_rate_from_logs",
    "throughput_series",
    "latency_stats",
    "LatencyStats",
    "stamp_errors",
    "jitter_stats",
    "sequence_gaps",
]


@dataclass(frozen=True)
class TimeSeries:
    """A windowed series: centers ``t`` and values ``v`` (same length)."""

    t: np.ndarray
    v: np.ndarray

    def __post_init__(self) -> None:
        if self.t.shape != self.v.shape:
            raise ConfigurationError(
                f"misaligned series: {self.t.shape} vs {self.v.shape}"
            )

    def __len__(self) -> int:
        return len(self.t)


def _windows(t0: float, t1: float, window: float) -> np.ndarray:
    if window <= 0:
        raise ConfigurationError(f"window must be positive: {window}")
    if t1 <= t0:
        raise ConfigurationError(f"empty interval [{t0}, {t1}]")
    edges = np.arange(t0, t1 + window * 1e-9, window)
    if edges[-1] < t1:
        edges = np.append(edges, t1)
    return edges


def loss_rate_series(
    records: Iterable[PacketRecord],
    t0: float,
    t1: float,
    window: float,
    *,
    kind: Optional[str] = "data",
    source: Optional[int] = None,
    destination: Optional[int] = None,
) -> TimeSeries:
    """Per-window loss rate from the server's packet log.

    A record counts as *offered* if it has an origin stamp in the window
    (filtered by kind/source/destination when given) and as *lost* if it
    additionally carries a drop reason.  This is exactly what PoEm's
    recording thread enables: loss attributed to the instant the client
    generated the packet — the "real-time traffic recording" of the title.
    """
    edges = _windows(t0, t1, window)
    offered = np.zeros(len(edges) - 1)
    lost = np.zeros(len(edges) - 1)
    for r in records:
        if r.t_origin is None or not (t0 <= r.t_origin < t1):
            continue
        if kind is not None and r.kind != kind:
            continue
        if source is not None and r.source != source:
            continue
        if destination is not None and r.destination != destination:
            continue
        i = min(int((r.t_origin - t0) / window), len(offered) - 1)
        offered[i] += 1
        if r.dropped:
            lost[i] += 1
    centers = 0.5 * (edges[:-1] + edges[1:])
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(offered > 0, lost / np.maximum(offered, 1), np.nan)
    return TimeSeries(centers, rate)


def loss_rate_from_logs(
    sent_log: Sequence[tuple[float, int]],
    received_seqnos: set[int],
    t0: float,
    t1: float,
    window: float,
) -> TimeSeries:
    """End-to-end loss from sender/receiver probe logs.

    ``sent_log`` is the generator's ``(time, seqno)`` list; a probe is
    lost if its seqno never reached the receiver.  This is the
    measurement an experimenter without server access would make — the
    Fig 10 "Experiment" curve.
    """
    edges = _windows(t0, t1, window)
    offered = np.zeros(len(edges) - 1)
    lost = np.zeros(len(edges) - 1)
    for t, seqno in sent_log:
        if not (t0 <= t < t1):
            continue
        i = min(int((t - t0) / window), len(offered) - 1)
        offered[i] += 1
        if seqno not in received_seqnos:
            lost[i] += 1
    centers = 0.5 * (edges[:-1] + edges[1:])
    with np.errstate(invalid="ignore", divide="ignore"):
        rate = np.where(offered > 0, lost / np.maximum(offered, 1), np.nan)
    return TimeSeries(centers, rate)


def throughput_series(
    records: Iterable[PacketRecord],
    t0: float,
    t1: float,
    window: float,
    *,
    destination: Optional[int] = None,
) -> TimeSeries:
    """Delivered bits/s per window (by delivery stamp)."""
    edges = _windows(t0, t1, window)
    bits = np.zeros(len(edges) - 1)
    for r in records:
        if r.dropped or r.t_delivered is None:
            continue
        if not (t0 <= r.t_delivered < t1):
            continue
        if destination is not None and r.receiver != destination:
            continue
        i = min(int((r.t_delivered - t0) / window), len(bits) - 1)
        bits[i] += r.size_bits
    centers = 0.5 * (edges[:-1] + edges[1:])
    return TimeSeries(centers, bits / window)


@dataclass(frozen=True)
class LatencyStats:
    """Summary of per-packet transit latency."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float


def latency_stats(records: Iterable[PacketRecord]) -> Optional[LatencyStats]:
    """Origin→delivery latency summary over delivered records."""
    lat = np.array(
        [
            r.t_delivered - r.t_origin
            for r in records
            if not r.dropped
            and r.t_delivered is not None
            and r.t_origin is not None
        ]
    )
    if lat.size == 0:
        return None
    return LatencyStats(
        count=int(lat.size),
        mean=float(lat.mean()),
        p50=float(np.percentile(lat, 50)),
        p95=float(np.percentile(lat, 95)),
        maximum=float(lat.max()),
    )


def jitter_stats(
    records: Iterable[PacketRecord],
    *,
    source: Optional[int] = None,
    destination: Optional[int] = None,
) -> Optional[float]:
    """Mean inter-arrival jitter (RFC-3550 style) of a delivered flow.

    Computed as the mean absolute difference between consecutive packets'
    one-way latencies, over delivered data records sorted by sequence
    number.  None when fewer than two deliveries match.
    """
    flow = sorted(
        (
            r
            for r in records
            if not r.dropped
            and r.t_delivered is not None
            and r.t_origin is not None
            and (source is None or r.source == source)
            and (destination is None or r.receiver == destination)
        ),
        key=lambda r: r.seqno,
    )
    if len(flow) < 2:
        return None
    latencies = np.array([r.t_delivered - r.t_origin for r in flow])
    return float(np.mean(np.abs(np.diff(latencies))))


def sequence_gaps(
    records: Iterable[PacketRecord],
    *,
    source: Optional[int] = None,
    destination: Optional[int] = None,
) -> list[tuple[int, int]]:
    """Missing sequence-number runs of a delivered flow.

    Returns ``[(first_missing, last_missing), ...]`` — what a receiver-side
    analyzer reports as loss bursts.  Useful for distinguishing random
    loss-model drops (many length-1 gaps) from a link outage (one long
    gap).
    """
    seqnos = sorted(
        {
            r.seqno
            for r in records
            if not r.dropped
            and (source is None or r.source == source)
            and (destination is None or r.receiver == destination)
        }
    )
    gaps: list[tuple[int, int]] = []
    for prev, cur in zip(seqnos, seqnos[1:]):
        if cur > prev + 1:
            gaps.append((prev + 1, cur - 1))
    return gaps


def stamp_errors(
    records: Iterable[PacketRecord],
) -> np.ndarray:
    """Per-record ``t_receipt - t_origin`` — the time-stamping error.

    For PoEm (client-stamped receipt) this is ~0 by construction; for the
    serialized JEmu-style baseline it grows with contention — the Fig 2
    phenomenon, quantified.
    """
    return np.array(
        [
            r.t_receipt - r.t_origin
            for r in records
            if r.t_receipt is not None and r.t_origin is not None
        ]
    )
