"""Export packet/scene records for external analysis tools.

The paper logs everything into SQL "for later statistics"; analysts often
want the data in pandas/R/gnuplot instead.  Two formats:

* **CSV** — one row per packet record, flat columns (``export_packets_csv``)
  and one per scene event with JSON-encoded details
  (``export_scene_csv``);
* **JSON-lines** — both logs interleaved in time order, one self-tagged
  object per line (``export_jsonl``), convenient for jq pipelines;
* **metrics JSON** — a point-in-time snapshot of a telemetry registry
  (``export_metrics_json``), the same data ``/metrics`` exposes in
  Prometheus text, for runs without a scraper attached.

All writers stream; nothing is buffered wholesale.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Union

from ..core.recording import Recorder

__all__ = [
    "export_packets_csv",
    "export_scene_csv",
    "export_jsonl",
    "export_metrics_json",
]

PACKET_FIELDS = (
    "record_id", "seqno", "source", "destination", "sender", "receiver",
    "channel", "kind", "size_bits", "t_origin", "t_receipt", "t_forward",
    "t_delivered", "drop_reason",
)


def export_packets_csv(recorder: Recorder, path: Union[str, Path]) -> int:
    """Write the packet log as CSV; returns the row count."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(PACKET_FIELDS)
        for record in recorder.packets():
            writer.writerow(
                [getattr(record, field) for field in PACKET_FIELDS]
            )
            count += 1
    return count


def export_scene_csv(recorder: Recorder, path: Union[str, Path]) -> int:
    """Write the scene-event log as CSV (details JSON-encoded)."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(("time", "kind", "node", "details"))
        for event in recorder.scene_events():
            writer.writerow(
                (event.time, event.kind, int(event.node),
                 json.dumps(event.details))
            )
            count += 1
    return count


def export_jsonl(recorder: Recorder, path: Union[str, Path]) -> int:
    """Write both logs as time-ordered JSON lines; returns line count.

    Each line is ``{"type": "packet"|"scene", "t": <sort time>, ...}``.
    Packets sort by origin stamp (falling back through receipt/forward);
    scene events by their time.
    """

    def packet_time(record) -> float:
        for stamp in (record.t_origin, record.t_receipt, record.t_forward):
            if stamp is not None:
                return stamp
        return 0.0

    entries: list[tuple[float, int, dict]] = []
    for record in recorder.packets():
        obj = {"type": "packet", "t": packet_time(record)}
        obj.update(
            {field: getattr(record, field) for field in PACKET_FIELDS}
        )
        entries.append((obj["t"], 0, obj))
    for event in recorder.scene_events():
        entries.append(
            (
                event.time,
                1,
                {
                    "type": "scene",
                    "t": event.time,
                    "kind": event.kind,
                    "node": int(event.node),
                    "details": event.details,
                },
            )
        )
    entries.sort(key=lambda e: (e[0], e[1]))
    with open(path, "w") as fh:
        for _, _, obj in entries:
            fh.write(json.dumps(obj) + "\n")
    return len(entries)


def export_metrics_json(source, path: Union[str, Path]) -> int:
    """Write a telemetry snapshot as one pretty-printed JSON document.

    ``source`` is a :class:`repro.obs.Telemetry` bundle, a
    :class:`repro.obs.MetricsRegistry`, or anything exposing a
    ``snapshot() -> dict``.  Returns the number of metric families
    written.  Histograms carry their bucket layout, counts, sum and
    p50/p95/p99 estimates — enough to re-plot latency distributions
    without the live registry.
    """
    registry = getattr(source, "registry", source)
    snap = registry.snapshot()
    with open(path, "w") as fh:
        json.dump(snap, fh, indent=2, default=str)
        fh.write("\n")
    return len(snap.get("metrics", {}))
