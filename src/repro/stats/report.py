"""Whole-run statistics report — PoEm's 'later statistics' pane (§3.2).

The recording threads exist "for later statistics and replay"; replay
lives in :mod:`repro.core.replay`, and this module is the statistics
half: one call turns a recorder into the summary an experimenter reads
first — totals, drop breakdown, per-flow delivery/latency/jitter, and a
windowed loss series.

``build_report`` returns structured data; ``format_report`` renders the
text block (what the CLI and examples print).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Optional

from ..core.packet import DropReason
from ..core.recording import Recorder
from .metrics import LatencyStats, jitter_stats, latency_stats

__all__ = ["FlowStats", "NodeActivity", "RunReport", "build_report",
           "format_report", "format_health"]


@dataclass(frozen=True)
class NodeActivity:
    """One node's traffic footprint (as hop sender / receiver)."""

    node: int
    frames_sent: int
    frames_received: int
    bits_sent: int
    bits_received: int
    drops_as_sender: int


@dataclass(frozen=True)
class FlowStats:
    """One (source, destination) data flow's end-to-end numbers."""

    source: int
    destination: int
    offered: int
    delivered: int
    latency: Optional[LatencyStats]
    jitter: Optional[float]

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.offered if self.offered else 0.0


@dataclass(frozen=True)
class RunReport:
    """Aggregate statistics of one recorded run."""

    duration: float
    total_records: int
    delivered: int
    dropped: int
    drop_reasons: dict[str, int]
    control_records: int
    data_records: int
    flows: list[FlowStats] = field(default_factory=list)
    nodes: list[NodeActivity] = field(default_factory=list)
    records_evicted: int = 0
    """Records the recorder's ring bound discarded before this report —
    when non-zero, the totals above describe a *suffix* of the run."""

    lag_budget: float = 0.010
    deadline_on_time: int = 0
    deadline_late: int = 0
    deadline_missed: int = 0
    """Validity envelope: delivered frames bucketed by scheduler lag
    (``t_delivered − t_forward``) against the lag budget — on time
    within it, late within 10×, missed beyond.  Virtual-clock runs are
    always entirely on time."""

    @property
    def overall_loss(self) -> float:
        return self.dropped / self.total_records if self.total_records else 0.0

    @property
    def deadline_shed(self) -> int:
        """Frames the overload controller dropped as hopelessly late."""
        return self.drop_reasons.get(DropReason.DEADLINE_SHED, 0)

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of delivered frames later than 10× the lag budget."""
        total = self.deadline_on_time + self.deadline_late + self.deadline_missed
        return self.deadline_missed / total if total else 0.0

    @property
    def fidelity(self) -> str:
        """Did the run stay in real-time territory?

        ``"real-time"`` — every delivery within the lag budget, nothing
        shed; ``"degraded"`` — late deliveries but no outright misses;
        ``"overloaded"`` — missed deadlines or load-shedding: the
        numbers above describe an emulator that fell behind real time.
        """
        if self.deadline_shed or self.deadline_missed:
            return "overloaded"
        if self.deadline_late:
            return "degraded"
        return "real-time"

    @property
    def transport_dropped(self) -> int:
        """Drops caused by the fault-tolerance/transport layer (stale
        peers, outbox overflow) rather than the emulated medium."""
        return sum(
            count
            for reason, count in self.drop_reasons.items()
            if reason in DropReason.TRANSPORT
        )

    @property
    def medium_dropped(self) -> int:
        """Drops attributable to the emulated radio medium/models."""
        return self.dropped - self.transport_dropped


def build_report(
    recorder: Recorder, *, top_flows: int = 10, lag_budget: float = 0.010
) -> RunReport:
    """Compute the run report from a recorder's packet rows."""
    packets = recorder.packets()
    stamps = [
        s
        for p in packets
        for s in (p.t_origin, p.t_delivered)
        if s is not None
    ]
    duration = (max(stamps) - min(stamps)) if stamps else 0.0
    dropped = [p for p in packets if p.dropped]
    reasons = Counter(p.drop_reason for p in dropped)

    # Per-flow stats over data records, keyed by (source, destination).
    flow_keys = Counter(
        (p.source, p.destination)
        for p in packets
        if p.kind == "data" and p.destination >= 0
    )
    flows = []
    for (src, dst), _count in flow_keys.most_common(top_flows):
        rows = [
            p for p in packets
            if p.kind == "data" and p.source == src and p.destination == dst
        ]
        # Offered = distinct frames (dedup fan-out rows by seqno).
        offered = len({p.seqno for p in rows})
        delivered_rows = [
            p for p in rows if not p.dropped and p.receiver == dst
        ]
        delivered = len({p.seqno for p in delivered_rows})
        flows.append(
            FlowStats(
                source=src,
                destination=dst,
                offered=offered,
                delivered=delivered,
                latency=latency_stats(delivered_rows),
                jitter=jitter_stats(delivered_rows),
            )
        )

    # Per-node activity (hop-level: sender/receiver of each record).
    activity: dict[int, dict[str, int]] = {}

    def slot(node: int) -> dict[str, int]:
        return activity.setdefault(
            node,
            {"sent": 0, "recv": 0, "bits_out": 0, "bits_in": 0, "drops": 0},
        )

    for p in packets:
        s = slot(p.sender)
        s["sent"] += 1
        s["bits_out"] += p.size_bits
        if p.dropped:
            s["drops"] += 1
        elif p.receiver is not None:
            r = slot(p.receiver)
            r["recv"] += 1
            r["bits_in"] += p.size_bits
    nodes = [
        NodeActivity(
            node=n,
            frames_sent=a["sent"],
            frames_received=a["recv"],
            bits_sent=a["bits_out"],
            bits_received=a["bits_in"],
            drops_as_sender=a["drops"],
        )
        for n, a in sorted(activity.items())
    ]

    # Deadline buckets: scheduler lag of every delivered record.
    on_time = late = missed = 0
    miss_horizon = lag_budget * 10.0
    for p in packets:
        if p.dropped or p.t_delivered is None or p.t_forward is None:
            continue
        lag = p.t_delivered - p.t_forward
        if lag <= lag_budget:
            on_time += 1
        elif lag <= miss_horizon:
            late += 1
        else:
            missed += 1

    return RunReport(
        duration=duration,
        total_records=len(packets),
        delivered=len(packets) - len(dropped),
        dropped=len(dropped),
        drop_reasons=dict(reasons),
        control_records=sum(1 for p in packets if p.kind != "data"),
        data_records=sum(1 for p in packets if p.kind == "data"),
        flows=flows,
        nodes=nodes,
        records_evicted=int(getattr(recorder, "evicted", 0)),
        lag_budget=lag_budget,
        deadline_on_time=on_time,
        deadline_late=late,
        deadline_missed=missed,
    )


def format_report(report: RunReport) -> str:
    """Render the report as the text block the CLI prints."""
    lines = [
        "Run statistics",
        f"  duration        : {report.duration:.3f}s",
        f"  packet records  : {report.total_records} "
        f"({report.data_records} data, {report.control_records} control)",
        f"  delivered       : {report.delivered}",
        f"  dropped         : {report.dropped} "
        f"({report.overall_loss:.1%} of records)",
    ]
    for reason, count in sorted(report.drop_reasons.items()):
        tag = " [transport]" if reason in DropReason.TRANSPORT else ""
        lines.append(f"    {reason:<18}: {count}{tag}")
    if report.transport_dropped:
        lines.append(
            f"  transport drops : {report.transport_dropped} "
            "(stale peers / outbox overflow — not the radio medium)"
        )
    if report.records_evicted:
        lines.append(
            f"  evicted records : {report.records_evicted} "
            "(ring bound — stats cover a suffix of the run)"
        )
    fid = (
        f"  fidelity        : {report.fidelity} "
        f"(budget {report.lag_budget * 1e3:.0f}ms: "
        f"{report.deadline_on_time} on time, {report.deadline_late} late, "
        f"{report.deadline_missed} missed"
    )
    if report.deadline_shed:
        fid += f", {report.deadline_shed} shed"
    lines.append(fid + ")")
    if report.flows:
        lines.append("  flows (by record volume):")
        for f in report.flows:
            lat = (
                "-" if f.latency is None
                else f"{f.latency.mean * 1e3:.2f}ms mean / "
                     f"{f.latency.p95 * 1e3:.2f}ms p95"
            )
            jit = "-" if f.jitter is None else f"{f.jitter * 1e3:.2f}ms"
            lines.append(
                f"    {f.source} -> {f.destination}: "
                f"{f.delivered}/{f.offered} ({f.delivery_rate:.1%})  "
                f"latency {lat}  jitter {jit}"
            )
    if report.nodes:
        lines.append("  node activity:")
        for n in report.nodes:
            lines.append(
                f"    node {n.node:3d}: tx {n.frames_sent:5d} "
                f"({n.bits_sent} b)  rx {n.frames_received:5d} "
                f"({n.bits_received} b)  tx-drops {n.drops_as_sender}"
            )
    return "\n".join(lines)


def format_health(health: dict) -> str:
    """Render a server/emulator ``health()`` snapshot as a text pane.

    Accepts the dict shape produced by
    :meth:`repro.core.tcpserver.PoEmServer.health`,
    :meth:`repro.core.server.InProcessEmulator.health` and
    :meth:`repro.cluster.sharded.ShardedEmulator.health` (whose
    ``cluster`` section renders one line per shard worker).
    """
    lines = [
        "Server health",
        f"  running         : {health.get('running', '?')}",
        f"  emulation time  : {float(health.get('time', 0.0)):.3f}s",
    ]
    threads = health.get("threads", {})
    if threads:
        lines.append("  threads:")
        for name, t in sorted(threads.items()):
            status = "alive" if t.get("alive") else "DEAD"
            extra = ""
            if t.get("restarts"):
                extra += f"  restarts {t['restarts']}"
            if t.get("failures"):
                extra += f"  failures {t['failures']}"
            if t.get("last_error"):
                extra += f"  last: {t['last_error']}"
            lines.append(f"    {name:<20}: {status}{extra}")
    clients = health.get("clients", {})
    if clients:
        lines.append("  clients:")
        for nid, c in sorted(clients.items()):
            mark = " STALE" if c.get("stale") else ""
            lines.append(
                f"    node {nid:3d} ({c.get('label') or '-'}): "
                f"outbox {c.get('outbox_depth', 0)}  "
                f"overflow {c.get('overflow', 0)}{mark}"
            )
    quarantined = health.get("quarantined", {})
    if quarantined:
        lines.append(
            "  quarantined     : "
            + ", ".join(str(n) for n in sorted(quarantined))
        )
    engine = health.get("engine", {})
    if engine:
        line = (
            f"  engine          : ingested {engine.get('ingested', 0)}  "
            f"forwarded {engine.get('forwarded', 0)}  "
            f"dropped {engine.get('dropped', 0)}"
        )
        if engine.get("transport_dropped"):
            line += f"  (transport {engine['transport_dropped']})"
        lines.append(line)
    if "schedule_depth" in health:
        lines.append(
            f"  schedule depth  : {health['schedule_depth']}"
        )
    overload = health.get("overload")
    if overload:
        line = (
            f"  overload        : {overload.get('state', '?')}  "
            f"lag-ewma {float(overload.get('lag_ewma', 0.0)) * 1e3:.2f}ms"
        )
        if overload.get("shed"):
            line += f"  shed {overload['shed']}"
        if overload.get("coalesced"):
            line += f"  coalesced {overload['coalesced']}"
        if overload.get("degraded_seconds"):
            line += f"  degraded {float(overload['degraded_seconds']):.2f}s"
        lines.append(line)
    deadline = health.get("deadline")
    if deadline:
        lines.append(
            f"  deadlines       : {deadline.get('on_time', 0)} on time  "
            f"{deadline.get('late', 0)} late  "
            f"{deadline.get('missed', 0)} missed "
            f"(budget {float(deadline.get('budget', 0.0)) * 1e3:.0f}ms)"
        )
    if health.get("records_evicted"):
        lines.append(
            f"  evicted records : {health['records_evicted']} (ring bound)"
        )
    cluster = health.get("cluster")
    if cluster:
        lines.append(
            f"  cluster         : {cluster.get('n_workers', 0)} workers"
            f" ({cluster.get('alive', 0)} alive)"
        )
        if cluster.get("pull_interval"):
            lines.append(
                f"    telemetry pull  : every"
                f" {float(cluster['pull_interval']):.2f}s"
            )
        for w in cluster.get("per_worker", []):
            # A shard whose last report is older than 2x the pull
            # interval is flagged: its gauges below are lies by now.
            mark = " STALE" if w.get("stale") else ""
            age = w.get("report_age")
            if mark and age is not None:
                mark += f" (last report {float(age):.1f}s ago)"
            lines.append(
                f"    shard {w.get('worker', '?')}: "
                f"ingested {w.get('shard_ingested', 0)}  "
                f"queue {w.get('queue_depth', 0)}  "
                f"busy {float(w.get('busy_fraction', 0.0)):.1%}{mark}"
            )
        crash_artifacts = cluster.get("crash_artifacts") or {}
        for worker, path in sorted(crash_artifacts.items()):
            lines.append(f"    crash artifact (worker {worker}): {path}")
    if health.get("metrics_address"):
        host_, port_ = health["metrics_address"][:2]
        lines.append(f"  metrics         : http://{host_}:{port_}/metrics")
    failures = health.get("recent_failures", [])
    if failures:
        lines.append("  recent failures:")
        for f in failures[-8:]:
            lines.append(f"    [{f.get('thread')}] {f.get('error')}")
    return "\n".join(lines)
