"""Statistics: windowed traffic metrics and the Fig 10 theoretical curves."""

from .metrics import (
    LatencyStats,
    jitter_stats,
    sequence_gaps,
    TimeSeries,
    latency_stats,
    loss_rate_from_logs,
    loss_rate_series,
    stamp_errors,
    throughput_series,
)
from .export import (
    export_jsonl,
    export_metrics_json,
    export_packets_csv,
    export_scene_csv,
)
from .report import (
    FlowStats,
    NodeActivity,
    RunReport,
    build_report,
    format_health,
    format_report,
)
from .theory import RelayScenario, fluid_stamp_lag, nonrealtime_curve

__all__ = [
    "TimeSeries",
    "LatencyStats",
    "loss_rate_series",
    "loss_rate_from_logs",
    "throughput_series",
    "latency_stats",
    "stamp_errors",
    "RelayScenario",
    "fluid_stamp_lag",
    "nonrealtime_curve",
    "jitter_stats",
    "sequence_gaps",
    "RunReport",
    "FlowStats",
    "build_report",
    "format_report",
    "NodeActivity",
    "export_packets_csv",
    "export_scene_csv",
    "export_jsonl",
    "export_metrics_json",
    "format_health",
]
