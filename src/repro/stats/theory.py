"""Closed-form expected curves for the Fig 10 comparison.

"According to the theoretical models, we drew both the expected real-time
and non-real-time performance curves in advance" (§6.2).  This module is
those theoretical models, for the Fig 9 scenario:

* VMN1 at the origin sends CBR to VMN3 two hop-distances away;
* VMN2 starts midway and moves perpendicular ("downwards") at ``v``;
* hop distance at time t: ``r(t) = sqrt(d² + (v·t)²)`` for both hops
  (symmetric geometry);
* per-hop loss from the piecewise model; the two hops are on different
  channels ("to avoid any collision"), so losses are independent and the
  end-to-end delivery probability is the product of the per-hop ones:

  ``P_e2e(t) = 1 − (1 − P(r(t)))²``

* once ``r(t) > R`` the relay is out of range of an endpoint and loss is
  total (the link-layer drops every frame).

The **real-time** expected curve evaluates this at the packet's true
generation time.  The **non-real-time** curve models what a centralized
serially-stamping recorder (§2.1 / Fig 2) would attribute: each packet's
time-stamp lags its true generation time by the recording backlog, so the
measured curve is the true curve *delayed* (and flattened) by the lag.
We model the lag with a fluid single-server queue: packets arrive at the
offered rate ``λ(t)`` and are stamped at a fixed service rate ``μ``; the
backlog ``B(t)`` integrates ``λ − μ`` (clamped at 0) and a packet
generated at ``t`` is stamped at ``t + B(t)/μ``.  With ``λ > μ`` (heavy
4 Mbps load — the paper calls it heavy) the lag grows through the run and
the non-real-time curve visibly trails the true one, which is exactly the
divergence Fig 10 shows.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from ..models.link import PacketLossModel

__all__ = [
    "RelayScenario",
    "fluid_stamp_lag",
    "nonrealtime_curve",
    "serialize_stamps",
]


@dataclass(frozen=True)
class RelayScenario:
    """The Fig 9 geometry + Table 3 parameters, as one object."""

    hop_distance: float = 120.0
    radio_range: float = 200.0
    speed: float = 10.0
    loss: PacketLossModel = PacketLossModel(
        p0=0.1, p1=0.9, d0=50.0, radio_range=200.0
    )

    def __post_init__(self) -> None:
        if self.hop_distance <= 0 or self.speed < 0:
            raise ConfigurationError("bad scenario geometry")

    def hop_length(self, t: np.ndarray | float) -> np.ndarray:
        """Distance from either endpoint to the relay at time ``t``."""
        t = np.asarray(t, dtype=float)
        return np.sqrt(self.hop_distance**2 + (self.speed * t) ** 2)

    def breakage_time(self) -> float:
        """When the relay leaves radio range and loss saturates at 1."""
        if self.speed == 0:
            return math.inf
        if self.radio_range <= self.hop_distance:
            return 0.0
        return (
            math.sqrt(self.radio_range**2 - self.hop_distance**2) / self.speed
        )

    def per_hop_loss(self, t: np.ndarray | float) -> np.ndarray:
        """Loss probability of one hop at time ``t`` (1 beyond range)."""
        r = self.hop_length(t)
        p = self.loss.loss_probability_array(r)
        return np.where(r > self.radio_range, 1.0, p)

    def end_to_end_loss(self, t: np.ndarray | float) -> np.ndarray:
        """Fig 10's expected **real-time** curve: ``1 − (1 − P)²``."""
        p = self.per_hop_loss(t)
        return 1.0 - (1.0 - p) ** 2


def fluid_stamp_lag(
    t: np.ndarray, arrival_pps: float, service_pps: float
) -> np.ndarray:
    """Recording lag of a serial time-stamper under constant offered load.

    Fluid queue: backlog grows at ``max(arrival − service, 0)`` packets/s;
    a packet generated at ``t`` waits ``backlog(t)/service`` before being
    stamped.  ``t`` must be sorted ascending.
    """
    if service_pps <= 0 or arrival_pps < 0:
        raise ConfigurationError("rates must be positive")
    t = np.asarray(t, dtype=float)
    growth = max(arrival_pps - service_pps, 0.0)
    backlog = growth * np.maximum(t - t[0], 0.0)
    return backlog / service_pps


def nonrealtime_curve(
    scenario: RelayScenario,
    t: np.ndarray,
    arrival_pps: float,
    service_pps: float,
) -> np.ndarray:
    """Fig 10's expected **non-real-time** curve.

    The serially-stamped recorder attributes the loss that truly happened
    at ``t`` to the later stamp time ``t + lag(t)``; equivalently, the
    value *plotted at* time ``t`` is the true loss at the earlier
    generation time ``g(t)`` with ``g + lag(g) = t``.  We invert the stamp
    map by interpolation.
    """
    t = np.asarray(t, dtype=float)
    lag = fluid_stamp_lag(t, arrival_pps, service_pps)
    stamp_times = t + lag
    true_loss = scenario.end_to_end_loss(t)
    # Value shown at time x = true loss of the packet stamped at x.
    return np.interp(t, stamp_times, true_loss)


def serialize_stamps(
    arrival_times: np.ndarray, service_pps: float
) -> np.ndarray:
    """Re-stamp arrivals through a serial single-server recorder.

    Given true generation times (sorted), returns the times a JEmu-style
    serial recorder would attribute to each packet: each takes
    ``1/service_pps`` of server time and queues behind its predecessors
    (Fig 2's serial reception, applied to a whole trace).  This is how a
    *measured* non-real-time curve is produced from a real run's records:
    re-stamp, re-bin, compare — same traffic, distorted attribution.
    """
    if service_pps <= 0:
        raise ConfigurationError(f"service rate must be positive: {service_pps}")
    arrival_times = np.asarray(arrival_times, dtype=float)
    if arrival_times.size == 0:
        return arrival_times.copy()
    if np.any(np.diff(arrival_times) < 0):
        raise ConfigurationError("arrival times must be sorted")
    service = 1.0 / service_pps
    stamps = np.empty_like(arrival_times)
    free_at = -np.inf
    for i, t in enumerate(arrival_times):
        start = max(t, free_at)
        free_at = start + service
        stamps[i] = free_at  # stamped when reception completes
    return stamps
