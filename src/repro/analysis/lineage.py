"""Per-packet lineage: the full life story of one recorded packet.

"What happened to packet 4821?" — answered by joining one
:class:`~repro.core.packet.PacketRecord` with its sampled pipeline span
(when the 1-in-N tracer caught it) and the sender's clock audit:

======== ==================================================================
stage    meaning
======== ==================================================================
origin   the client's parallel time-stamp (§4.1), **skew-corrected** onto
         the server clock using the nearest sync sample + fitted drift
receipt  server receive time (Step 1)
decision Steps 2–4 verdict: forwarded, or dropped with the reason
schedule the computed forward time pushed onto the schedule (Step 4)
fire     when the scan loop actually fired it (Step 5) — ``t_forward``
         plus the traced scheduler lag
send     hand-off to the receiver's sender thread (Step 6), from the
         traced ``send`` stage duration
delivery the recorded delivery stamp (Step 7)
======== ==================================================================

A dropped packet's lineage ends at its ``decision`` stage; a delivered
packet without a sampled span omits ``fire``/``send`` (the recorder has
no timing for them) and still resolves the other five.

On a sharded recording a traced packet's merged span also carries the
cross-process stages (:data:`~repro.obs.tracing.IPC_STAGES`); the
lineage then gains an extra ``shard-hop`` stage between ``receipt`` and
``decision`` showing the parent-side encode cost, the pipe dwell and
the worker-side decode cost of the hop.  ``shard-hop`` is deliberately
*not* in :data:`LINEAGE_STAGES` — single-process lineages stay seven
stages and :attr:`PacketLineage.complete` is unaffected.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.packet import PacketRecord
from ..obs.tracing import IPC_STAGES
from .dataset import RunDataset
from .drift import ClockAudit, audit_clocks

__all__ = [
    "LineageStage",
    "PacketLineage",
    "lineage",
    "format_lineage",
    "LINEAGE_STAGES",
]

LINEAGE_STAGES = (
    "origin", "receipt", "decision", "schedule", "fire", "send", "delivery",
)
"""Canonical lineage stage names, in pipeline order."""


@dataclass(frozen=True)
class LineageStage:
    """One resolved event in a packet's life."""

    name: str
    t: Optional[float]
    """Server-clock time of the event (None when unknowable)."""

    detail: str = ""

    def as_dict(self) -> dict:
        return {"stage": self.name, "t": self.t, "detail": self.detail}


@dataclass(frozen=True)
class PacketLineage:
    """The joined life story of one packet record."""

    record: PacketRecord
    stages: tuple[LineageStage, ...]
    corrected_t_origin: Optional[float]
    """The origin stamp expressed on the server clock."""

    stamp_correction: float
    """What was added to the raw client stamp (0 when no sync history)."""

    span: Optional[object] = None
    """The matched :class:`~repro.obs.tracing.TraceSpan`, if sampled."""

    @property
    def complete(self) -> bool:
        """True when every canonical stage resolved with a time."""
        named = {s.name for s in self.stages if s.t is not None}
        return all(n in named for n in LINEAGE_STAGES)

    def stage(self, name: str) -> Optional[LineageStage]:
        for s in self.stages:
            if s.name == name:
                return s
        return None

    def as_dict(self) -> dict:
        return {
            "record_id": self.record.record_id,
            "source": self.record.source,
            "seqno": self.record.seqno,
            "sender": self.record.sender,
            "receiver": self.record.receiver,
            "channel": self.record.channel,
            "outcome": self.record.drop_reason or "delivered",
            "corrected_t_origin": self.corrected_t_origin,
            "stamp_correction": self.stamp_correction,
            "traced": self.span is not None,
            "stages": [s.as_dict() for s in self.stages],
        }


def lineage(
    dataset: RunDataset,
    record_id: int,
    *,
    audit: Optional[ClockAudit] = None,
) -> PacketLineage:
    """Resolve the lineage of one packet record.

    ``audit`` is recomputed from the dataset when not supplied; pass a
    precomputed one when resolving many lineages.
    """
    record = dataset.packet(record_id)
    if audit is None:
        audit = audit_clocks(dataset)

    stages: list[LineageStage] = []

    # -- origin: the client stamp, skew-corrected --------------------------
    corrected: Optional[float] = None
    correction = 0.0
    if record.t_origin is not None:
        anchor_t = (
            record.t_receipt if record.t_receipt is not None
            else record.t_origin
        )
        correction = audit.correction_at(record.source, anchor_t)
        corrected = record.t_origin + correction
        stages.append(
            LineageStage(
                "origin", corrected,
                f"client stamp {record.t_origin:.6f}"
                f" {correction:+.6f} skew correction",
            )
        )
    else:
        stages.append(LineageStage("origin", None, "no client stamp"))

    # -- receipt ------------------------------------------------------------
    stages.append(
        LineageStage(
            "receipt", record.t_receipt,
            "server receive (Step 1)" if record.t_receipt is not None
            else "not recorded",
        )
    )

    # -- shard-hop: cross-process stages on a sharded run's merged span ------
    spans = dataset.spans_for(record)
    span = spans[0] if spans else None
    if span is not None:
        ipc = {
            name: dur for name, dur in span.stages if name in IPC_STAGES
        }
        if ipc:
            stages.append(
                LineageStage(
                    "shard-hop", record.t_receipt,
                    f"pipe to shard worker: encode"
                    f" {ipc.get('ipc_encode', 0.0) * 1e6:.1f} us,"
                    f" dwell {ipc.get('ipc_queue', 0.0) * 1e3:.3f} ms,"
                    f" decode {ipc.get('ipc_decode', 0.0) * 1e6:.1f} us",
                )
            )

    # -- decision ------------------------------------------------------------
    if record.dropped:
        stages.append(
            LineageStage(
                "decision", record.t_receipt,
                f"dropped: {record.drop_reason}",
            )
        )
        return PacketLineage(
            record, tuple(stages), corrected, correction, span=span
        )
    stages.append(
        LineageStage("decision", record.t_receipt, "forward (Steps 2-4)")
    )

    # -- schedule ------------------------------------------------------------
    stages.append(
        LineageStage(
            "schedule", record.t_forward,
            "scheduled forward time" if record.t_forward is not None
            else "not recorded",
        )
    )

    # -- fire / send: only the sampled tracer knows these --------------------
    if span is not None and record.t_forward is not None:
        lag = span.lag if span.lag is not None else 0.0
        t_fire = record.t_forward + max(lag, 0.0)
        stages.append(
            LineageStage(
                "fire", t_fire,
                f"scan loop fired (scheduler lag {lag * 1e3:.3f} ms)",
            )
        )
        send_cost = dict(span.stages).get("send")
        if send_cost is not None:
            # The traced cost is measured CPU time; never let the
            # estimate overshoot the recorded delivery stamp (on the
            # virtual stack delivery is instantaneous in emulation time).
            t_send = t_fire + send_cost
            if record.t_delivered is not None:
                t_send = min(t_send, record.t_delivered)
            stages.append(
                LineageStage(
                    "send", t_send,
                    f"sender hand-off (+{send_cost * 1e6:.1f} us)",
                )
            )
        else:
            stages.append(
                LineageStage("send", None, "span lacks a send stage")
            )
    else:
        stages.append(
            LineageStage("fire", None, "not sampled by the tracer")
        )
        stages.append(
            LineageStage("send", None, "not sampled by the tracer")
        )

    # -- delivery -------------------------------------------------------------
    stages.append(
        LineageStage(
            "delivery", record.t_delivered,
            f"delivered to node {record.receiver}"
            if record.t_delivered is not None else "not recorded",
        )
    )
    return PacketLineage(
        record, tuple(stages), corrected, correction, span=span
    )


def format_lineage(lin: PacketLineage) -> str:
    """Human-readable multi-line rendering (CLI / console)."""
    r = lin.record
    head = (
        f"packet record {r.record_id}: src={r.source} seq={r.seqno}"
        f" {r.sender}->{r.receiver if r.receiver is not None else '?'}"
        f" ch={r.channel} kind={r.kind}"
        f" outcome={'dropped:' + r.drop_reason if r.dropped else 'delivered'}"
    )
    lines = [head]
    for s in lin.stages:
        t = f"{s.t:.6f}" if s.t is not None else "        --"
        lines.append(f"  {s.name:<9} {t:>14}  {s.detail}")
    return "\n".join(lines)
