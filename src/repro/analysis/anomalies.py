"""Anomaly detectors over one recorded run, with pluggable thresholds.

Each detector scans a different join of the recording and emits
:class:`Anomaly` findings; :func:`detect_anomalies` runs the whole
catalog.  Detection is **aggregated** — a drop storm yields one finding
per (window, group), not one per packet — so a pathological run cannot
flood the report.

Catalog (kind → what it means):

``scheduler-lag``
    sampled Step-5 spans fired later than ``t_forward`` by more than
    the budget: the server is falling behind real time (the paper's
    "overload of server computation").
``timestamp-inversion``
    a packet's (skew-corrected) origin stamp is *later* than the
    server receipt stamp by more than the tolerance — the client clock
    was ahead beyond what the §4.1 sync explains, or sync is broken.
``drop-storm``
    a window's loss rate exceeded the threshold with at least
    ``storm_min_offered`` packets offered (medium and transport loss
    reported as separate findings).
``reordering``
    delivery order inverted sequence order for a (source, receiver)
    flow — legitimate under multi-path delay models, suspicious in a
    single-link run.
``clock-drift``
    a client's fitted drift projects more stamp error over its longest
    uncorrected stretch than the budget allows: its ``t_origin`` stamps
    (and every delay statistic built on them) are questionable.
``overload-degraded``
    the overload controller left NOMINAL for an interval (reconstructed
    from recorded ``overload-state`` transitions): the run's real-time
    validity envelope was violated between those stamps.
``deadline-miss``
    delivered frames fired later than 10× the lag budget (or frames
    were shed outright as hopelessly late) at a rate above the
    threshold — latency/jitter statistics from this run describe the
    overloaded emulator, not the emulated network.
``cross-shard-inversion``
    (sharded runs only — gated on the ``cluster-run`` event) the
    parent's event-time merge of the per-shard record streams is not
    monotone: a record's terminal event precedes its merge
    predecessor's by more than the tolerance, so the shards' virtual
    clocks disagree about when things happened and cross-shard latency
    comparisons from this recording are suspect.
``last-crash``
    the run recorded one or more ``worker-crash`` scene events: a shard
    worker died (or its pipe broke) mid-run and the parent aborted.
    The finding carries the flight-recorder artifact paths dumped at
    crash time — feed them to ``poem analyze --flight`` for the last
    seconds of events/spans before the death.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..core.packet import DropReason
from .aggregates import windowed_aggregates
from .dataset import RunDataset
from .drift import ClockAudit, audit_clocks

__all__ = ["Thresholds", "Anomaly", "detect_anomalies", "ANOMALY_KINDS",
           "degraded_intervals"]

ANOMALY_KINDS = (
    "scheduler-lag",
    "timestamp-inversion",
    "drop-storm",
    "reordering",
    "clock-drift",
    "overload-degraded",
    "deadline-miss",
    "cross-shard-inversion",
    "last-crash",
)


@dataclass(frozen=True)
class Thresholds:
    """Detection budgets.  Every field has a deployment-sane default;
    override per call (CLI flags ``--lag-budget``/``--drift-budget``
    map straight onto ``lag_budget``/``drift_budget``)."""

    lag_budget: float = 0.010
    """Max tolerated scheduler lag (s) before a span is a spike."""

    inversion_tolerance: float = 0.001
    """Grace (s) before origin>receipt counts as an inversion (sync
    error is bounded by half the exchange-delay asymmetry)."""

    storm_loss_rate: float = 0.5
    """Windowed loss rate at/above which a window is a drop storm."""

    storm_min_offered: int = 5
    """Minimum offered packets for a window to qualify (one lost
    packet out of one offered is not a storm)."""

    drift_budget: float = 0.010
    """Max tolerated projected stamp error (s) per client."""

    deadline_miss_rate: float = 0.01
    """Fraction of deliveries later than 10× the lag budget at/above
    which the run's real-time claim is considered broken."""

    window: float = 1.0
    """Window width (s) for the windowed detectors."""


@dataclass(frozen=True)
class Anomaly:
    """One finding."""

    kind: str
    severity: str
    """``warning`` or ``critical``."""

    subject: str
    """What it is about (node, link, window...) — human-readable."""

    detail: str
    t: Optional[float] = None
    """Server-clock time (window start for windowed findings)."""

    data: dict = field(default_factory=dict)
    """Machine-readable specifics for the JSON report."""

    def as_dict(self) -> dict:
        return {
            "kind": self.kind,
            "severity": self.severity,
            "subject": self.subject,
            "detail": self.detail,
            "t": self.t,
            "data": self.data,
        }


# ---------------------------------------------------------------------------
# Individual detectors (each: dataset [, thresholds, audit] -> [Anomaly])
# ---------------------------------------------------------------------------


def detect_scheduler_lag(
    dataset: RunDataset, thresholds: Thresholds
) -> list[Anomaly]:
    out: list[Anomaly] = []
    worst: Optional[float] = None
    spikes = 0
    for span in dataset.spans:
        if span.lag is None:
            continue
        if span.lag > thresholds.lag_budget:
            spikes += 1
            if worst is None or span.lag > worst:
                worst = span.lag
    if spikes:
        out.append(
            Anomaly(
                kind="scheduler-lag",
                severity="critical"
                if worst is not None and worst > 10 * thresholds.lag_budget
                else "warning",
                subject="scan loop",
                detail=(
                    f"{spikes} sampled span(s) fired more than"
                    f" {thresholds.lag_budget * 1e3:.1f} ms late"
                    f" (worst {worst * 1e3:.1f} ms)"
                ),
                data={"spikes": spikes, "worst_lag": worst,
                      "budget": thresholds.lag_budget},
            )
        )
    return out


def detect_timestamp_inversions(
    dataset: RunDataset,
    thresholds: Thresholds,
    audit: Optional[ClockAudit] = None,
) -> list[Anomaly]:
    if audit is None:
        audit = audit_clocks(dataset)
    by_source: dict[int, list[float]] = {}
    for record in dataset.packets:
        if record.t_origin is None or record.t_receipt is None:
            continue
        corrected = record.t_origin + audit.correction_at(
            record.source, record.t_receipt
        )
        excess = corrected - record.t_receipt
        if excess > thresholds.inversion_tolerance:
            by_source.setdefault(record.source, []).append(excess)
    out: list[Anomaly] = []
    for source, excesses in sorted(by_source.items()):
        worst = max(excesses)
        out.append(
            Anomaly(
                kind="timestamp-inversion",
                severity="critical",
                subject=f"node {source}",
                detail=(
                    f"{len(excesses)} packet(s) stamped after their own"
                    f" server receipt (worst {worst * 1e3:.3f} ms beyond"
                    " tolerance) — client clock ahead beyond sync error"
                ),
                data={"count": len(excesses), "worst_excess": worst},
            )
        )
    return out


def detect_drop_storms(
    dataset: RunDataset, thresholds: Thresholds
) -> list[Anomaly]:
    out: list[Anomaly] = []
    buckets = windowed_aggregates(
        dataset, window=thresholds.window, group_by="channel"
    )
    for b in buckets:
        if b.offered < thresholds.storm_min_offered:
            continue
        for flavor, count in (
            ("medium", b.medium_drops),
            ("transport", b.transport_drops),
        ):
            rate = count / b.offered
            if rate >= thresholds.storm_loss_rate:
                out.append(
                    Anomaly(
                        kind="drop-storm",
                        severity="warning" if rate < 0.9 else "critical",
                        subject=f"channel {b.group}"
                                f" @ [{b.t0:.2f}, {b.t1:.2f})",
                        detail=(
                            f"{flavor} loss {rate:.0%}"
                            f" ({count}/{b.offered} offered)"
                        ),
                        t=b.t0,
                        data={"channel": b.group, "flavor": flavor,
                              "rate": rate, "offered": b.offered},
                    )
                )
    return out


def detect_reordering(dataset: RunDataset) -> list[Anomaly]:
    flows: dict[tuple[int, int], list] = {}
    for record in dataset.delivered:
        if record.t_delivered is None or record.receiver is None:
            continue
        flows.setdefault((record.source, record.receiver), []).append(
            record
        )
    out: list[Anomaly] = []
    for (source, receiver), records in sorted(flows.items()):
        records.sort(key=lambda r: (r.t_delivered, r.record_id))
        inversions = sum(
            1
            for a, b in zip(records, records[1:])
            if b.seqno < a.seqno
        )
        if inversions:
            out.append(
                Anomaly(
                    kind="reordering",
                    severity="warning",
                    subject=f"flow {source}->{receiver}",
                    detail=(
                        f"{inversions} delivery-order inversion(s)"
                        f" across {len(records)} delivered packets"
                    ),
                    data={"source": source, "receiver": receiver,
                          "inversions": inversions,
                          "delivered": len(records)},
                )
            )
    return out


def detect_clock_drift(
    dataset: RunDataset,
    thresholds: Thresholds,
    audit: Optional[ClockAudit] = None,
) -> list[Anomaly]:
    if audit is None:
        audit = audit_clocks(dataset)
    out: list[Anomaly] = []
    for node, est in sorted(audit.estimates.items()):
        if est.projected_error <= thresholds.drift_budget:
            continue
        out.append(
            Anomaly(
                kind="clock-drift",
                severity="critical"
                if est.projected_error > 10 * thresholds.drift_budget
                else "warning",
                subject=f"node {node}"
                        + (f" ({est.label})" if est.label else ""),
                detail=(
                    f"fitted drift {est.rate * 1e3:+.3f} ms/s over"
                    f" {est.samples} sync samples projects up to"
                    f" {est.projected_error * 1e3:.2f} ms stamp error"
                    f" (budget {thresholds.drift_budget * 1e3:.2f} ms)"
                    f" across its longest {est.max_gap:.2f} s"
                    " uncorrected stretch"
                ),
                data={"node": node, "rate": est.rate,
                      "projected_error": est.projected_error,
                      "max_gap": est.max_gap, "samples": est.samples},
            )
        )
    return out


def degraded_intervals(
    dataset: RunDataset,
) -> list[tuple[float, float, str]]:
    """``(start, end, worst_state)`` intervals the run spent degraded.

    Reconstructed from the ``overload-state`` scene events the server
    records on every controller transition.  An interval still open at
    the last event is closed at the run's end stamp.
    """
    events = sorted(
        (e for e in dataset.scene_events if e.kind == "overload-state"),
        key=lambda e: e.time,
    )
    if not events:
        return []
    rank = {"nominal": 0, "pressured": 1, "saturated": 2}
    out: list[tuple[float, float, str]] = []
    start: Optional[float] = None
    worst = "nominal"
    for event in events:
        to = str(event.details.get("to", "nominal"))
        if rank.get(to, 0) > 0:
            if start is None:
                start = event.time
                worst = to
            elif rank.get(to, 0) > rank.get(worst, 0):
                worst = to
        elif start is not None:
            out.append((start, event.time, worst))
            start = None
            worst = "nominal"
    if start is not None:
        out.append((start, max(dataset.time_range()[1], start), worst))
    return out


def detect_overload_degradation(dataset: RunDataset) -> list[Anomaly]:
    out: list[Anomaly] = []
    for start, end, worst in degraded_intervals(dataset):
        out.append(
            Anomaly(
                kind="overload-degraded",
                severity="critical" if worst == "saturated" else "warning",
                subject="overload controller",
                detail=(
                    f"run left real-time territory for {end - start:.2f}s"
                    f" ({start:.3f}s – {end:.3f}s, worst state {worst})"
                ),
                t=start,
                data={"start": start, "end": end, "worst": worst,
                      "duration": end - start},
            )
        )
    return out


def detect_deadline_misses(
    dataset: RunDataset, thresholds: Thresholds
) -> list[Anomaly]:
    """Validity envelope over *every* delivered record (the lag detector
    above only sees sampled trace spans)."""
    missed = 0
    total = 0
    worst = 0.0
    horizon = thresholds.lag_budget * 10.0
    for p in dataset.delivered:
        if p.t_delivered is None or p.t_forward is None:
            continue
        total += 1
        lag = p.t_delivered - p.t_forward
        if lag > horizon:
            missed += 1
            if lag > worst:
                worst = lag
    shed = sum(
        1 for p in dataset.drops
        if p.drop_reason == DropReason.DEADLINE_SHED
    )
    rate = missed / total if total else 0.0
    if not shed and (not missed or rate < thresholds.deadline_miss_rate):
        return []
    parts = []
    if missed:
        parts.append(
            f"{missed}/{total} deliveries ({rate:.1%}) fired more than"
            f" {horizon * 1e3:.0f} ms late (worst {worst * 1e3:.1f} ms)"
        )
    if shed:
        parts.append(f"{shed} frame(s) shed as hopelessly late")
    return [
        Anomaly(
            kind="deadline-miss",
            severity="critical",
            subject="validity envelope",
            detail="; ".join(parts),
            data={"missed": missed, "delivered": total, "rate": rate,
                  "worst_lag": worst, "shed": shed,
                  "budget": thresholds.lag_budget},
        )
    ]


def detect_cluster_merge_inversions(
    dataset: RunDataset, thresholds: Thresholds
) -> list[Anomaly]:
    """Cross-shard timestamp coherence of a sharded run's merged log.

    The sharded cluster's per-worker virtual clocks advance
    independently between barriers; at collect time the parent merges
    the shard streams in event-time order and the merged record ids are
    assigned in that order.  If the recording's packet log (walked in
    record-id order) is *not* monotone in event time, either the merge
    is broken or the recording was tampered with/truncated — flag it.
    Single-process recordings (no ``cluster-run`` event) are exempt:
    their log is in ingest order, not delivery order, by design.
    """
    cluster = dataset.cluster_run
    if cluster is None:
        return []
    tolerance = thresholds.inversion_tolerance
    inversions = 0
    worst = 0.0
    prev: Optional[float] = None
    worst_at: Optional[int] = None
    for record in sorted(dataset.packets, key=lambda r: r.record_id):
        for stamp in (record.t_delivered, record.t_forward,
                      record.t_receipt, record.t_origin):
            if stamp is not None:
                break
        else:
            continue
        if prev is not None and stamp < prev - tolerance:
            inversions += 1
            if prev - stamp > worst:
                worst = prev - stamp
                worst_at = record.record_id
        if prev is None or stamp > prev:
            prev = stamp
    if not inversions:
        return []
    return [
        Anomaly(
            kind="cross-shard-inversion",
            severity="critical",
            subject=f"{int(cluster.get('n_workers', 0))}-worker merge",
            detail=(
                f"{inversions} record(s) out of event-time order in the"
                f" merged shard log (worst {worst * 1e3:.3f} ms, first at"
                f" record {worst_at}) — per-shard clocks or the collect"
                " merge are incoherent"
            ),
            data={"count": inversions, "worst": worst,
                  "record_id": worst_at,
                  "n_workers": int(cluster.get("n_workers", 0))},
        )
    ]


def detect_worker_crashes(dataset: RunDataset) -> list[Anomaly]:
    """Surface recorded ``worker-crash`` scene events as findings.

    The sharded parent records one such event (with the worker index,
    the failure reason and the flight-recorder artifact paths it
    managed to dump) before raising :class:`~repro.errors.ClusterError`.
    Any packet statistics from such a recording describe a *truncated*
    run — always critical.
    """
    out: list[Anomaly] = []
    for event in dataset.scene_events:
        if event.kind != "worker-crash":
            continue
        details = event.details or {}
        worker = details.get("worker", "?")
        reason = details.get("reason", "unknown failure")
        artifacts = [
            p for p in (details.get("flight"), details.get("worker_flight"))
            if p
        ]
        detail = f"worker died mid-run: {reason}"
        if artifacts:
            detail += (
                " — flight recorder dumped to "
                + ", ".join(str(p) for p in artifacts)
                + " (render with `poem analyze --flight PATH`)"
            )
        out.append(
            Anomaly(
                kind="last-crash",
                severity="critical",
                subject=f"shard worker {worker}",
                detail=detail,
                t=event.time,
                data={
                    "worker": worker,
                    "reason": reason,
                    "flight": details.get("flight"),
                    "worker_flight": details.get("worker_flight"),
                },
            )
        )
    return out


def detect_anomalies(
    dataset: RunDataset,
    thresholds: Optional[Thresholds] = None,
    *,
    audit: Optional[ClockAudit] = None,
) -> list[Anomaly]:
    """Run the whole catalog; findings ordered critical-first."""
    thresholds = thresholds if thresholds is not None else Thresholds()
    if audit is None:
        audit = audit_clocks(dataset)
    findings: list[Anomaly] = []
    findings += detect_scheduler_lag(dataset, thresholds)
    findings += detect_timestamp_inversions(dataset, thresholds, audit)
    findings += detect_drop_storms(dataset, thresholds)
    findings += detect_reordering(dataset)
    findings += detect_clock_drift(dataset, thresholds, audit)
    findings += detect_overload_degradation(dataset)
    findings += detect_deadline_misses(dataset, thresholds)
    findings += detect_cluster_merge_inversions(dataset, thresholds)
    findings += detect_worker_crashes(dataset)
    findings.sort(
        key=lambda a: (0 if a.severity == "critical" else 1, a.kind)
    )
    return findings
