"""Windowed traffic aggregates per channel / node / link.

The stats plane (:mod:`repro.stats.report`) totals a run; forensics
needs the *time structure*: a drop storm in one 2-second window looks
identical to uniform background loss in a whole-run total.  This module
buckets the packet log into fixed windows and, within each window,
groups outcomes by a key — ``channel``, ``sender`` node, or directed
``link`` ``(sender, receiver)`` — computing throughput, delay, jitter
(RFC-3550-style mean absolute delta of consecutive delays), and loss
split into **medium** drops (the emulated radio: loss model, collision,
out of range …) versus **transport** drops (the fault-tolerance layer:
stalled clients, outbox overflow).  The split matters because only
medium drops say anything about the emulated MANET; transport drops
indict the deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Optional

from ..core.packet import DropReason, PacketRecord
from ..errors import AnalysisError
from .dataset import RunDataset

__all__ = ["WindowStats", "windowed_aggregates", "GROUP_KEYS"]

GROUP_KEYS = ("channel", "node", "link")


def _group_key(record: PacketRecord, group_by: str):
    if group_by == "channel":
        return record.channel
    if group_by == "node":
        return record.sender
    if group_by == "link":
        return (record.sender, record.receiver)
    raise AnalysisError(
        f"unknown group key {group_by!r}; expected one of {GROUP_KEYS}"
    )


@dataclass
class WindowStats:
    """Aggregates of one (window, group) bucket."""

    t0: float
    t1: float
    group: object
    """Channel id, sender node id, or (sender, receiver) link tuple."""

    offered: int = 0
    """Packets entering the pipeline in this window (by receipt time)."""

    delivered: int = 0
    medium_drops: int = 0
    transport_drops: int = 0
    bits_delivered: int = 0
    _delays: list = field(default_factory=list, repr=False)

    # -- derived ------------------------------------------------------------

    @property
    def loss_rate(self) -> float:
        total = self.offered
        if total == 0:
            return 0.0
        return (self.medium_drops + self.transport_drops) / total

    @property
    def throughput_bps(self) -> float:
        width = self.t1 - self.t0
        return self.bits_delivered / width if width > 0 else 0.0

    @property
    def mean_delay(self) -> Optional[float]:
        if not self._delays:
            return None
        return sum(self._delays) / len(self._delays)

    @property
    def jitter(self) -> Optional[float]:
        """Mean absolute difference of consecutive delays (RFC 3550)."""
        if len(self._delays) < 2:
            return None
        diffs = [
            abs(b - a) for a, b in zip(self._delays, self._delays[1:])
        ]
        return sum(diffs) / len(diffs)

    def as_dict(self) -> dict:
        group = self.group
        if isinstance(group, tuple):
            group = list(group)
        return {
            "t0": self.t0,
            "t1": self.t1,
            "group": group,
            "offered": self.offered,
            "delivered": self.delivered,
            "medium_drops": self.medium_drops,
            "transport_drops": self.transport_drops,
            "loss_rate": self.loss_rate,
            "throughput_bps": self.throughput_bps,
            "mean_delay": self.mean_delay,
            "jitter": self.jitter,
        }


def _bucket_time(record: PacketRecord) -> Optional[float]:
    """Window placement: receipt time, falling back to any stamp."""
    for t in (record.t_receipt, record.t_forward,
              record.t_delivered, record.t_origin):
        if t is not None:
            return t
    return None


def windowed_aggregates(
    dataset: RunDataset,
    *,
    window: float = 1.0,
    group_by: str = "channel",
    records: Optional[Iterable[PacketRecord]] = None,
) -> list[WindowStats]:
    """Bucket the packet log into ``window``-second groups.

    Returns buckets ordered by (t0, group); empty buckets are omitted.
    ``records`` restricts the analysis to a subset (default: all).
    """
    if window <= 0:
        raise AnalysisError(f"window must be positive, got {window}")
    if records is None:
        records = dataset.packets
    start, _end = dataset.time_range()
    buckets: dict[tuple[int, object], WindowStats] = {}
    for record in records:
        t = _bucket_time(record)
        if t is None:
            continue
        idx = int(math.floor((t - start) / window))
        key = _group_key(record, group_by)
        bucket = buckets.get((idx, key))
        if bucket is None:
            bucket = WindowStats(
                t0=start + idx * window,
                t1=start + (idx + 1) * window,
                group=key,
            )
            buckets[(idx, key)] = bucket
        bucket.offered += 1
        if record.dropped:
            if record.drop_reason in DropReason.TRANSPORT:
                bucket.transport_drops += 1
            else:
                bucket.medium_drops += 1
        else:
            bucket.delivered += 1
            bucket.bits_delivered += record.size_bits
            if (
                record.t_delivered is not None
                and record.t_origin is not None
            ):
                bucket._delays.append(
                    record.t_delivered - record.t_origin
                )
    return [
        buckets[k]
        for k in sorted(
            buckets, key=lambda k: (k[0], repr(k[1]))
        )
    ]
