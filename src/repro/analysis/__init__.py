"""Post-emulation forensics (the recording → insight loop).

PoEm's headline features are real-time *recording* via client-side
parallel time-stamping (§4.1) and *post-emulation replay* from the SQL
database (§1, Table 1).  Replay scrubs the run visually and the stats
plane totals it coarsely — this package answers the questions neither
can: *what happened to packet 4821?*  *did client C's clock drift
corrupt the delay statistics?*

Everything here is **offline and dependency-free**: it reads a finished
recording (any :class:`~repro.core.recording.Recorder`, or a SQLite
database file by path) and never touches a live emulation.

Layers, bottom-up:

:mod:`~repro.analysis.dataset`
    joins the recorder's four tables (packets, scene events, trace
    spans, sync samples) into one indexed :class:`RunDataset`.
:mod:`~repro.analysis.drift`
    per-client clock audit: least-squares drift rate over the §4.1
    sync-sample history, stamp-correction for lineage.
:mod:`~repro.analysis.lineage`
    per-packet life story: origin stamp → receipt → decision →
    schedule → fire → send → delivery, skew-corrected.
:mod:`~repro.analysis.aggregates`
    windowed throughput/delay/jitter/loss per channel/node/link, loss
    split medium-vs-transport.
:mod:`~repro.analysis.anomalies`
    detectors with pluggable :class:`Thresholds` — lag spikes,
    timestamp inversions, drop storms, reordering, drift budget.
:mod:`~repro.analysis.report`
    ties it together: :func:`analyze` → :class:`AnalysisReport`,
    rendered as text, JSON, or a self-contained HTML page.
"""

from .aggregates import WindowStats, windowed_aggregates
from .anomalies import Anomaly, Thresholds, detect_anomalies
from .dataset import RunDataset, load_dataset
from .drift import ClockAudit, DriftEstimate, audit_clocks
from .lineage import LineageStage, PacketLineage, lineage
from .report import AnalysisReport, analyze, render_html, render_json, render_text

__all__ = [
    "RunDataset",
    "load_dataset",
    "DriftEstimate",
    "ClockAudit",
    "audit_clocks",
    "LineageStage",
    "PacketLineage",
    "lineage",
    "WindowStats",
    "windowed_aggregates",
    "Thresholds",
    "Anomaly",
    "detect_anomalies",
    "AnalysisReport",
    "analyze",
    "render_text",
    "render_json",
    "render_html",
]
