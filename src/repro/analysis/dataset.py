"""One recorded run, loaded and indexed for forensic joins.

A :class:`RunDataset` snapshots the recorder's four tables and builds
the indexes every other analysis layer needs: packets by record id,
trace spans by ``(source, seqno)``, sync samples by node, and the
terminal ``run-summary`` scene event (PR 4) when the run shut down
cleanly.  It is deliberately a *snapshot* — analysis never races a live
emulation; point it at a finished run.
"""

from __future__ import annotations

from typing import Optional, Union

from ..core.packet import DropReason, PacketRecord
from ..core.recording import Recorder, SqliteRecorder
from ..core.scene import SceneEvent
from ..errors import AnalysisError

__all__ = ["RunDataset", "load_dataset"]


class RunDataset:
    """Joined, indexed snapshot of one recording."""

    def __init__(
        self,
        packets: list[PacketRecord],
        scene_events: list[SceneEvent],
        spans: list,
        sync_samples: list,
    ) -> None:
        self.packets = packets
        self.scene_events = scene_events
        self.spans = spans
        self.sync_samples = sync_samples
        # -- indexes --------------------------------------------------------
        self._by_record_id = {p.record_id: p for p in packets}
        self._spans_by_key: dict[tuple[int, int], list] = {}
        for span in spans:
            self._spans_by_key.setdefault(
                (span.source, span.seqno), []
            ).append(span)
        self._syncs_by_node: dict[int, list] = {}
        for s in sync_samples:
            self._syncs_by_node.setdefault(s.node, []).append(s)
        for lst in self._syncs_by_node.values():
            lst.sort(key=lambda s: s.t_server)

    # -- construction -------------------------------------------------------

    @classmethod
    def from_recorder(cls, recorder: Recorder) -> "RunDataset":
        return cls(
            recorder.packets(),
            recorder.scene_events(),
            recorder.spans(),
            recorder.sync_samples(),
        )

    # -- basic partitions ----------------------------------------------------

    @property
    def delivered(self) -> list[PacketRecord]:
        return [p for p in self.packets if not p.dropped]

    @property
    def drops(self) -> list[PacketRecord]:
        return [p for p in self.packets if p.dropped]

    @property
    def medium_drops(self) -> list[PacketRecord]:
        """Drops caused by the emulated radio medium."""
        return [
            p for p in self.drops
            if p.drop_reason not in DropReason.TRANSPORT
        ]

    @property
    def transport_drops(self) -> list[PacketRecord]:
        """Drops caused by the transport/fault-tolerance layer."""
        return [
            p for p in self.drops
            if p.drop_reason in DropReason.TRANSPORT
        ]

    # -- lookups -------------------------------------------------------------

    def packet(self, record_id: int) -> PacketRecord:
        try:
            return self._by_record_id[record_id]
        except KeyError:
            raise AnalysisError(
                f"no packet record with id {record_id}"
            ) from None

    def spans_for(self, record: PacketRecord):
        """Trace spans sampled for this packet, best match first.

        Spans are keyed by ``(source, seqno)``; a broadcast fans out to
        one span per receiver, so prefer the span whose receiver matches
        the record's.
        """
        candidates = self._spans_by_key.get(
            (record.source, record.seqno), []
        )
        if not candidates:
            return []
        return sorted(
            candidates,
            key=lambda sp: (
                0 if sp.receiver == record.receiver else 1,
                sp.trace_id,
            ),
        )

    def syncs_for(self, node: int) -> list:
        """§4.1 sync samples of one client, ordered by server time."""
        return list(self._syncs_by_node.get(node, []))

    def synced_nodes(self) -> list[int]:
        return sorted(self._syncs_by_node)

    # -- run framing ---------------------------------------------------------

    @property
    def run_summary(self) -> Optional[dict]:
        """Details of the terminal ``run-summary`` event, if recorded."""
        for event in reversed(self.scene_events):
            if event.kind == "run-summary":
                return dict(event.details)
        return None

    @property
    def cluster_run(self) -> Optional[dict]:
        """Details of the ``cluster-run`` event a sharded run records at
        collect time (worker count, shard map, per-worker counters), or
        ``None`` for single-process recordings.  Gates the cross-shard
        coherence audit in :mod:`repro.analysis.anomalies`."""
        for event in reversed(self.scene_events):
            if event.kind == "cluster-run":
                return dict(event.details)
        return None

    def time_range(self) -> tuple[float, float]:
        """``(start, end)`` of the run on the server clock.

        Start is the earliest receipt/scene time; end prefers the
        ``run-summary`` stop stamp, falling back to the last observed
        packet/scene time.
        """
        times: list[float] = []
        for p in self.packets:
            for t in (p.t_receipt, p.t_forward, p.t_delivered):
                if t is not None:
                    times.append(t)
        times.extend(e.time for e in self.scene_events)
        if not times:
            return (0.0, 0.0)
        start = min(times)
        end = max(times)
        for event in reversed(self.scene_events):
            if event.kind == "run-summary":
                end = max(end, event.time)
                break
        return (start, end)

    # -- introspection -------------------------------------------------------

    def nodes(self) -> list[int]:
        seen: set[int] = set()
        for p in self.packets:
            seen.add(p.sender)
            if p.receiver is not None:
                seen.add(p.receiver)
        return sorted(seen)

    def channels(self) -> list[int]:
        return sorted({p.channel for p in self.packets})

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RunDataset(packets={len(self.packets)},"
            f" events={len(self.scene_events)}, spans={len(self.spans)},"
            f" syncs={len(self.sync_samples)})"
        )


def load_dataset(source: Union[str, Recorder]) -> RunDataset:
    """Load a run from a live :class:`Recorder` or a SQLite file path.

    A path is opened read-style via :class:`SqliteRecorder` (sqlite is
    append-only here; opening an existing db never mutates recorded
    rows) and closed again once the snapshot is taken.
    """
    if isinstance(source, Recorder):
        return RunDataset.from_recorder(source)
    recorder = SqliteRecorder(str(source))
    try:
        return RunDataset.from_recorder(recorder)
    finally:
        recorder.close()
