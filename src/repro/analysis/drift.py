"""Per-client clock-drift auditing over the §4.1 sync-sample history.

The paper's sync scheme corrects a client's clock *at the moment of the
exchange*; between exchanges, oscillator drift re-accumulates silently
and every ``t_origin`` stamp the client produces carries the
re-accumulated error.  §4.1 leaves the resync frequency to the user —
which means the recording may contain arbitrarily stale stamps and
nobody would know.  This module closes that hole offline:

* :func:`estimate_drift` fits a least-squares line to one client's
  ``offset`` samples over server time.  The measured offset is
  ``server − client_local``; for the crystal-oscillator model
  ``local = true·(1+d)`` the slope of that line is ``−d``, so the
  fitted ``rate`` *is* (minus) the oscillator drift rate.
* :class:`DriftEstimate.correction_at` evaluates the fitted model at
  any server time, anchored at the **nearest sync sample** — the stamp
  correction used by :mod:`repro.analysis.lineage`.  On the virtual
  stack the recorded ``residual`` is the exact stamp error and the
  correction is exact; on the TCP stack the residual is ~0 at each
  sync and only the re-accumulated drift term applies.
* :func:`audit_clocks` runs the fit for every synced client and
  projects the worst-case stamp error over the largest gap between
  corrections — the number the drift-budget anomaly detector compares
  against its threshold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

__all__ = ["DriftEstimate", "ClockAudit", "audit_clocks", "estimate_drift"]


@dataclass(frozen=True)
class DriftEstimate:
    """Fitted clock model of one client."""

    node: int
    label: str
    samples: int
    """Number of §4.1 exchanges the fit used."""

    rate: float
    """``d(offset)/d(t_server)`` — seconds of clock error gained per
    server second.  ``−rate`` estimates the oscillator drift ``d``."""

    mean_offset: float
    """Mean measured ``server − client_local`` offset."""

    mean_delay: float
    """Mean one-way exchange delay (the per-sample error bound)."""

    span: float
    """Server-time distance between first and last sample."""

    max_gap: float
    """Largest server-time gap between consecutive corrections (from
    run start through run end) — drift re-accumulates over gaps."""

    projected_error: float
    """|rate| · max_gap (+ mean residual magnitude): the worst stamp
    error the run could contain under the fitted model."""

    anchors: tuple = field(default_factory=tuple, repr=False)
    """The ``(t_server, residual)`` anchor points, by server time."""

    def correction_at(self, t_server: float) -> float:
        """Estimated stamp error ``server − stamp`` at ``t_server``.

        Anchored at the nearest sync sample: the residual recorded there
        plus drift re-accumulated since (or before, when the nearest
        anchor is later).  Add the returned value to a client stamp to
        express it on the server clock.
        """
        if not self.anchors:
            return 0.0
        nearest = min(self.anchors, key=lambda a: abs(t_server - a[0]))
        t_anchor, residual = nearest
        return residual + self.rate * (t_server - t_anchor)


@dataclass(frozen=True)
class ClockAudit:
    """Every client's drift estimate, keyed by node id."""

    estimates: dict[int, DriftEstimate]

    def get(self, node: int) -> Optional[DriftEstimate]:
        return self.estimates.get(node)

    def correction_at(self, node: int, t_server: float) -> float:
        est = self.estimates.get(node)
        return est.correction_at(t_server) if est is not None else 0.0

    def worst(self) -> Optional[DriftEstimate]:
        if not self.estimates:
            return None
        return max(
            self.estimates.values(), key=lambda e: e.projected_error
        )

    def as_dict(self) -> dict:
        return {
            str(node): {
                "label": e.label,
                "samples": e.samples,
                "rate": e.rate,
                "mean_offset": e.mean_offset,
                "mean_delay": e.mean_delay,
                "span": e.span,
                "max_gap": e.max_gap,
                "projected_error": e.projected_error,
            }
            for node, e in sorted(self.estimates.items())
        }


def _least_squares_slope(xs: list[float], ys: list[float]) -> float:
    """Plain least-squares slope; 0.0 when degenerate (constant x)."""
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx <= 0.0:
        return 0.0
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    return sxy / sxx


def estimate_drift(
    samples: list,
    *,
    run_range: Optional[tuple[float, float]] = None,
) -> Optional[DriftEstimate]:
    """Fit one client's drift model from its sync samples (time order).

    Returns ``None`` for an empty history.  With a single sample the
    rate is 0 (no drift observable) but the anchor still corrects the
    constant residual.  ``run_range`` extends gap computation to the
    whole run, so a client that synced only once at t=0 of a long run
    shows the honest (large) re-accumulation window.
    """
    if not samples:
        return None
    ordered = sorted(samples, key=lambda s: s.t_server)
    ts = [s.t_server for s in ordered]
    offsets = [s.offset for s in ordered]
    rate = _least_squares_slope(ts, offsets) if len(ordered) >= 2 else 0.0
    # Gap structure: corrections happen at each sample; drift
    # re-accumulates across the longest stretch without one.
    edges = list(ts)
    if run_range is not None:
        start, end = run_range
        edges = [min(start, ts[0])] + edges + [max(end, ts[-1])]
    max_gap = max(
        (b - a for a, b in zip(edges, edges[1:])), default=0.0
    )
    mean_residual = sum(abs(s.residual) for s in ordered) / len(ordered)
    return DriftEstimate(
        node=ordered[0].node,
        label=ordered[-1].label,
        samples=len(ordered),
        rate=rate,
        mean_offset=sum(offsets) / len(offsets),
        mean_delay=sum(s.delay for s in ordered) / len(ordered),
        span=ts[-1] - ts[0],
        max_gap=max_gap,
        projected_error=abs(rate) * max_gap + mean_residual,
        anchors=tuple((s.t_server, s.residual) for s in ordered),
    )


def audit_clocks(dataset) -> ClockAudit:
    """Run :func:`estimate_drift` for every client in the dataset."""
    run_range = dataset.time_range()
    estimates: dict[int, DriftEstimate] = {}
    for node in dataset.synced_nodes():
        est = estimate_drift(
            dataset.syncs_for(node), run_range=run_range
        )
        if est is not None:
            estimates[node] = est
    return ClockAudit(estimates=estimates)
