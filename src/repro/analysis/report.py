"""The forensics report: one call from recording to rendered insight.

:func:`analyze` loads a recording (recorder instance or SQLite path),
runs the clock audit, the windowed aggregates, the anomaly catalog, and
resolves sample lineages; the resulting :class:`AnalysisReport` renders
as plain text (operator terminal), JSON (machines), or a dependency-free
single-file HTML page (CI artifact, ``/report`` endpoint).
"""

from __future__ import annotations

import html as _html
import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Optional, Union

from ..core.packet import DropReason
from ..core.recording import Recorder
from ..obs import flightrec
from .aggregates import WindowStats, windowed_aggregates
from .anomalies import (
    Anomaly,
    Thresholds,
    degraded_intervals,
    detect_anomalies,
)
from .dataset import RunDataset, load_dataset
from .drift import ClockAudit, audit_clocks
from .lineage import PacketLineage, format_lineage, lineage

__all__ = [
    "AnalysisReport",
    "analyze",
    "render_text",
    "render_json",
    "render_html",
]


@dataclass
class AnalysisReport:
    """Everything :func:`analyze` derived from one recording."""

    dataset: RunDataset
    thresholds: Thresholds
    start: float
    end: float
    total: int
    delivered: int
    medium_drops: int
    transport_drops: int
    drops_by_reason: dict[str, int]
    run_summary: Optional[dict]
    summary_consistent: Optional[bool]
    """Recorded run-summary totals == recomputed totals (None when the
    run has no summary — e.g. the server did not shut down cleanly)."""

    audit: ClockAudit
    aggregates: list[WindowStats]
    anomalies: list[Anomaly]
    lineages: list[PacketLineage] = field(default_factory=list)
    crashes: list[dict] = field(default_factory=list)
    """Recorded ``worker-crash`` scene events (sharded runs): worker
    index, failure reason, and the flight-recorder artifact paths the
    parent managed to dump before aborting."""

    fidelity: dict = field(default_factory=dict)
    """Validity envelope: ``verdict`` (``real-time``/``degraded``/
    ``overloaded``), deadline buckets, shed count, and the degraded
    intervals the overload controller recorded."""

    @property
    def duration(self) -> float:
        return max(self.end - self.start, 0.0)

    @property
    def delivery_ratio(self) -> float:
        return self.delivered / self.total if self.total else 0.0

    def as_dict(self) -> dict:
        return {
            "run": {
                "start": self.start,
                "end": self.end,
                "duration": self.duration,
                "total": self.total,
                "delivered": self.delivered,
                "delivery_ratio": self.delivery_ratio,
                "medium_drops": self.medium_drops,
                "transport_drops": self.transport_drops,
                "drops_by_reason": dict(self.drops_by_reason),
                "sync_samples": len(self.dataset.sync_samples),
                "trace_spans": len(self.dataset.spans),
                "scene_events": len(self.dataset.scene_events),
                "run_summary": self.run_summary,
                "summary_consistent": self.summary_consistent,
            },
            "fidelity": dict(self.fidelity),
            "clocks": self.audit.as_dict(),
            "aggregates": [w.as_dict() for w in self.aggregates],
            "anomalies": [a.as_dict() for a in self.anomalies],
            "lineages": [l.as_dict() for l in self.lineages],
            "crashes": list(self.crashes),
        }


def _pick_lineage_records(dataset: RunDataset, count: int) -> list[int]:
    """Sample packets worth narrating: traced delivered ones first."""
    if count <= 0:
        return []
    picked: list[int] = []
    for record in dataset.delivered:
        if dataset.spans_for(record):
            picked.append(record.record_id)
            if len(picked) >= count:
                return picked
    for record in dataset.delivered:
        if record.record_id not in picked:
            picked.append(record.record_id)
            if len(picked) >= count:
                return picked
    for record in dataset.drops:
        if record.record_id not in picked:
            picked.append(record.record_id)
            if len(picked) >= count:
                break
    return picked


def analyze(
    source: Union[str, Recorder, RunDataset],
    *,
    thresholds: Optional[Thresholds] = None,
    lineage_samples: int = 1,
    lineage_records: Optional[list[int]] = None,
) -> AnalysisReport:
    """Run the full forensics pass over one recording."""
    if isinstance(source, RunDataset):
        dataset = source
    else:
        dataset = load_dataset(source)
    thresholds = thresholds if thresholds is not None else Thresholds()
    audit = audit_clocks(dataset)
    start, end = dataset.time_range()
    delivered = len(dataset.delivered)
    medium = len(dataset.medium_drops)
    transport = len(dataset.transport_drops)
    reasons = Counter(
        p.drop_reason for p in dataset.drops if p.drop_reason
    )
    summary = dataset.run_summary
    consistent: Optional[bool] = None
    if summary is not None:
        consistent = (
            summary.get("forwarded") == delivered
            and summary.get("dropped") == medium + transport
        )
    record_ids = (
        list(lineage_records)
        if lineage_records is not None
        else _pick_lineage_records(dataset, lineage_samples)
    )
    lineages = [
        lineage(dataset, rid, audit=audit) for rid in record_ids
    ]
    crashes = [
        {
            "t": event.time,
            "worker": (event.details or {}).get("worker"),
            "reason": (event.details or {}).get("reason"),
            "flight": (event.details or {}).get("flight"),
            "worker_flight": (event.details or {}).get("worker_flight"),
        }
        for event in dataset.scene_events
        if event.kind == "worker-crash"
    ]
    # Validity envelope: did the emulator stay in real-time territory?
    on_time = late = missed = 0
    horizon = thresholds.lag_budget * 10.0
    for p in dataset.delivered:
        if p.t_delivered is None or p.t_forward is None:
            continue
        lag = p.t_delivered - p.t_forward
        if lag <= thresholds.lag_budget:
            on_time += 1
        elif lag <= horizon:
            late += 1
        else:
            missed += 1
    shed = reasons.get(DropReason.DEADLINE_SHED, 0)
    intervals = degraded_intervals(dataset)
    degraded_s = sum(e - s for s, e, _ in intervals)
    saturated = any(w == "saturated" for _, _, w in intervals)
    if shed or missed or saturated:
        verdict = "overloaded"
    elif late or intervals:
        verdict = "degraded"
    else:
        verdict = "real-time"
    fidelity = {
        "verdict": verdict,
        "lag_budget": thresholds.lag_budget,
        "on_time": on_time,
        "late": late,
        "missed": missed,
        "shed": shed,
        "degraded_seconds": degraded_s,
        "intervals": [
            {"start": s, "end": e, "worst": w} for s, e, w in intervals
        ],
    }
    return AnalysisReport(
        dataset=dataset,
        thresholds=thresholds,
        start=start,
        end=end,
        total=len(dataset.packets),
        delivered=delivered,
        medium_drops=medium,
        transport_drops=transport,
        drops_by_reason=dict(sorted(reasons.items())),
        run_summary=summary,
        summary_consistent=consistent,
        audit=audit,
        aggregates=windowed_aggregates(
            dataset, window=thresholds.window, group_by="channel"
        ),
        anomalies=detect_anomalies(dataset, thresholds, audit=audit),
        lineages=lineages,
        crashes=crashes,
        fidelity=fidelity,
    )


# ---------------------------------------------------------------------------
# Renderers
# ---------------------------------------------------------------------------


def render_text(report: AnalysisReport) -> str:
    lines: list[str] = []
    lines.append("PoEm run forensics")
    lines.append("==================")
    lines.append(
        f"run window   [{report.start:.3f}, {report.end:.3f}]"
        f"  ({report.duration:.3f} s)"
    )
    lines.append(
        f"packets      {report.total} total,"
        f" {report.delivered} delivered"
        f" ({report.delivery_ratio:.1%}),"
        f" {report.medium_drops} medium +"
        f" {report.transport_drops} transport drops"
    )
    if report.drops_by_reason:
        reasons = ", ".join(
            f"{k}={v}" for k, v in report.drops_by_reason.items()
        )
        lines.append(f"drop reasons {reasons}")
    lines.append(
        f"telemetry    {len(report.dataset.spans)} trace spans,"
        f" {len(report.dataset.sync_samples)} sync samples,"
        f" {len(report.dataset.scene_events)} scene events"
    )
    if report.run_summary is not None:
        verdict = "consistent" if report.summary_consistent else (
            "INCONSISTENT with recomputed totals"
        )
        lines.append(f"run summary  recorded at shutdown — {verdict}")
    else:
        lines.append(
            "run summary  absent (no clean-shutdown marker in recording)"
        )
    fid = report.fidelity
    if fid:
        line = (
            f"fidelity     {fid['verdict'].upper()}"
            f" — {fid['on_time']} on time, {fid['late']} late,"
            f" {fid['missed']} missed"
            f" (budget {fid['lag_budget'] * 1e3:.0f} ms)"
        )
        if fid.get("shed"):
            line += f", {fid['shed']} shed"
        lines.append(line)
        if fid.get("degraded_seconds"):
            lines.append(
                f"             left real-time territory for"
                f" {fid['degraded_seconds']:.2f} s:"
            )
            for iv in fid.get("intervals", []):
                lines.append(
                    f"               {iv['start']:.3f}s – {iv['end']:.3f}s"
                    f"  (worst {iv['worst']})"
                )
    lines.append("")
    lines.append(f"clock audit ({len(report.audit.estimates)} clients)")
    lines.append("-----------")
    if not report.audit.estimates:
        lines.append("  no sync samples recorded")
    for node, est in sorted(report.audit.estimates.items()):
        name = f"node {node}" + (f" ({est.label})" if est.label else "")
        lines.append(
            f"  {name:<18} drift {est.rate * 1e3:+8.3f} ms/s"
            f"  over {est.samples:>3} samples"
            f"  worst gap {est.max_gap:7.2f} s"
            f"  projected error {est.projected_error * 1e3:8.3f} ms"
        )
    lines.append("")
    lines.append(f"anomalies ({len(report.anomalies)})")
    lines.append("---------")
    if not report.anomalies:
        lines.append("  none detected")
    for a in report.anomalies:
        lines.append(
            f"  [{a.severity:>8}] {a.kind:<20} {a.subject}: {a.detail}"
        )
    if report.crashes:
        lines.append("")
        lines.append(f"worker crashes ({len(report.crashes)})")
        lines.append("--------------")
        for crash in report.crashes:
            lines.append(
                f"  worker {crash.get('worker', '?')}"
                f" at t={float(crash.get('t') or 0.0):.3f}s:"
                f" {crash.get('reason') or 'unknown failure'}"
            )
            for key in ("flight", "worker_flight"):
                if crash.get(key):
                    lines.append(f"    {key.replace('_', ' ')}: {crash[key]}")
            # Inline the last seconds before the death when the artifact
            # is still on disk (it lives in tmp — often gone by analysis
            # time on another host, hence best-effort).
            for key in ("worker_flight", "flight"):
                path = crash.get(key)
                if not path:
                    continue
                try:
                    artifact = flightrec.load_flight(path)
                except (OSError, ValueError):
                    continue
                for row in flightrec.format_flight(
                    artifact, events=8
                ).splitlines():
                    lines.append(f"    {row}")
                break
    if report.lineages:
        lines.append("")
        lines.append("sample lineage")
        lines.append("--------------")
        for lin in report.lineages:
            lines.append(format_lineage(lin))
    return "\n".join(lines) + "\n"


def render_json(report: AnalysisReport, *, indent: int = 2) -> str:
    return json.dumps(report.as_dict(), indent=indent, sort_keys=True)


_HTML_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       margin: 2em; color: #222; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #bbb; padding: 0.25em 0.6em;
         text-align: right; font-size: 0.9em; }
th { background: #eee; } td.l, th.l { text-align: left; }
.critical { color: #a00; font-weight: bold; }
.warning { color: #a60; }
pre { background: #f6f6f6; padding: 0.8em; overflow-x: auto; }
"""


def render_html(report: AnalysisReport, *, title: str = "PoEm run forensics") -> str:
    """A self-contained single-file HTML report (no external assets)."""
    esc = _html.escape
    parts: list[str] = [
        "<!DOCTYPE html><html><head><meta charset='utf-8'>",
        f"<title>{esc(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{esc(title)}</h1>",
        "<h2>Run</h2><table>",
        "<tr><th class='l'>metric</th><th>value</th></tr>",
    ]
    run_rows = [
        ("window", f"[{report.start:.3f}, {report.end:.3f}] s"),
        ("duration", f"{report.duration:.3f} s"),
        ("packets", report.total),
        ("delivered",
         f"{report.delivered} ({report.delivery_ratio:.1%})"),
        ("medium drops", report.medium_drops),
        ("transport drops", report.transport_drops),
        ("trace spans", len(report.dataset.spans)),
        ("sync samples", len(report.dataset.sync_samples)),
        ("run summary",
         "absent" if report.run_summary is None
         else ("consistent" if report.summary_consistent
               else "INCONSISTENT")),
    ]
    fid = report.fidelity
    if fid:
        run_rows.append(("fidelity", fid["verdict"]))
        run_rows.append((
            "deadlines",
            f"{fid['on_time']} on time / {fid['late']} late /"
            f" {fid['missed']} missed / {fid.get('shed', 0)} shed",
        ))
        if fid.get("degraded_seconds"):
            run_rows.append(
                ("degraded", f"{fid['degraded_seconds']:.2f} s")
            )
    for k, v in run_rows:
        parts.append(
            f"<tr><td class='l'>{esc(str(k))}</td>"
            f"<td>{esc(str(v))}</td></tr>"
        )
    parts.append("</table>")

    parts.append("<h2>Clock audit</h2><table>")
    parts.append(
        "<tr><th class='l'>client</th><th>samples</th>"
        "<th>drift (ms/s)</th><th>worst gap (s)</th>"
        "<th>projected error (ms)</th></tr>"
    )
    for node, est in sorted(report.audit.estimates.items()):
        name = f"node {node}" + (f" ({est.label})" if est.label else "")
        parts.append(
            f"<tr><td class='l'>{esc(name)}</td><td>{est.samples}</td>"
            f"<td>{est.rate * 1e3:+.3f}</td>"
            f"<td>{est.max_gap:.2f}</td>"
            f"<td>{est.projected_error * 1e3:.3f}</td></tr>"
        )
    parts.append("</table>")

    parts.append(f"<h2>Anomalies ({len(report.anomalies)})</h2>")
    if report.anomalies:
        parts.append(
            "<table><tr><th class='l'>severity</th>"
            "<th class='l'>kind</th><th class='l'>subject</th>"
            "<th class='l'>detail</th></tr>"
        )
        for a in report.anomalies:
            parts.append(
                f"<tr><td class='l {esc(a.severity)}'>{esc(a.severity)}"
                f"</td><td class='l'>{esc(a.kind)}</td>"
                f"<td class='l'>{esc(a.subject)}</td>"
                f"<td class='l'>{esc(a.detail)}</td></tr>"
            )
        parts.append("</table>")
    else:
        parts.append("<p>none detected</p>")

    parts.append("<h2>Windowed aggregates (by channel)</h2><table>")
    parts.append(
        "<tr><th>t0</th><th>t1</th><th class='l'>group</th>"
        "<th>offered</th><th>delivered</th><th>medium</th>"
        "<th>transport</th><th>loss</th><th>bps</th>"
        "<th>delay (ms)</th><th>jitter (ms)</th></tr>"
    )
    for w in report.aggregates:
        delay = (
            f"{w.mean_delay * 1e3:.3f}" if w.mean_delay is not None
            else "-"
        )
        jitter = (
            f"{w.jitter * 1e3:.3f}" if w.jitter is not None else "-"
        )
        parts.append(
            f"<tr><td>{w.t0:.2f}</td><td>{w.t1:.2f}</td>"
            f"<td class='l'>{esc(str(w.group))}</td>"
            f"<td>{w.offered}</td><td>{w.delivered}</td>"
            f"<td>{w.medium_drops}</td><td>{w.transport_drops}</td>"
            f"<td>{w.loss_rate:.1%}</td>"
            f"<td>{w.throughput_bps:.0f}</td>"
            f"<td>{delay}</td><td>{jitter}</td></tr>"
        )
    parts.append("</table>")

    if report.crashes:
        parts.append(
            f"<h2>Worker crashes ({len(report.crashes)})</h2><table>"
            "<tr><th>t (s)</th><th>worker</th><th class='l'>reason</th>"
            "<th class='l'>flight artifacts</th></tr>"
        )
        for crash in report.crashes:
            artifacts = ", ".join(
                str(crash[k]) for k in ("flight", "worker_flight")
                if crash.get(k)
            ) or "-"
            parts.append(
                f"<tr><td>{float(crash.get('t') or 0.0):.3f}</td>"
                f"<td>{esc(str(crash.get('worker', '?')))}</td>"
                f"<td class='l critical'>"
                f"{esc(str(crash.get('reason') or 'unknown'))}</td>"
                f"<td class='l'>{esc(artifacts)}</td></tr>"
            )
        parts.append("</table>")

    if report.lineages:
        parts.append("<h2>Sample lineage</h2>")
        for lin in report.lineages:
            parts.append(f"<pre>{esc(format_lineage(lin))}</pre>")
    parts.append("</body></html>")
    return "".join(parts)
