"""Deterministic shard placement: which worker owns which sender.

The cluster shards pipeline work **by sender id** — every frame a VMN
transmits is processed by the same worker, so one sender's frames never
race each other across processes and its per-sender RNG/schedule state
lives in exactly one place.

Placement must be *reproducible*: the same scenario script must land
every node on the same shard across runs, interpreter restarts, and
``PYTHONHASHSEED`` values, or seeded runs stop being comparable and the
forensics plane cannot line two recordings up.  Python's built-in
``hash()`` is salted per process, so ``hash(node_id) % n`` is exactly
the wrong tool.  :class:`ShardMap` instead keeps an **explicit table**:
nodes are placed on the least-loaded shard in registration order (ties
broken by lowest shard index), which is both deterministic and balanced
by construction — ``k`` registrations over ``n`` shards never differ in
load by more than one.

Nodes that were never registered (possible when traffic from an id
arrives before/without an ``add_node``) are auto-placed on first sight
with the same rule, so :meth:`shard_of` is total and still stable
within a run.
"""

from __future__ import annotations

from typing import Iterator, Optional

from ..core.ids import NodeId
from ..errors import ClusterError

__all__ = ["ShardMap"]


class ShardMap:
    """Explicit, stable ``node id → shard index`` assignment."""

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ClusterError(f"need at least one shard, got {n_shards}")
        self.n_shards = n_shards
        self._assignment: dict[NodeId, int] = {}
        self._loads = [0] * n_shards

    def __len__(self) -> int:
        return len(self._assignment)

    def __contains__(self, node_id: NodeId) -> bool:
        return node_id in self._assignment

    def __iter__(self) -> Iterator[NodeId]:
        return iter(self._assignment)

    def place(self, node_id: NodeId) -> int:
        """Assign ``node_id`` to the least-loaded shard (lowest index on
        ties) and return the shard.  Idempotent for known nodes."""
        shard = self._assignment.get(node_id)
        if shard is not None:
            return shard
        shard = min(range(self.n_shards), key=lambda i: (self._loads[i], i))
        self._assignment[node_id] = shard
        self._loads[shard] += 1
        return shard

    def shard_of(self, node_id: NodeId) -> int:
        """The shard owning ``node_id``; unseen ids are auto-placed."""
        shard = self._assignment.get(node_id)
        if shard is not None:
            return shard
        return self.place(node_id)

    def peek(self, node_id: NodeId) -> Optional[int]:
        """Like :meth:`shard_of` but without auto-placement."""
        return self._assignment.get(node_id)

    def release(self, node_id: NodeId) -> None:
        """Forget a removed node (frees its load slot). Idempotent."""
        shard = self._assignment.pop(node_id, None)
        if shard is not None:
            self._loads[shard] -= 1

    def loads(self) -> list[int]:
        """Current per-shard node counts."""
        return list(self._loads)

    def as_dict(self) -> dict[int, int]:
        """JSON-friendly copy of the full assignment."""
        return {int(n): s for n, s in self._assignment.items()}
