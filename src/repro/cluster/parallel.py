"""Parallelized emulation-server cluster — the paper's future work, built.

"Our future work is to expand the one server to a parallelized cluster to
conquer the performance bottleneck so as to support fine-granularity
performance evaluations driven by scenario scripts." (§7)

:class:`ParallelEmulator` shards VMNs across ``n_workers`` worker engines
by sender id.  All workers share the one consistent scene and the one
channel-indexed neighbor table (scene consistency is the centralized
architecture's whole point — sharding must not break it); what is
parallelized is the per-packet pipeline work: reception, neighbor lookup,
drop decision, schedule insertion.

Because this is a discrete-event model (and CPython would serialize the
compute anyway), each worker carries an explicit **service-rate capacity**
(packets/second of pipeline work).  A packet transmitted by node ``v``
queues at ``v``'s shard worker (deterministic registration-order
placement, :class:`~repro.cluster.shard.ShardMap`); its pipeline runs
when that worker is free.  With one worker this degenerates to the single-server bottleneck
(§2.1); with ``n`` workers the aggregate capacity scales ≈ linearly until
a hot sender saturates its shard — exactly the scaling story the
scalability bench (``benchmarks/test_scalability.py``) measures:
per-packet processing lag vs. offered load vs. cluster size.

The interface matches :class:`~repro.core.server.InProcessEmulator`, so
protocols and workloads run on a cluster unchanged.
"""

from __future__ import annotations

from typing import Optional

from ..core.geometry import Vec2
from ..core.ids import NodeId
from ..core.packet import Packet
from ..core.recording import Recorder
from ..core.server import InProcessEmulator, VirtualNodeHost
from ..errors import ClusterError
from ..models.mobility import Bounds
from ..models.radio import RadioConfig
from .shard import ShardMap

__all__ = ["ParallelEmulator", "WorkerStats"]


class WorkerStats:
    """Load accounting for one cluster worker."""

    __slots__ = ("processed", "busy_time", "max_queue_lag")

    def __init__(self) -> None:
        self.processed = 0
        self.busy_time = 0.0
        self.max_queue_lag = 0.0


class ParallelEmulator(InProcessEmulator):
    """A cluster of pipeline workers behind one consistent scene."""

    def __init__(
        self,
        *,
        n_workers: int = 4,
        worker_service_rate: float = 10_000.0,
        seed: Optional[int] = 0,
        bounds: Optional[Bounds] = None,
        recorder: Optional[Recorder] = None,
        schedule_capacity: Optional[int] = None,
        use_client_stamps: bool = True,
    ) -> None:
        if n_workers < 1:
            raise ClusterError(f"need at least one worker, got {n_workers}")
        if worker_service_rate <= 0:
            raise ClusterError(
                f"service rate must be positive: {worker_service_rate}"
            )
        super().__init__(
            seed=seed,
            bounds=bounds,
            recorder=recorder,
            schedule_capacity=schedule_capacity,
            use_client_stamps=use_client_stamps,
        )
        self.n_workers = n_workers
        self.service_time = 1.0 / worker_service_rate
        self.shards = ShardMap(n_workers)
        # Per-worker serial occupancy (fluid model of a busy CPU).
        self._busy_until = [0.0] * n_workers
        self.worker_stats = [WorkerStats() for _ in range(n_workers)]
        # Workers share the scene/neighbors/recorder through self.engine;
        # sharding only spreads *when* pipeline work runs.

    def add_node(self, position: Vec2, radios: RadioConfig, **kwargs) -> VirtualNodeHost:
        host = super().add_node(position, radios, **kwargs)
        self.shards.place(host.node_id)
        return host

    def remove_node(self, node_id: NodeId) -> None:
        self.shards.release(node_id)
        super().remove_node(node_id)

    def worker_for(self, node_id: int) -> int:
        """Stable shard assignment: sender id → worker index.

        Registration-order round-robin via the explicit
        :class:`~repro.cluster.shard.ShardMap` — unlike the old
        ``hash(v) mod n`` this is reproducible across interpreter runs
        regardless of ``PYTHONHASHSEED``, and it is the *same* map the
        multi-process :class:`~repro.cluster.sharded.ShardedEmulator`
        uses, so the modeled and real clusters agree on placement.
        """
        return self.shards.shard_of(NodeId(int(node_id)))

    def _client_transmit(self, host: VirtualNodeHost, packet: Packet) -> None:
        """Queue the frame at its shard's worker, then run the pipeline."""
        uplink = host.uplink.sample(host._rng)
        self.clock.call_after(uplink, lambda: self._worker_enqueue(host, packet))

    def _worker_enqueue(self, host: VirtualNodeHost, packet: Packet) -> None:
        w = self.worker_for(host.node_id)
        now = self.clock.now()
        start = max(now, self._busy_until[w])
        done = start + self.service_time
        self._busy_until[w] = done
        stats = self.worker_stats[w]
        stats.processed += 1
        stats.busy_time += self.service_time
        stats.max_queue_lag = max(stats.max_queue_lag, start - now)

        def process() -> None:
            self.scene.advance_time(self.clock.now())
            entries = self.engine.ingest(host.node_id, packet)
            t = self.clock.now()
            for entry in entries:
                self.clock.call_at(max(entry.t_forward, t), self._flush_engine)

        self.clock.call_at(done, process)

    # -- observability ---------------------------------------------------------------

    def load_report(self) -> dict:
        """Cluster load summary (per-worker + aggregate)."""
        total = sum(s.processed for s in self.worker_stats)
        return {
            "n_workers": self.n_workers,
            "processed_total": total,
            "per_worker": [
                {
                    "processed": s.processed,
                    "busy_time": s.busy_time,
                    "max_queue_lag": s.max_queue_lag,
                }
                for s in self.worker_stats
            ],
            "max_queue_lag": max(
                (s.max_queue_lag for s in self.worker_stats), default=0.0
            ),
            "imbalance": (
                max(s.processed for s in self.worker_stats)
                / max(total / self.n_workers, 1)
                if total
                else 0.0
            ),
        }
