"""The shard worker process of the sharded cluster.

One worker = one OS process owning a private
:class:`~repro.core.engine.ForwardingEngine` +
:class:`~repro.core.scheduler.ForwardSchedule` +
:class:`~repro.core.clock.VirtualClock` +
:class:`~repro.core.recording.MemoryRecorder`, fed a shard of senders
over a pipe (see :mod:`repro.cluster.ipc` for the frame flavors).  The
worker's event loop is strictly reactive:

* a **packet batch** runs each frame through
  :meth:`~repro.core.engine.ForwardingEngine.worker_ingest` — the clock
  advances to the frame's client stamp, fires any due flush callbacks,
  then ingests;
* ``scene_snapshot`` swaps in a freshly rebuilt scene replica (stale
  versions are ignored, so replication is idempotent);
* ``flush`` runs the clock to the barrier time and acks with pipeline
  counters, schedule depth, and the process's busy fraction;
* ``collect`` drains the worker's packet log into a ``worker_report``;
* ``shutdown`` acks ``bye`` and exits the loop.

Time discipline: the worker's virtual clock is driven **entirely by the
client stamps on incoming frames** (the paper's parallel time-stamping,
doing double duty as the cluster's logical clock).  The per-shard clocks
therefore advance independently between barriers — cross-shard
coherence is restored at merge time by the parent (and audited by the
forensics plane's cross-shard detector).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..core.clock import VirtualClock
from ..core.engine import ForwardingEngine
from ..core.neighbor import ChannelIndexedNeighborTables
from ..core.recording import MemoryRecorder
from ..net.messages import (
    decode_message,
    decode_packet_binary,
    encode_message,
    make_flushed,
    make_worker_error,
    make_worker_report,
)
from . import ipc

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs at birth (picklable for spawn starts)."""

    worker_index: int
    n_workers: int
    seed: Optional[int] = 0
    use_client_stamps: bool = True
    schedule_capacity: Optional[int] = None

    def make_rng(self) -> np.random.Generator:
        """The worker engine's RNG.

        A 1-worker cluster uses ``default_rng(seed)`` — bit-identical to
        :class:`~repro.core.server.InProcessEmulator`'s engine stream,
        which is what makes the seeded-equivalence test exact.  Multiple
        workers draw from per-worker child streams
        (``default_rng([seed, index])``) so shards are decorrelated but
        still reproducible run-to-run.
        """
        if self.seed is None:
            return np.random.default_rng()
        if self.n_workers == 1:
            return np.random.default_rng(self.seed)
        return np.random.default_rng([self.seed, self.worker_index])


class _WorkerState:
    """The mutable half of a worker: engine, clock, recorder, counters."""

    def __init__(self, config: WorkerConfig) -> None:
        self.config = config
        self.clock = VirtualClock()
        self.recorder = MemoryRecorder()
        self.engine: Optional[ForwardingEngine] = None
        self.scene_version = -1
        self.shard_ingested = 0
        self.busy_seconds = 0.0
        self.started_at = time.perf_counter()

    # -- scene replication ----------------------------------------------------

    def apply_snapshot(self, version: int, raw_scene: dict[str, Any]) -> None:
        from .snapshot import build_scene  # local: keeps import cycle away

        if version < self.scene_version:
            return  # stale replica, a newer one already landed
        scene = build_scene(raw_scene)
        # The parent's scene time may be ahead of this shard's stamp-driven
        # clock; catch the clock up so scene time never runs backwards.
        if scene.time > self.clock.now():
            self.clock.run_until(scene.time)
        scene.bind_time_source(self.clock.now)
        neighbors = ChannelIndexedNeighborTables(scene)
        if self.engine is None:
            self.engine = ForwardingEngine(
                scene,
                neighbors,
                self.clock,
                self.recorder,
                rng=self.config.make_rng(),
                schedule_capacity=self.config.schedule_capacity,
                use_client_stamps=self.config.use_client_stamps,
            )
        else:
            self.engine.scene = scene
            self.engine.neighbors = neighbors
        self.scene_version = version

    # -- pipeline -------------------------------------------------------------

    def ingest_batch(self, frames: list[bytes]) -> None:
        engine = self.engine
        if engine is None:
            raise ClusterWorkerError(
                "packet batch received before any scene snapshot"
            )
        for frame in frames:
            _op, packet = decode_packet_binary(frame)
            engine.worker_ingest(packet)
        self.shard_ingested += len(frames)

    def flush_to(self, t: float) -> None:
        self.clock.run_until(max(t, self.clock.now()))
        if self.engine is not None:
            self.engine.flush_due(self.clock.now())

    # -- reporting ------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        e = self.engine
        if e is None:
            return {
                "ingested": 0, "forwarded": 0,
                "dropped": 0, "transport_dropped": 0,
            }
        return {
            "ingested": e.ingested,
            "forwarded": e.forwarded,
            "dropped": e.dropped,
            "transport_dropped": e.transport_dropped,
        }

    def busy_fraction(self) -> float:
        wall = time.perf_counter() - self.started_at
        return self.busy_seconds / wall if wall > 0 else 0.0

    def drain_records(self) -> list[list[Any]]:
        """Row-encode and clear the packet log (collect is a drain, so
        a second collect never double-reports)."""
        rows = [ipc.record_to_row(r) for r in self.recorder.packets()]
        self.recorder = MemoryRecorder()
        if self.engine is not None:
            self.engine.recorder = self.recorder
        return rows


class ClusterWorkerError(Exception):
    """Worker-side pipeline failure (reported to the parent, then raised)."""


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of one shard worker process.

    ``conn`` is the child end of the parent's pipe.  The loop exits on
    ``shutdown``, on pipe EOF (parent died), or on a pipeline error —
    which is first reported as a ``worker_error`` control frame so the
    parent can raise it as :class:`~repro.errors.ClusterError` instead
    of timing out.
    """
    state = _WorkerState(config)
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            t0 = time.perf_counter()
            if ipc.is_packet_batch(data):
                state.ingest_batch(ipc.decode_packet_batch(data))
                state.busy_seconds += time.perf_counter() - t0
                continue
            msg = decode_message(data)
            op = msg["op"]
            if op == "scene_snapshot":
                state.apply_snapshot(int(msg["version"]), msg["scene"])
            elif op == "flush":
                state.flush_to(float(msg["t"]))
                reply = make_flushed(
                    int(msg["id"]),
                    config.worker_index,
                    counters=state.counters(),
                    queue_depth=(
                        len(state.engine.schedule)
                        if state.engine is not None else 0
                    ),
                    busy_fraction=state.busy_fraction(),
                    shard_ingested=state.shard_ingested,
                )
                conn.send_bytes(encode_message(reply))
            elif op == "collect":
                report = make_worker_report(
                    config.worker_index,
                    records=state.drain_records(),
                    counters=state.counters(),
                )
                conn.send_bytes(encode_message(report))
            elif op == "shutdown":
                conn.send_bytes(encode_message({"op": "bye"}))
                break
            else:
                raise ClusterWorkerError(f"unknown control op {op!r}")
            state.busy_seconds += time.perf_counter() - t0
    except Exception as exc:
        # Surface the failure to the parent before dying; losing it would
        # turn every worker bug into an opaque parent-side timeout.
        try:
            conn.send_bytes(
                encode_message(
                    make_worker_error(config.worker_index, repr(exc))
                )
            )
        except (OSError, ValueError):
            pass  # parent already gone; the re-raise below still records it
        raise
    finally:
        conn.close()
