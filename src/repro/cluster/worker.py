"""The shard worker process of the sharded cluster.

One worker = one OS process owning a private
:class:`~repro.core.engine.ForwardingEngine` +
:class:`~repro.core.scheduler.ForwardSchedule` +
:class:`~repro.core.clock.VirtualClock` +
:class:`~repro.core.recording.MemoryRecorder`, fed a shard of senders
over a pipe (see :mod:`repro.cluster.ipc` for the frame flavors).  The
worker's event loop is strictly reactive:

* a **packet batch** runs each frame through
  :meth:`~repro.core.engine.ForwardingEngine.worker_ingest` — the clock
  advances to the frame's client stamp, fires any due flush callbacks,
  then ingests; frames carrying a parent-sampled trace id continue
  their pipeline trace here, with the cross-process ``ipc_queue`` /
  ``ipc_decode`` stages recorded first;
* ``scene_snapshot`` swaps in a freshly rebuilt scene replica (stale
  versions are ignored, so replication is idempotent);
* ``flush`` runs the clock to the barrier time and acks with pipeline
  counters, schedule depth, the process's busy fraction, and — when
  telemetry is on — the worker registry's snapshot for the parent's
  cluster-wide merge;
* ``telemetry_pull`` answers with the same sample *without* running the
  clock (the parent's periodic pull between barriers);
* ``collect`` drains the worker's packet log *and* completed trace
  spans into a ``worker_report``;
* ``shutdown`` acks ``bye`` and exits the loop.

Observability: when :attr:`WorkerConfig.telemetry_enabled` the worker
builds a full :class:`~repro.obs.telemetry.Telemetry` bundle whose
tracer runs *delegated* — the parent owns the 1-in-N sampling decision
and worker trace ids are the parent's, so merged cluster spans are
contiguous.  Every worker also keeps a
:class:`~repro.obs.flightrec.FlightRecorder`; on a pipeline failure the
last seconds of events/spans are dumped to a JSON artifact whose path
rides the ``worker_error`` frame back to the parent.  When
:attr:`WorkerConfig.profile_hz` is set the worker additionally runs its
own :class:`~repro.obs.profiler.SamplingProfiler`; its cumulative
folded-stack snapshot rides every sample-bearing reply (``flushed``,
``telemetry_report``, ``worker_report``) and is delta-merged
parent-side so one profile covers the whole cluster.

Time discipline: the worker's virtual clock is driven **entirely by the
client stamps on incoming frames** (the paper's parallel time-stamping,
doing double duty as the cluster's logical clock).  The per-shard clocks
therefore advance independently between barriers — cross-shard
coherence is restored at merge time by the parent (and audited by the
forensics plane's cross-shard detector).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from ..core.clock import VirtualClock
from ..core.engine import ForwardingEngine
from ..core.neighbor import ChannelIndexedNeighborTables
from ..core.recording import MemoryRecorder
from ..net.messages import (
    decode_message,
    decode_packet_binary,
    encode_message,
    make_flushed,
    make_telemetry_report,
    make_worker_error,
    make_worker_report,
)
from ..obs import profiler as profiler_mod
from ..obs.flightrec import FlightRecorder, set_default
from ..obs.profiler import SamplingProfiler
from ..obs.telemetry import Telemetry
from ..obs.tracing import Trace
from . import ipc

__all__ = ["WorkerConfig", "worker_main"]


@dataclass(frozen=True)
class WorkerConfig:
    """Everything a worker needs at birth (picklable for spawn starts)."""

    worker_index: int
    n_workers: int
    seed: Optional[int] = 0
    use_client_stamps: bool = True
    schedule_capacity: Optional[int] = None
    telemetry_enabled: bool = False
    sample_every: int = Telemetry.DEFAULT_SAMPLE_EVERY
    flight_dir: Optional[str] = None
    #: Sampling-profiler rate (Hz); None runs the worker unprofiled.
    profile_hz: Optional[float] = None

    def make_rng(self) -> np.random.Generator:
        """The worker engine's RNG.

        A 1-worker cluster uses ``default_rng(seed)`` — bit-identical to
        :class:`~repro.core.server.InProcessEmulator`'s engine stream,
        which is what makes the seeded-equivalence test exact.  Multiple
        workers draw from per-worker child streams
        (``default_rng([seed, index])``) so shards are decorrelated but
        still reproducible run-to-run.
        """
        if self.seed is None:
            return np.random.default_rng()
        if self.n_workers == 1:
            return np.random.default_rng(self.seed)
        return np.random.default_rng([self.seed, self.worker_index])


class _WorkerState:
    """The mutable half of a worker: engine, clock, recorder, counters."""

    def __init__(
        self,
        config: WorkerConfig,
        flight: Optional[FlightRecorder] = None,
    ) -> None:
        self.config = config
        self.clock = VirtualClock()
        self.recorder = MemoryRecorder()
        self.engine: Optional[ForwardingEngine] = None
        self.scene_version = -1
        self.shard_ingested = 0
        self.busy_seconds = 0.0
        self.started_at = time.perf_counter()
        self.flight = flight or FlightRecorder(
            role=f"worker-{config.worker_index}",
            flight_dir=config.flight_dir,
        )
        #: Completed spans awaiting ship-back (drained by collect/pull).
        self.spans: list[Any] = []
        #: The worker's own wall-clock sampler; its cumulative snapshot
        #: rides every sample-bearing reply, delta-merged parent-side.
        self.profiler: Optional[SamplingProfiler] = None
        if config.profile_hz:
            self.profiler = SamplingProfiler(
                hz=config.profile_hz,
                role=f"worker-{config.worker_index}",
            )
            if profiler_mod.get_default() is None:
                profiler_mod.set_default(self.profiler)
        self.telemetry: Optional[Telemetry] = None
        if config.telemetry_enabled:
            tele = Telemetry(
                enabled=True, sample_every=max(int(config.sample_every), 1)
            )
            tracer = tele.tracer
            # The parent owns the sampling decision and the trace ids:
            # delegated mode keeps the engine from double-sampling with
            # worker-local ids that would collide at merge time.
            tracer.delegated = True
            # Per-stage durations are histogrammed exactly once — by the
            # parent, on the *merged* span — so the worker ships raw
            # spans and leaves its own stage histogram unfed.
            tracer.stage_hist = None
            # Buffer spans for ship-back instead of recording locally
            # (set before engine wiring, which only binds a None sink).
            tracer.sink = self._buffer_span
            self.telemetry = tele

    def _buffer_span(self, span: Any) -> None:
        self.spans.append(span)
        self.flight.note_span(span)

    # -- scene replication ----------------------------------------------------

    def apply_snapshot(self, version: int, raw_scene: dict[str, Any]) -> None:
        from .snapshot import build_scene  # local: keeps import cycle away

        if version < self.scene_version:
            return  # stale replica, a newer one already landed
        scene = build_scene(raw_scene)
        # The parent's scene time may be ahead of this shard's stamp-driven
        # clock; catch the clock up so scene time never runs backwards.
        if scene.time > self.clock.now():
            self.clock.run_until(scene.time)
        scene.bind_time_source(self.clock.now)
        neighbors = ChannelIndexedNeighborTables(scene)
        if self.engine is None:
            self.engine = ForwardingEngine(
                scene,
                neighbors,
                self.clock,
                self.recorder,
                rng=self.config.make_rng(),
                schedule_capacity=self.config.schedule_capacity,
                use_client_stamps=self.config.use_client_stamps,
                telemetry=self.telemetry,
            )
        else:
            self.engine.scene = scene
            self.engine.neighbors = neighbors
        self.scene_version = version

    # -- pipeline -------------------------------------------------------------

    def ingest_batch(
        self, entries: list[tuple[bytes, int]], t_sent: float
    ) -> None:
        engine = self.engine
        if engine is None:
            raise ClusterWorkerError(
                "packet batch received before any scene snapshot"
            )
        tracing = self.telemetry is not None
        # One dwell measurement serves the whole batch: every frame in
        # it sat in the same pipe for the same interval.
        dwell = max(time.time() - t_sent, 0.0) if tracing else 0.0
        for frame, trace_id in entries:
            if trace_id and tracing:
                tr = Trace(trace_id)
                tr.stage("ipc_queue", dwell)
                t0 = time.perf_counter()
                _op, packet = decode_packet_binary(frame)
                tr.stage("ipc_decode", time.perf_counter() - t0)
                tr.bind(packet.source, packet)
                engine.worker_ingest(packet, trace=tr)
            else:
                _op, packet = decode_packet_binary(frame)
                engine.worker_ingest(packet)
        self.shard_ingested += len(entries)

    def flush_to(self, t: float) -> None:
        self.clock.run_until(max(t, self.clock.now()))
        if self.engine is not None:
            self.engine.flush_due(self.clock.now())

    # -- reporting ------------------------------------------------------------

    def counters(self) -> dict[str, int]:
        e = self.engine
        if e is None:
            return {
                "ingested": 0, "forwarded": 0,
                "dropped": 0, "transport_dropped": 0,
            }
        return {
            "ingested": e.ingested,
            "forwarded": e.forwarded,
            "dropped": e.dropped,
            "transport_dropped": e.transport_dropped,
        }

    def busy_fraction(self) -> float:
        wall = time.perf_counter() - self.started_at
        return self.busy_seconds / wall if wall > 0 else 0.0

    def queue_depth(self) -> int:
        return len(self.engine.schedule) if self.engine is not None else 0

    def telemetry_snapshot(self) -> Optional[dict[str, Any]]:
        tele = self.telemetry
        return tele.snapshot() if tele is not None else None

    def profile_snapshot(self) -> Optional[dict[str, Any]]:
        prof = self.profiler
        return prof.snapshot() if prof is not None else None

    def drain_records(self) -> list[list[Any]]:
        """Row-encode and clear the packet log (collect is a drain, so
        a second collect never double-reports)."""
        rows = [ipc.record_to_row(r) for r in self.recorder.packets()]
        self.recorder = MemoryRecorder()
        if self.engine is not None:
            self.engine.recorder = self.recorder
        return rows

    def drain_spans(self) -> Optional[list[list[Any]]]:
        """Row-encode and clear the completed-span buffer (same drain
        discipline as the packet log)."""
        if self.telemetry is None:
            return None
        rows = [ipc.span_to_row(s) for s in self.spans]
        self.spans = []
        return rows


class ClusterWorkerError(Exception):
    """Worker-side pipeline failure (reported to the parent, then raised)."""


def worker_main(conn, config: WorkerConfig) -> None:
    """Entry point of one shard worker process.

    ``conn`` is the child end of the parent's pipe.  The loop exits on
    ``shutdown``, on pipe EOF (parent died), or on a pipeline error —
    which is first reported as a ``worker_error`` control frame (with
    the flight-recorder artifact path) so the parent can raise it as
    :class:`~repro.errors.ClusterError` instead of timing out.
    """
    # The crash hook goes in before anything expensive: a SIGTERM that
    # lands during state construction must still produce an artifact.
    flight = FlightRecorder(
        role=f"worker-{config.worker_index}",
        flight_dir=config.flight_dir,
    )
    # This process belongs to the worker: its flight recorder becomes
    # the default so structured log events land in the crash ring too.
    set_default(flight)
    flight.install_sigterm()
    flight.note("worker-start", worker=config.worker_index)
    state = _WorkerState(config, flight=flight)
    if state.profiler is not None:
        state.profiler.start()
    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            t0 = time.perf_counter()
            if ipc.is_packet_batch(data):
                entries, t_sent = ipc.decode_packet_batch(data)
                state.ingest_batch(entries, t_sent)
                state.busy_seconds += time.perf_counter() - t0
                continue
            msg = decode_message(data)
            op = msg["op"]
            if op == "scene_snapshot":
                state.apply_snapshot(int(msg["version"]), msg["scene"])
                state.flight.note(
                    "scene-snapshot", version=int(msg["version"])
                )
            elif op == "flush":
                state.flush_to(float(msg["t"]))
                reply = make_flushed(
                    int(msg["id"]),
                    config.worker_index,
                    counters=state.counters(),
                    queue_depth=state.queue_depth(),
                    busy_fraction=state.busy_fraction(),
                    shard_ingested=state.shard_ingested,
                    telemetry=state.telemetry_snapshot(),
                    profile=state.profile_snapshot(),
                )
                conn.send_bytes(encode_message(reply))
                state.flight.note(
                    "flush", t=float(msg["t"]),
                    shard_ingested=state.shard_ingested,
                )
            elif op == "telemetry_pull":
                reply = make_telemetry_report(
                    config.worker_index,
                    queue_depth=state.queue_depth(),
                    busy_fraction=state.busy_fraction(),
                    shard_ingested=state.shard_ingested,
                    counters=state.counters(),
                    telemetry=state.telemetry_snapshot(),
                    spans=state.drain_spans(),
                    profile=state.profile_snapshot(),
                )
                conn.send_bytes(encode_message(reply))
            elif op == "collect":
                report = make_worker_report(
                    config.worker_index,
                    records=state.drain_records(),
                    counters=state.counters(),
                    spans=state.drain_spans(),
                    telemetry=state.telemetry_snapshot(),
                    queue_depth=state.queue_depth(),
                    busy_fraction=state.busy_fraction(),
                    shard_ingested=state.shard_ingested,
                    profile=state.profile_snapshot(),
                )
                conn.send_bytes(encode_message(report))
                state.flight.note(
                    "collect", shard_ingested=state.shard_ingested
                )
            elif op == "shutdown":
                conn.send_bytes(encode_message({"op": "bye"}))
                break
            else:
                raise ClusterWorkerError(f"unknown control op {op!r}")
            state.busy_seconds += time.perf_counter() - t0
    except Exception as exc:
        # Surface the failure to the parent before dying; losing it would
        # turn every worker bug into an opaque parent-side timeout.  The
        # flight dump happens first so the artifact path can ride along.
        state.flight.note("worker-error", error=repr(exc))
        artifact = state.flight.dump(reason=repr(exc))
        try:
            conn.send_bytes(
                encode_message(
                    make_worker_error(
                        config.worker_index, repr(exc), flight=artifact
                    )
                )
            )
        except (OSError, ValueError):
            pass  # parent already gone; the re-raise below still records it
        raise
    finally:
        if state.profiler is not None:
            state.profiler.stop()
        conn.close()
