"""Scene-snapshot wire codec for the sharded cluster.

:class:`~repro.core.scene.SceneSnapshot` is the cluster's replication
unit; these helpers flatten it to the JSON dict a ``scene_snapshot``
control frame carries and rebuild it worker-side.  The radio/link
serialization matches the field set the ``link-set`` scene event records
(loss ``p0/p1/d0/range``, bandwidth ``peak/edge``, delay
``base/per_unit``) so the replay and cluster planes describe links the
same way.
"""

from __future__ import annotations

from typing import Any

from ..core.ids import ChannelId, NodeId
from ..core.scene import Scene, SceneSnapshot, SnapshotNode
from ..errors import ClusterError
from ..models.link import BandwidthModel, DelayModel, LinkModel, PacketLossModel
from ..models.radio import Radio

__all__ = [
    "snapshot_to_dict",
    "snapshot_from_dict",
    "build_scene",
]


def _radio_to_dict(radio: Radio) -> dict[str, Any]:
    link = radio.link
    return {
        "channel": int(radio.channel),
        "range": radio.range,
        "p0": link.loss.p0,
        "p1": link.loss.p1,
        "d0": link.loss.d0,
        "loss_range": link.loss.radio_range,
        "bw_peak": link.bandwidth.peak,
        "bw_edge": link.bandwidth.edge,
        "bw_range": link.bandwidth.radio_range,
        "delay": link.delay.base,
        "delay_per_unit": link.delay.per_unit,
    }


def _radio_from_dict(raw: dict[str, Any]) -> Radio:
    return Radio(
        channel=ChannelId(int(raw["channel"])),
        range=float(raw["range"]),
        link=LinkModel(
            loss=PacketLossModel(
                p0=float(raw["p0"]),
                p1=float(raw["p1"]),
                d0=float(raw["d0"]),
                radio_range=float(raw["loss_range"]),
            ),
            bandwidth=BandwidthModel(
                peak=float(raw["bw_peak"]),
                edge=float(raw["bw_edge"]),
                radio_range=float(raw["bw_range"]),
            ),
            delay=DelayModel(
                base=float(raw["delay"]),
                per_unit=float(raw["delay_per_unit"]),
            ),
        ),
    )


def snapshot_to_dict(snapshot: SceneSnapshot) -> dict[str, Any]:
    """Flatten a snapshot to the JSON dict a control frame ships."""
    return {
        "version": snapshot.version,
        "time": snapshot.time,
        "nodes": [
            {
                "id": int(node.node_id),
                "label": node.label,
                "x": node.x,
                "y": node.y,
                "quarantined": bool(node.quarantined),
                "radios": [_radio_to_dict(r) for r in node.radios],
            }
            for node in snapshot.nodes
        ],
    }


def snapshot_from_dict(raw: dict[str, Any]) -> SceneSnapshot:
    """Inverse of :func:`snapshot_to_dict`."""
    try:
        return SceneSnapshot(
            version=int(raw["version"]),
            time=float(raw["time"]),
            nodes=tuple(
                SnapshotNode(
                    node_id=NodeId(int(n["id"])),
                    label=str(n["label"]),
                    x=float(n["x"]),
                    y=float(n["y"]),
                    radios=tuple(
                        _radio_from_dict(r) for r in n["radios"]
                    ),
                    quarantined=bool(n.get("quarantined", False)),
                )
                for n in raw["nodes"]
            ),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ClusterError(f"malformed scene snapshot: {exc}") from exc


def build_scene(raw: dict[str, Any], *, seed: int | None = None) -> Scene:
    """Decode + rebuild in one step (the worker's snapshot handler)."""
    return Scene.from_snapshot(snapshot_from_dict(raw), seed=seed)
