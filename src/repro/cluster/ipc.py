"""Parent↔worker transport of the sharded cluster.

Each worker hangs off one ``multiprocessing`` pipe.  Two frame flavors
share it, distinguished by the first byte exactly like the TCP stack's
binary negotiation (:mod:`repro.net.messages`):

* **control** — a JSON message (first byte ``{``), encoded/decoded by
  the existing :func:`~repro.net.messages.encode_message` codec;
* **packet batch** — magic ``0xB2``, then a count and a sequence of
  length-prefixed PR 2 binary packet frames (magic ``0xB1`` inside).

Batching is the point: ``Connection.send_bytes`` does one syscall pair
per message, so shipping 32 frames per send amortizes IPC overhead the
same way the TCP sender loop's ``send_frames`` batches writes.

Packet *records* travel the other way (worker → parent) inside JSON
``worker_report`` messages as flat rows — :func:`record_to_row` /
:func:`record_from_row` keep that encoding in one place.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Sequence

from ..core.packet import PacketRecord
from ..errors import ClusterError

__all__ = [
    "BATCH_MAGIC",
    "encode_packet_batch",
    "decode_packet_batch",
    "is_packet_batch",
    "record_to_row",
    "record_from_row",
]

BATCH_MAGIC = 0xB2
"""First byte of a packet-batch frame (0xB1 = single binary packet,
``{`` = JSON control)."""

_BATCH_HEADER = struct.Struct(">BI")
_LEN = struct.Struct(">I")


def is_packet_batch(data: bytes) -> bool:
    """Magic-byte sniff, mirroring ``is_binary_frame``."""
    return bool(data) and data[0] == BATCH_MAGIC


def encode_packet_batch(frames: Sequence[bytes]) -> bytes:
    """Pack already-encoded binary packet frames into one batch."""
    parts = [_BATCH_HEADER.pack(BATCH_MAGIC, len(frames))]
    for frame in frames:
        parts.append(_LEN.pack(len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_packet_batch(data: bytes) -> list[bytes]:
    """Unpack a batch back into its binary packet frames."""
    try:
        magic, count = _BATCH_HEADER.unpack_from(data)
    except struct.error as exc:
        raise ClusterError(f"truncated packet batch: {exc}") from exc
    if magic != BATCH_MAGIC:
        raise ClusterError(f"bad batch magic: {magic:#x}")
    frames: list[bytes] = []
    offset = _BATCH_HEADER.size
    for _ in range(count):
        try:
            (length,) = _LEN.unpack_from(data, offset)
        except struct.error as exc:
            raise ClusterError(f"truncated packet batch: {exc}") from exc
        offset += _LEN.size
        end = offset + length
        if len(data) < end:
            raise ClusterError("packet batch truncated inside a frame")
        frames.append(data[offset:end])
        offset = end
    return frames


# -- record rows (worker → parent, inside JSON worker_report) ------------------

#: Column order of a record row; a schema, not a per-row dict.
RECORD_ROW_FIELDS = (
    "record_id",
    "seqno",
    "source",
    "destination",
    "sender",
    "receiver",
    "channel",
    "kind",
    "size_bits",
    "t_origin",
    "t_receipt",
    "t_forward",
    "t_delivered",
    "drop_reason",
)


def record_to_row(record: PacketRecord) -> list[Any]:
    """Flatten one packet record to a JSON-safe row."""
    return [
        record.record_id,
        record.seqno,
        record.source,
        record.destination,
        record.sender,
        record.receiver,
        record.channel,
        record.kind,
        record.size_bits,
        record.t_origin,
        record.t_receipt,
        record.t_forward,
        record.t_delivered,
        record.drop_reason,
    ]


def record_from_row(row: Sequence[Any]) -> PacketRecord:
    """Inverse of :func:`record_to_row`."""
    if len(row) != len(RECORD_ROW_FIELDS):
        raise ClusterError(
            f"record row has {len(row)} fields, expected"
            f" {len(RECORD_ROW_FIELDS)}"
        )
    return PacketRecord(
        record_id=int(row[0]),
        seqno=int(row[1]),
        source=int(row[2]),
        destination=int(row[3]),
        sender=int(row[4]),
        receiver=None if row[5] is None else int(row[5]),
        channel=int(row[6]),
        kind=str(row[7]),
        size_bits=int(row[8]),
        t_origin=_opt(row[9]),
        t_receipt=_opt(row[10]),
        t_forward=_opt(row[11]),
        t_delivered=_opt(row[12]),
        drop_reason=None if row[13] is None else str(row[13]),
    )


def _opt(v: Any) -> Optional[float]:
    return None if v is None else float(v)
