"""Parent↔worker transport of the sharded cluster.

Each worker hangs off one ``multiprocessing`` pipe.  Two frame flavors
share it, distinguished by the first byte exactly like the TCP stack's
binary negotiation (:mod:`repro.net.messages`):

* **control** — a JSON message (first byte ``{``), encoded/decoded by
  the existing :func:`~repro.net.messages.encode_message` codec;
* **packet batch** — magic ``0xB2``, then a count and a sequence of
  length-prefixed PR 2 binary packet frames (magic ``0xB1`` inside).

Batching is the point: ``Connection.send_bytes`` does one syscall pair
per message, so shipping 32 frames per send amortizes IPC overhead the
same way the TCP sender loop's ``send_frames`` batches writes.

The batch header carries a wall-clock **send stamp** and each frame an
8-byte **trace id** (0 = untraced): the Dapper-style cross-process
propagation that lets a parent-sampled pipeline trace continue in the
worker.  The stamp is ``time.time()`` — the one clock both sides of a
pipe on the same machine share — so the worker's ``recv − t_sent``
delta is the real pipe dwell (the ``ipc_queue`` stage).

Packet *records* and completed *trace spans* travel the other way
(worker → parent) inside JSON ``worker_report`` messages as flat rows —
:func:`record_to_row` / :func:`record_from_row` /
:func:`span_to_row` / :func:`span_from_row` keep those encodings in
one place.
"""

from __future__ import annotations

import struct
from typing import Any, Optional, Sequence

from ..core.packet import PacketRecord
from ..errors import ClusterError
from ..obs.tracing import TraceSpan

__all__ = [
    "BATCH_MAGIC",
    "encode_packet_batch",
    "decode_packet_batch",
    "is_packet_batch",
    "record_to_row",
    "record_from_row",
    "span_to_row",
    "span_from_row",
]

BATCH_MAGIC = 0xB2
"""First byte of a packet-batch frame (0xB1 = single binary packet,
``{`` = JSON control)."""

_BATCH_HEADER = struct.Struct(">BId")  # magic, count, t_sent (epoch s)
_ENTRY = struct.Struct(">QI")  # per-frame trace id (0 = untraced), length


def is_packet_batch(data: bytes) -> bool:
    """Magic-byte sniff, mirroring ``is_binary_frame``."""
    return bool(data) and data[0] == BATCH_MAGIC


def encode_packet_batch(
    entries: Sequence[tuple[bytes, int]], t_sent: float
) -> bytes:
    """Pack ``(binary_frame, trace_id)`` pairs into one stamped batch."""
    parts = [_BATCH_HEADER.pack(BATCH_MAGIC, len(entries), t_sent)]
    for frame, trace_id in entries:
        parts.append(_ENTRY.pack(trace_id, len(frame)))
        parts.append(frame)
    return b"".join(parts)


def decode_packet_batch(
    data: bytes,
) -> tuple[list[tuple[bytes, int]], float]:
    """Unpack a batch into ``([(frame, trace_id), ...], t_sent)``."""
    try:
        magic, count, t_sent = _BATCH_HEADER.unpack_from(data)
    except struct.error as exc:
        raise ClusterError(f"truncated packet batch: {exc}") from exc
    if magic != BATCH_MAGIC:
        raise ClusterError(f"bad batch magic: {magic:#x}")
    entries: list[tuple[bytes, int]] = []
    offset = _BATCH_HEADER.size
    for _ in range(count):
        try:
            trace_id, length = _ENTRY.unpack_from(data, offset)
        except struct.error as exc:
            raise ClusterError(f"truncated packet batch: {exc}") from exc
        offset += _ENTRY.size
        end = offset + length
        if len(data) < end:
            raise ClusterError("packet batch truncated inside a frame")
        entries.append((data[offset:end], trace_id))
        offset = end
    return entries, t_sent


# -- record rows (worker → parent, inside JSON worker_report) ------------------

#: Column order of a record row; a schema, not a per-row dict.
RECORD_ROW_FIELDS = (
    "record_id",
    "seqno",
    "source",
    "destination",
    "sender",
    "receiver",
    "channel",
    "kind",
    "size_bits",
    "t_origin",
    "t_receipt",
    "t_forward",
    "t_delivered",
    "drop_reason",
)


def record_to_row(record: PacketRecord) -> list[Any]:
    """Flatten one packet record to a JSON-safe row."""
    return [
        record.record_id,
        record.seqno,
        record.source,
        record.destination,
        record.sender,
        record.receiver,
        record.channel,
        record.kind,
        record.size_bits,
        record.t_origin,
        record.t_receipt,
        record.t_forward,
        record.t_delivered,
        record.drop_reason,
    ]


def record_from_row(row: Sequence[Any]) -> PacketRecord:
    """Inverse of :func:`record_to_row`."""
    if len(row) != len(RECORD_ROW_FIELDS):
        raise ClusterError(
            f"record row has {len(row)} fields, expected"
            f" {len(RECORD_ROW_FIELDS)}"
        )
    return PacketRecord(
        record_id=int(row[0]),
        seqno=int(row[1]),
        source=int(row[2]),
        destination=int(row[3]),
        sender=int(row[4]),
        receiver=None if row[5] is None else int(row[5]),
        channel=int(row[6]),
        kind=str(row[7]),
        size_bits=int(row[8]),
        t_origin=_opt(row[9]),
        t_receipt=_opt(row[10]),
        t_forward=_opt(row[11]),
        t_delivered=_opt(row[12]),
        drop_reason=None if row[13] is None else str(row[13]),
    )


def _opt(v: Any) -> Optional[float]:
    return None if v is None else float(v)


# -- span rows (worker → parent, inside JSON worker_report) --------------------

#: Column order of a trace-span row (stages ride as ``[name, dur]`` pairs).
SPAN_ROW_FIELDS = (
    "trace_id",
    "source",
    "seqno",
    "channel",
    "sender",
    "receiver",
    "t_start",
    "outcome",
    "t_forward",
    "lag",
    "stages",
)


def span_to_row(span: TraceSpan) -> list[Any]:
    """Flatten one completed trace span to a JSON-safe row."""
    return [
        span.trace_id,
        span.source,
        span.seqno,
        span.channel,
        span.sender,
        span.receiver,
        span.t_start,
        span.outcome,
        span.t_forward,
        span.lag,
        [[n, d] for n, d in span.stages],
    ]


def span_from_row(row: Sequence[Any]) -> TraceSpan:
    """Inverse of :func:`span_to_row`."""
    if len(row) != len(SPAN_ROW_FIELDS):
        raise ClusterError(
            f"span row has {len(row)} fields, expected"
            f" {len(SPAN_ROW_FIELDS)}"
        )
    return TraceSpan(
        trace_id=int(row[0]),
        source=int(row[1]),
        seqno=int(row[2]),
        channel=int(row[3]),
        sender=int(row[4]),
        receiver=None if row[5] is None else int(row[5]),
        t_start=float(row[6]),
        outcome=str(row[7]),
        t_forward=_opt(row[8]),
        lag=_opt(row[9]),
        stages=tuple((str(n), float(d)) for n, d in row[10]),
    )
