"""The real parallelized cluster: multi-process sharded forwarding plane.

This is the paper's §7 future work implemented with actual OS
parallelism (contrast :class:`~repro.cluster.parallel.ParallelEmulator`,
which *models* the cluster's queueing inside one process).  The parent
process owns the one consistent scene (§2.1's centralized-architecture
argument), a deterministic :class:`~repro.cluster.shard.ShardMap`, and
the recording plane; ``n_workers`` child processes each run a private
:class:`~repro.core.engine.ForwardingEngine` + schedule + virtual clock
over an immutable scene replica (:mod:`repro.cluster.snapshot`).

Data flow per frame: the client stamps ``t_origin`` (parallel
time-stamping), the parent encodes the frame with the PR 2 binary wire
codec, batches it to the sender's shard (:mod:`repro.cluster.ipc`), and
the worker's stamp-driven clock replays the §3.2 pipeline.  Scene
mutations mark the replica dirty; the next submission ships a fresh
version-stamped snapshot *before* any newer traffic, so workers never
forward against a stale topology relative to the script's order.

Synchronization points are explicit: :meth:`ShardedEmulator.flush` is a
barrier (run every shard to time ``t``; their health/telemetry samples
come back on the ack) and :meth:`ShardedEmulator.collect` drains every
worker's packet log, merges the streams in event-time order, re-ids
them through the parent recorder, and records the ``cluster-run`` scene
event the forensics plane keys its cross-shard coherence audit on.

With ``n_workers=1`` the merge is a passthrough and the worker replays
the in-process emulator's exact clock discipline and RNG stream — the
seeded-equivalence contract that makes cluster runs trustworthy.
"""

from __future__ import annotations

import itertools
import multiprocessing
import threading
import time
from typing import Any, Optional

from ..core.clock import SyncSample
from ..core.geometry import Vec2
from ..core.ids import ChannelId, IdAllocator, NodeId
from ..core.packet import Packet, PacketRecord, PacketStamper
from ..core.recording import MemoryRecorder, Recorder
from ..core.scene import Scene, SceneEvent
from ..core.supervision import SupervisedThread
from ..errors import ClusterError, ProtocolError
from ..models.mobility import Bounds
from ..models.radio import RadioConfig
from ..net.messages import (
    decode_message,
    encode_message,
    encode_packet_binary,
    make_collect,
    make_flush,
    make_scene_snapshot,
    make_shutdown,
    make_telemetry_pull,
)
from ..obs import flightrec
from ..obs import profiler as profiler_mod
from ..obs.flightrec import FlightRecorder
from ..obs.profiler import SamplingProfiler
from ..obs.telemetry import Telemetry
from ..obs.tracing import TraceSpan
from . import ipc
from .shard import ShardMap
from .snapshot import snapshot_to_dict
from .worker import WorkerConfig, worker_main

__all__ = ["ShardedEmulator", "ShardedHost"]

#: How long (s) the parent waits on a worker ack before declaring it dead.
_REPLY_TIMEOUT = 60.0

#: Staleness threshold multiplier: a shard whose last sample is older
#: than this many pull intervals is flagged ``stale`` in health output.
STALE_AFTER_PULLS = 2.0


class ShardedHost:
    """Parent-side handle for one VMN of a sharded run.

    Scripted-load counterpart of
    :class:`~repro.core.server.VirtualNodeHost`: it stamps and submits
    frames, but delivery happens inside the owning shard's process, so
    there is no local ``received`` list — delivered traffic comes back
    as records via :meth:`ShardedEmulator.collect`.
    """

    def __init__(self, emulator: "ShardedEmulator", node_id: NodeId) -> None:
        self._emulator = emulator
        self._node_id = node_id
        self._stamper = PacketStamper(node_id)

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def shard(self) -> int:
        return self._emulator.shards.shard_of(self._node_id)

    def now(self) -> float:
        return self._emulator.time

    def transmit(
        self,
        destination: NodeId,
        payload: bytes,
        *,
        channel: ChannelId,
        kind: str = "data",
        size_bits: Optional[int] = None,
        t: Optional[float] = None,
    ) -> Packet:
        """Stamp a frame at ``t`` (default: the cluster's current time)
        and submit it to this node's shard."""
        return self._emulator.transmit(
            self._node_id,
            destination,
            payload,
            channel=channel,
            kind=kind,
            size_bits=size_bits,
            t=t,
        )


class ShardedEmulator:
    """A multi-process cluster of shard workers behind one scene."""

    def __init__(
        self,
        *,
        n_workers: int = 4,
        seed: Optional[int] = 0,
        bounds: Optional[Bounds] = None,
        recorder: Optional[Recorder] = None,
        schedule_capacity: Optional[int] = None,
        use_client_stamps: bool = True,
        telemetry: Optional[Telemetry] = None,
        telemetry_interval: Optional[float] = None,
        batch_frames: int = 32,
        start_method: Optional[str] = None,
        flight_dir: Optional[str] = None,
        profile_hz: Optional[float] = None,
    ) -> None:
        if n_workers < 1:
            raise ClusterError(f"need at least one worker, got {n_workers}")
        if batch_frames < 1:
            raise ClusterError(f"batch_frames must be positive: {batch_frames}")
        self.n_workers = n_workers
        self.seed = seed
        self.batch_frames = batch_frames
        self.schedule_capacity = schedule_capacity
        self.use_client_stamps = use_client_stamps
        self.scene = Scene(bounds=bounds, seed=seed)
        self.recorder = recorder if recorder is not None else MemoryRecorder()
        self.recorder.attach_to_scene(self.scene)
        self.shards = ShardMap(n_workers)
        self.telemetry = telemetry if telemetry is not None else Telemetry.disabled()
        self._time = 0.0
        self.scene.bind_time_source(lambda: self._time)
        self._hosts: dict[NodeId, ShardedHost] = {}
        self._ids = IdAllocator()
        self._ctx = multiprocessing.get_context(
            start_method
            or (
                "fork"
                if "fork" in multiprocessing.get_all_start_methods()
                else "spawn"
            )
        )
        self._procs: list[Any] = []
        self._conns: list[Any] = []
        #: Per-shard outbound buffers of ``(binary_frame, trace_id)``.
        self._buffers: list[list[tuple[bytes, int]]] = [
            [] for _ in range(n_workers)
        ]
        self._flush_ids = itertools.count(1)
        self._scene_dirty = True  # nothing shipped yet
        self.scene.add_listener(self._mark_dirty)
        # One lock serializes every pipe exchange (sends *and* the
        # request/response barriers): the periodic telemetry puller must
        # never interleave its frames with a flush/collect or a batch
        # send, or the byte stream itself would corrupt.
        self._io_lock = threading.RLock()
        self.telemetry_interval = (
            float(telemetry_interval) if telemetry_interval else None
        )
        self._puller: Optional[SupervisedThread] = None
        self._pull_stop = threading.Event()
        #: monotonic stamp of each worker's last health/telemetry sample.
        self._last_report = [float("-inf")] * n_workers
        self.flight = FlightRecorder(role="parent", flight_dir=flight_dir)
        self.flight_dir = flight_dir
        if flightrec.get_default() is None:
            flightrec.set_default(self.flight)
        # Continuous profiling: the parent runs its own sampler and
        # folds every worker's folded-stack snapshot into it, so
        # profile_collapsed() is one flamegraph of the whole cluster.
        self.profile_hz = float(profile_hz) if profile_hz else None
        self.profiler: Optional[SamplingProfiler] = None
        if self.profile_hz:
            self.profiler = SamplingProfiler(
                hz=self.profile_hz, role="parent"
            )
            if profiler_mod.get_default() is None:
                profiler_mod.set_default(self.profiler)
        #: Flight artifacts dumped on worker failure: worker → path.
        self.crash_artifacts: dict[int, str] = {}
        # Aggregate pipeline counters, refreshed on every barrier ack.
        self.ingested = 0
        self.forwarded = 0
        self.dropped = 0
        self.transport_dropped = 0
        #: Last barrier's per-worker samples (telemetry + health + docs).
        self.worker_stats: list[dict[str, Any]] = [
            {
                "worker": i,
                "shard_ingested": 0,
                "queue_depth": 0,
                "busy_fraction": 0.0,
                "counters": {},
                "stale": False,
                "report_age": None,
            }
            for i in range(n_workers)
        ]
        self._m_depth = None
        self._m_busy = None
        self._m_shard_ingested = None
        self._last_shard_ingested = [0] * n_workers
        if self.telemetry.enabled:
            reg = self.telemetry.registry
            self._m_depth = reg.gauge(
                "poem_shard_queue_depth",
                "Forward-schedule depth of one shard worker at its last "
                "barrier",
                labels=("shard",),
            )
            self._m_busy = reg.gauge(
                "poem_shard_busy_fraction",
                "Fraction of wall-clock one shard worker spent processing",
                labels=("shard",),
            )
            self._m_shard_ingested = reg.counter(
                "poem_shard_ingested_total",
                "Frames ingested per shard worker",
                labels=("shard",),
            )
            # The parent owns the cluster's sampling decision: traces
            # start at submit() (stage ipc_encode), continue inside the
            # worker, and complete here when the worker ships the span
            # back.  delegated guards against any engine double-sampling
            # and the sink persists merged spans into trace_spans.
            tracer = self.telemetry.tracer
            tracer.delegated = True
            if tracer.sink is None:
                tracer.sink = self.recorder.record_span

    # -- scene bookkeeping ------------------------------------------------------

    def _mark_dirty(self, _event: SceneEvent) -> None:
        # Any scene event invalidates the workers' replicas — including
        # quarantine/restore, which deliberately do NOT bump
        # Scene.version (they bypass the version-keyed caches), so a
        # version compare alone would under-replicate.
        # All writers race benignly (True-stores; the one False store in
        # _sync_scene is ordered before the export it covers).
        self._scene_dirty = True  # poem: ignore[POEM008]

    # -- topology construction --------------------------------------------------

    def add_node(
        self,
        position: Vec2,
        radios: RadioConfig,
        *,
        node_id: Optional[NodeId] = None,
        label: str = "",
    ) -> ShardedHost:
        """Create a VMN, place it on a shard, return its host handle."""
        if node_id is None:
            node_id = NodeId(self._ids.allocate())
        self.scene.add_node(node_id, position, radios, label=label)
        self.shards.place(node_id)
        host = ShardedHost(self, node_id)
        self._hosts[node_id] = host
        # Forensics parity with the in-process stack: the scripted-load
        # cluster's clients stamp with the cluster clock itself, so the
        # registration sync sample records an exact zero offset.
        self.recorder.record_sync(
            SyncSample(
                node=int(node_id),
                label=label,
                offset=0.0,
                delay=0.0,
                t_server=self._time,
                t_client=self._time,
                cause="register",
                residual=0.0,
            )
        )
        return host

    def remove_node(self, node_id: NodeId) -> None:
        self._hosts.pop(node_id, None)
        self.shards.release(node_id)
        if node_id in self.scene:
            self.scene.remove_node(node_id)

    def host(self, node_id: NodeId) -> ShardedHost:
        try:
            return self._hosts[node_id]
        except KeyError:
            raise ClusterError(f"no host for node {node_id}") from None

    def hosts(self) -> list[ShardedHost]:
        return list(self._hosts.values())

    # -- lifecycle ---------------------------------------------------------------

    @property
    def started(self) -> bool:
        return bool(self._procs)

    def start(self) -> None:
        """Spawn the shard workers and ship them the initial scene."""
        if self._procs:
            return
        sample_every = (
            self.telemetry.tracer.sample_every
            if self.telemetry.enabled
            else Telemetry.DEFAULT_SAMPLE_EVERY
        )
        for i in range(self.n_workers):
            parent_conn, child_conn = self._ctx.Pipe()
            config = WorkerConfig(
                worker_index=i,
                n_workers=self.n_workers,
                seed=self.seed,
                use_client_stamps=self.use_client_stamps,
                schedule_capacity=self.schedule_capacity,
                telemetry_enabled=self.telemetry.enabled,
                sample_every=sample_every,
                flight_dir=self.flight_dir,
                profile_hz=self.profile_hz,
            )
            proc = self._ctx.Process(
                target=worker_main,
                args=(child_conn, config),
                name=f"poem-shard-{i}",
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self.flight.note("cluster-start", n_workers=self.n_workers)
        if self.profiler is not None:
            self.profiler.start()
        self._sync_scene()
        if self.telemetry_interval and self.telemetry.enabled:
            self._pull_stop.clear()
            self._puller = SupervisedThread(
                "poem-telemetry-pull",
                self._pull_loop,
                restartable=False,
            )
            self._puller.start()

    def stop(self) -> None:
        """Shut the workers down (graceful ``shutdown``/``bye``, then
        join; stragglers are terminated).  Idempotent."""
        if not self._procs:
            return
        if self._puller is not None:
            self._pull_stop.set()
            self._puller.stop(timeout=2.0)
            self._puller = None
        if self.profiler is not None:
            self.profiler.stop()
            if profiler_mod.get_default() is self.profiler:
                profiler_mod.set_default(None)
        self.flight.note("cluster-stop")
        bye = encode_message(make_shutdown())
        for conn in self._conns:
            try:
                conn.send_bytes(bye)
            except (OSError, ValueError, BrokenPipeError):
                continue  # worker already gone; join below cleans up
        for worker, conn in enumerate(self._conns):
            try:
                if not conn.poll(2.0):
                    continue
                msg = decode_message(conn.recv_bytes())
            except (EOFError, OSError, ValueError, ProtocolError):
                continue  # dying worker closed the pipe first — fine
            op = msg.get("op")
            if op == "worker_error":
                # A worker that crashed during shutdown still ships its
                # flight artifact — keep it for post-mortem analysis.
                self.flight.note(
                    "worker-shutdown-error",
                    worker=worker,
                    error=msg.get("error"),
                )
                if msg.get("flight"):
                    self.crash_artifacts[worker] = str(msg["flight"])
            elif op != "bye":
                self.flight.note(
                    "unexpected-shutdown-reply", worker=worker, op=op
                )
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        self._buffers = [[] for _ in range(self.n_workers)]
        self._scene_dirty = True

    def __enter__(self) -> "ShardedEmulator":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # -- the pipeline -------------------------------------------------------------

    @property
    def time(self) -> float:
        return self._time

    def transmit(
        self,
        node_id: NodeId,
        destination: NodeId,
        payload: bytes,
        *,
        channel: ChannelId,
        kind: str = "data",
        size_bits: Optional[int] = None,
        t: Optional[float] = None,
    ) -> Packet:
        """Client leg: origin-stamp a frame and route it to its shard."""
        host = self.host(node_id)
        if channel not in self.scene.channels_of(node_id):
            raise ProtocolError(
                f"node {node_id} has no radio on channel {channel}"
            )
        packet = host._stamper.make_packet(
            destination,
            payload,
            channel=channel,
            kind=kind,
            size_bits=size_bits,
            t_origin=self._time if t is None else t,
        )
        self.submit(packet)
        return packet

    def submit(self, packet: Packet) -> None:
        """Route one origin-stamped frame to its sender's shard worker.

        When telemetry is on, this is where cluster-wide traces start:
        the 1-in-N sampling decision happens here, the wire-encode is
        timed as the ``ipc_encode`` stage, and the trace parks in the
        parent tracer's inflight table under its ``(source, seqno)`` key
        until the worker ships the matching span back.
        """
        if not self._procs:
            self.start()
        if self._scene_dirty:
            self._sync_scene()
        shard = self.shards.shard_of(packet.source)
        tracer = self.telemetry.tracer if self.telemetry.enabled else None
        trace_id = 0
        if tracer is not None:
            tr = tracer.maybe_start()
            if tr is not None:
                t0 = time.perf_counter()
                frame = encode_packet_binary("packet", packet)
                tr.stage("ipc_encode", time.perf_counter() - t0)
                tr.bind(packet.source, packet)
                tracer.park(tr)
                trace_id = tr.trace_id
            else:
                frame = encode_packet_binary("packet", packet)
        else:
            frame = encode_packet_binary("packet", packet)
        buffer = self._buffers[shard]
        buffer.append((frame, trace_id))
        if len(buffer) >= self.batch_frames:
            self._send_batch(shard)

    def _send_to(self, worker: int, data: bytes) -> None:
        """One guarded pipe send.

        A closed pipe means the worker is already gone: that must
        surface through the worker-failure path (flight dump, crash
        artifact, ``ClusterError``) — never as a raw
        ``BrokenPipeError`` racing the barrier's own detection.
        """
        try:
            self._conns[worker].send_bytes(data)
        except (OSError, ValueError) as exc:
            raise self._worker_failure(
                worker, f"shard worker {worker} pipe closed: {exc}"
            ) from exc

    def _send_batch(self, shard: int) -> None:
        buffer = self._buffers[shard]
        if not buffer:
            return
        # The send stamp is wall-clock: both ends of the pipe share the
        # machine epoch, so the worker's recv−t_sent is real pipe dwell.
        with self._io_lock:
            self._send_to(
                shard, ipc.encode_packet_batch(buffer, time.time())
            )
        buffer.clear()

    def _flush_buffers(self) -> None:
        for shard in range(self.n_workers):
            self._send_batch(shard)

    def _sync_scene(self) -> None:
        """Replicate the current scene to every worker.

        Buffered frames go first — they were transmitted before the
        mutation that made the replica dirty, so they must be forwarded
        against the older topology.
        """
        if not self._procs:
            return
        with self._io_lock:
            self._flush_buffers()
            # Clear the flag *before* exporting: a scene event landing
            # mid-export re-marks it and the next barrier re-ships,
            # instead of a late ``False`` store erasing that event and
            # leaving the workers on a stale replica.  (A lock is not an
            # option: ``_mark_dirty`` fires under the Scene lock while
            # this block holds ``_io_lock`` -> Scene lock, so guarding
            # the flag would close a lock-order cycle.)
            self._scene_dirty = False
            snap = self.scene.export_snapshot()
            frame = encode_message(
                make_scene_snapshot(snapshot_to_dict(snap), snap.version)
            )
            for worker in range(len(self._conns)):
                self._send_to(worker, frame)

    def _recv_control(self, worker: int) -> dict[str, Any]:
        conn = self._conns[worker]
        if not conn.poll(_REPLY_TIMEOUT):
            raise self._worker_failure(
                worker,
                f"shard worker {worker} did not answer within "
                f"{_REPLY_TIMEOUT:.0f}s",
            )
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError) as exc:
            raise self._worker_failure(
                worker, f"shard worker {worker} died: {exc}"
            ) from exc
        msg = decode_message(data)
        if msg.get("op") == "worker_error":
            raise self._worker_failure(
                worker,
                f"shard worker {worker} failed: {msg.get('error')}",
                worker_flight=msg.get("flight"),
            )
        return msg

    def _worker_failure(
        self,
        worker: int,
        reason: str,
        worker_flight: Optional[str] = None,
    ) -> ClusterError:
        """Flight-record a worker failure before it becomes ClusterError.

        Dumps the parent's own flight artifact, remembers the dead
        worker's artifact path (shipped on ``worker_error`` frames), and
        best-effort records a ``worker-crash`` scene event so an offline
        ``poem analyze`` raises the ``last-crash`` anomaly.
        """
        self.flight.note("worker-crash", worker=worker, reason=reason)
        artifact = self.flight.dump(reason=reason)
        if worker_flight:
            self.crash_artifacts[worker] = str(worker_flight)
        details: dict[str, Any] = {"worker": worker, "reason": reason}
        if artifact:
            details["flight"] = artifact
        if worker_flight:
            details["worker_flight"] = str(worker_flight)
        try:
            self.recorder.record_scene(
                SceneEvent(
                    time=self._time,
                    kind="worker-crash",
                    node=NodeId(-1),
                    details=details,
                )
            )
        # A dying cluster must still raise the real error even when the
        # recorder is already broken.
        except Exception:  # poem: ignore[POEM005]
            pass
        return ClusterError(reason)

    # -- barriers -----------------------------------------------------------------

    def flush(self, t: float) -> dict[str, Any]:
        """Barrier: run every shard to emulation time ``t``.

        Ships any buffered frames, waits for every worker's ack, folds
        the returned per-worker samples into telemetry/health, then
        advances the parent scene (mobility) to ``t``.  Returns the
        aggregate sample.
        """
        if not self._procs:
            self.start()
        if self._scene_dirty:
            self._sync_scene()
        with self._io_lock:
            self._flush_buffers()
            flush_id = next(self._flush_ids)
            frame = encode_message(make_flush(t, flush_id))
            for worker in range(self.n_workers):
                self._send_to(worker, frame)
            for worker in range(self.n_workers):
                msg = self._recv_control(worker)
                if msg.get("op") != "flushed" or msg.get("id") != flush_id:
                    raise ClusterError(
                        f"shard worker {worker}: unexpected barrier "
                        f"reply {msg!r}"
                    )
                self._fold_worker_sample(worker, msg)
            self._refresh_aggregates()
        if t > self._time:
            self._time = t
        self.scene.advance_time(self._time)
        return {
            "time": self._time,
            "ingested": self.ingested,
            "forwarded": self.forwarded,
            "dropped": self.dropped,
            "transport_dropped": self.transport_dropped,
            "per_worker": [dict(s) for s in self.worker_stats],
        }

    def _fold_worker_sample(self, worker: int, msg: dict[str, Any]) -> None:
        """Fold one worker's health+telemetry sample into the parent.

        Called from every exchange that carries a sample — flush
        barriers, ``collect`` replies, and the periodic telemetry pull —
        so shard gauges and merged metrics refresh as soon as *any*
        exchange happens, not only at barriers.
        """
        stats = self.worker_stats[worker]
        stats["shard_ingested"] = int(msg.get("shard_ingested", 0))
        stats["queue_depth"] = int(msg.get("queue_depth", 0))
        stats["busy_fraction"] = float(msg.get("busy_fraction", 0.0))
        if msg.get("counters"):
            stats["counters"] = dict(msg.get("counters", {}))
        stats["stale"] = False
        stats["report_age"] = 0.0
        self._last_report[worker] = time.monotonic()
        if self._m_depth is not None:
            label = str(worker)
            self._m_depth.labels(label).set(stats["queue_depth"])
            self._m_busy.labels(label).set(stats["busy_fraction"])
            delta = stats["shard_ingested"] - self._last_shard_ingested[worker]
            if delta > 0:
                self._m_shard_ingested.labels(label).inc(delta)
        self._last_shard_ingested[worker] = stats["shard_ingested"]
        self.telemetry.fold_snapshot(worker, msg.get("telemetry"))
        if self.profiler is not None:
            self.profiler.fold_remote(worker, msg.get("profile"))
        spans = msg.get("spans")
        if spans:
            self._merge_spans(spans)

    def _merge_spans(self, rows: list[list[Any]]) -> None:
        """Splice worker spans onto their parked parent traces.

        A shipped-back span whose ``(source, seqno)`` matches a trace in
        the parent tracer's inflight table is completed as *one*
        contiguous cross-process span: parent stages (``ipc_encode``)
        first, then the worker's ``ipc_queue → ipc_decode → receive → …``
        chain, under the parent's trace id and start stamp.  Unmatched
        spans (their parent trace was evicted) complete as-is.
        """
        tracer = self.telemetry.tracer if self.telemetry.enabled else None
        for row in rows:
            span = ipc.span_from_row(row)
            if tracer is None:
                self.flight.note_span(span)
                continue
            parked = tracer.inflight_pop((span.source, span.seqno))
            if parked is not None:
                span = TraceSpan(
                    trace_id=parked.trace_id,
                    source=span.source,
                    seqno=span.seqno,
                    channel=span.channel,
                    sender=span.sender,
                    receiver=span.receiver,
                    t_start=parked.t_start,
                    outcome=span.outcome,
                    stages=tuple(parked.stages) + span.stages,
                    t_forward=span.t_forward,
                    lag=span.lag,
                )
            tracer.complete_span(span)
            self.flight.note_span(span)

    def _refresh_aggregates(self) -> None:
        totals = {"ingested": 0, "forwarded": 0, "dropped": 0,
                  "transport_dropped": 0}
        for stats in self.worker_stats:
            for key in totals:
                totals[key] += int(stats["counters"].get(key, 0))
        self.ingested = totals["ingested"]
        self.forwarded = totals["forwarded"]
        self.dropped = totals["dropped"]
        self.transport_dropped = totals["transport_dropped"]

    # -- periodic telemetry pull --------------------------------------------------

    def pull_telemetry(self) -> list[dict[str, Any]]:
        """Ask every worker for a fresh health/telemetry sample *now*.

        The between-barriers window: a stalled or runaway worker shows
        up in ``/metrics``, ``/health`` and the console without waiting
        for the next ``flush``.  Returns the refreshed per-worker stats.
        """
        if not self._procs:
            return [dict(s) for s in self.worker_stats]
        with self._io_lock:
            frame = encode_message(make_telemetry_pull())
            for worker in range(self.n_workers):
                self._send_to(worker, frame)
            for worker in range(self.n_workers):
                msg = self._recv_control(worker)
                if msg.get("op") != "telemetry_report":
                    raise ClusterError(
                        f"shard worker {worker}: unexpected pull "
                        f"reply {msg!r}"
                    )
                self._fold_worker_sample(worker, msg)
            self._refresh_aggregates()
        return [dict(s) for s in self.worker_stats]

    def _pull_loop(self) -> None:
        interval = self.telemetry_interval or 1.0
        while not self._pull_stop.wait(interval):
            try:
                self.pull_telemetry()
            except ClusterError:
                # The failure is already flight-recorded; the next
                # barrier will raise it on the caller's thread, which is
                # where it can actually be handled.
                return

    def _refresh_staleness(self) -> None:
        """Mark shards whose last sample outlived the pull budget.

        With a periodic pull running, a healthy worker reports at least
        every ``telemetry_interval``; one silent for
        ``STALE_AFTER_PULLS×`` that is stalled (or the puller is).  With
        no pull interval configured there is no cadence contract, so
        only the age is reported.
        """
        now = time.monotonic()
        interval = self.telemetry_interval
        for worker, stats in enumerate(self.worker_stats):
            last = self._last_report[worker]
            age = (now - last) if last != float("-inf") else None
            stats["report_age"] = age
            stats["stale"] = bool(
                interval is not None
                and age is not None
                and age > STALE_AFTER_PULLS * interval
            )

    # -- collection ---------------------------------------------------------------

    def collect(self) -> list[PacketRecord]:
        """Drain every worker's packet log into the parent recorder.

        Streams are merged in event-time order (delivery time, falling
        back through the stamp chain), stably tie-broken by worker and
        worker-local order, then re-identified through the parent
        recorder so record ids are unique and monotone in merge order.
        With one worker the merge is a passthrough — record ids come out
        identical to an in-process run's.

        Also records the ``cluster-run`` scene event carrying the shard
        map and per-worker counters: the forensics plane keys its
        cross-shard coherence audit on it, and replay ignores it like
        any other run-level marker.
        """
        if not self._procs:
            self.start()
        streams: list[list[PacketRecord]] = []
        counters: list[dict[str, Any]] = []
        with self._io_lock:
            self._flush_buffers()
            frame = encode_message(make_collect())
            for worker in range(self.n_workers):
                self._send_to(worker, frame)
            for worker in range(self.n_workers):
                msg = self._recv_control(worker)
                if msg.get("op") != "worker_report":
                    raise ClusterError(
                        f"shard worker {worker}: unexpected collect "
                        f"reply {msg!r}"
                    )
                streams.append(
                    [
                        ipc.record_from_row(row)
                        for row in msg.get("records", [])
                    ]
                )
                counters.append(dict(msg.get("counters", {})))
                # The report doubles as a telemetry pull: spans merge
                # and shard gauges refresh here too, not only at
                # barriers.
                self._fold_worker_sample(worker, msg)
            self._refresh_aggregates()
        if self.n_workers == 1:
            ordered = streams[0]
        else:
            keyed = [
                (_event_time(record), worker, position, record)
                for worker, stream in enumerate(streams)
                for position, record in enumerate(stream)
            ]
            keyed.sort(key=lambda item: item[:3])
            ordered = [item[3] for item in keyed]
        merged: list[PacketRecord] = []
        if ordered:
            start = self.recorder.reserve_record_ids(len(ordered))
            merged = [
                _with_record_id(record, start + i)
                for i, record in enumerate(ordered)
            ]
            self.recorder.record_many(merged)
        self.recorder.record_scene(
            SceneEvent(
                time=self._time,
                kind="cluster-run",
                node=NodeId(-1),
                details={
                    "n_workers": self.n_workers,
                    "shard_map": {
                        str(node): shard
                        for node, shard in self.shards.as_dict().items()
                    },
                    "per_worker": [
                        {
                            "worker": i,
                            "records": len(streams[i]),
                            "counters": counters[i],
                            "shard_ingested":
                                self.worker_stats[i]["shard_ingested"],
                            "busy_fraction":
                                self.worker_stats[i]["busy_fraction"],
                        }
                        for i in range(self.n_workers)
                    ],
                },
            )
        )
        return merged

    def profile_collapsed(self) -> str:
        """The merged cluster profile (parent + every worker) in
        collapsed-stack format; empty string when profiling is off."""
        return self.profiler.collapsed() if self.profiler else ""

    def record_profile(self) -> None:
        """Persist the merged cluster profile as a ``profile`` scene
        event so ``poem profile <db>`` can read it back offline."""
        if self.profiler is None:
            return
        self.recorder.record_scene(
            SceneEvent(
                time=self._time,
                kind="profile",
                node=NodeId(-1),
                details=self.profiler.snapshot(),
            )
        )

    def record_run_summary(self) -> None:
        """Terminal ``run-summary`` event (same shape as the in-process
        emulator's) so ``poem analyze`` cross-checks a cluster recording
        against its own totals."""
        self.record_profile()
        self.recorder.record_scene(
            SceneEvent(
                time=self._time,
                kind="run-summary",
                node=NodeId(-1),
                details={
                    "ingested": self.ingested,
                    "forwarded": self.forwarded,
                    "dropped": self.dropped,
                    "transport_dropped": self.transport_dropped,
                    "records_evicted": getattr(self.recorder, "evicted", 0),
                    "sync_samples": len(self.recorder.sync_samples()),
                    "cluster": {"n_workers": self.n_workers},
                },
            )
        )

    # -- health -------------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Same shape as the other deployments' ``health()``, plus the
        ``cluster`` section ``format_health`` renders per-shard."""
        self._refresh_staleness()
        return {
            "running": self.started
            and all(p.is_alive() for p in self._procs),
            "time": self._time,
            "threads": {},
            "recent_failures": [],
            "clients": {
                int(nid): {
                    "label": self.scene.label(nid),
                    "last_seen": self._time,
                    "stale": self.scene.is_quarantined(nid),
                    "overflow": 0,
                    "outbox_depth": 0,
                }
                for nid in self._hosts
                if nid in self.scene
            },
            "quarantined": {
                int(n): None for n in self.scene.quarantined_nodes()
            },
            "engine": {
                "ingested": self.ingested,
                "forwarded": self.forwarded,
                "dropped": self.dropped,
                "transport_dropped": self.transport_dropped,
            },
            "schedule_depth": sum(
                s["queue_depth"] for s in self.worker_stats
            ),
            "records_evicted": getattr(self.recorder, "evicted", 0),
            "cluster": {
                "n_workers": self.n_workers,
                "alive": sum(1 for p in self._procs if p.is_alive()),
                "shard_loads": self.shards.loads(),
                "pull_interval": self.telemetry_interval,
                "per_worker": [dict(s) for s in self.worker_stats],
                "crash_artifacts": dict(self.crash_artifacts),
                "profiler": (
                    {
                        "hz": self.profiler.hz,
                        "samples": self.profiler.samples,
                        "paused": self.profiler.paused,
                        "stacks": len(self.profiler.folded()),
                    }
                    if self.profiler is not None
                    else None
                ),
            },
        }


def _event_time(record: PacketRecord) -> float:
    """Merge key: when the record's terminal event happened."""
    for stamp in (
        record.t_delivered,
        record.t_forward,
        record.t_receipt,
        record.t_origin,
    ):
        if stamp is not None:
            return stamp
    return 0.0


def _with_record_id(record: PacketRecord, record_id: int) -> PacketRecord:
    """Copy a (frozen) record with the parent-assigned id."""
    return PacketRecord(
        record_id=record_id,
        seqno=record.seqno,
        source=record.source,
        destination=record.destination,
        sender=record.sender,
        receiver=record.receiver,
        channel=record.channel,
        kind=record.kind,
        size_bits=record.size_bits,
        t_origin=record.t_origin,
        t_receipt=record.t_receipt,
        t_forward=record.t_forward,
        t_delivered=record.t_delivered,
        drop_reason=record.drop_reason,
    )
