"""Parallelized server cluster (the paper's future work, implemented)."""

from .parallel import ParallelEmulator, WorkerStats

__all__ = ["ParallelEmulator", "WorkerStats"]
