"""Parallelized server cluster (the paper's future work, implemented).

Two deployments share the :class:`~repro.cluster.shard.ShardMap`
placement policy:

* :class:`ParallelEmulator` — the single-process *model* of a cluster
  (service-rate queues inside one virtual clock), useful for what-if
  capacity studies;
* :class:`ShardedEmulator` — the real thing: ``n_workers`` OS processes,
  each running a private forwarding engine over a replicated scene
  snapshot, fed over binary-codec pipes.
"""

from .parallel import ParallelEmulator, WorkerStats
from .shard import ShardMap
from .sharded import ShardedEmulator, ShardedHost
from .worker import WorkerConfig, worker_main

__all__ = [
    "ParallelEmulator",
    "WorkerStats",
    "ShardMap",
    "ShardedEmulator",
    "ShardedHost",
    "WorkerConfig",
    "worker_main",
]
