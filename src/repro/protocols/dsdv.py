"""Proactive distance-vector routing (DSDV-style baseline).

Every node periodically broadcasts its routing table with destination
sequence numbers; receivers install routes via the advertising neighbor
when fresher or shorter.  We keep full paths (path-vector) rather than
bare next-hops so loop freedom is structural and inspection prints the
paper's ``1 -> 3 -> 2`` notation — behaviourally equivalent to DSDV's
sequence-numbered Bellman-Ford for the scenes the paper evaluates.

No on-demand machinery: a destination the periodic exchange has not yet
reached is simply unroutable (``send_data`` returns False) — the
characteristic proactive trade-off the hybrid protocol exists to soften.
"""

from __future__ import annotations

from typing import Optional

from .common import PathRoutedProtocol, ProtocolTuning

__all__ = ["DsdvProtocol"]


class DsdvProtocol(PathRoutedProtocol):
    """Pure proactive configuration of :class:`PathRoutedProtocol`."""

    name = "dsdv"

    def __init__(self, tuning: Optional[ProtocolTuning] = None) -> None:
        super().__init__(proactive=True, ondemand=False, tuning=tuning)
