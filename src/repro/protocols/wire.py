"""On-the-wire encoding of the bundled protocols' control messages.

Protocols under test exchange *bytes* — the emulator never parses them
(§1: real implementations, no modification).  The bundled protocols use a
compact JSON encoding: self-describing, debuggable in recorded traffic,
and cheap enough that serialization never dominates an emulation run.

Every message is a JSON object with a ``"t"`` (type) field.  Payload bytes
ride along as latin-1 strings (lossless byte↔str round-trip without the
33% base64 overhead).
"""

from __future__ import annotations

import json
from typing import Any

from ..core.ids import NodeId
from ..errors import ProtocolError

__all__ = [
    "encode",
    "decode",
    "encode_payload",
    "decode_payload",
    "path_to_wire",
    "path_from_wire",
]


def encode(message: dict[str, Any]) -> bytes:
    """Serialize a control message to wire bytes."""
    if "t" not in message:
        raise ProtocolError(f"message missing type field: {message}")
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode(data: bytes) -> dict[str, Any]:
    """Parse wire bytes back to a message dict.

    Raises :class:`ProtocolError` on garbage — a protocol receiving a
    frame it cannot parse must not crash its host.
    """
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable control message: {exc}") from exc
    if not isinstance(message, dict) or "t" not in message:
        raise ProtocolError(f"malformed control message: {message!r}")
    return message


def encode_payload(payload: bytes) -> str:
    """Bytes → JSON-safe string (latin-1 identity mapping)."""
    return payload.decode("latin-1")


def decode_payload(text: str) -> bytes:
    """Inverse of :func:`encode_payload`."""
    return text.encode("latin-1")


def path_to_wire(path: tuple[NodeId, ...]) -> list[int]:
    return [int(n) for n in path]


def path_from_wire(raw: list) -> tuple[NodeId, ...]:
    try:
        return tuple(NodeId(int(n)) for n in raw)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed path: {raw!r}") from exc
