"""Real routing-protocol implementations that run unmodified on any host."""

from .aodv import AodvProtocol
from .base import ProtocolHost, RoutingProtocol
from .common import PathRoutedProtocol, ProtocolTuning
from .dsdv import DsdvProtocol
from .flooding import FloodingProtocol
from .hybrid import HybridProtocol
from .routing_table import RouteEntry, RoutingTable, format_path

__all__ = [
    "ProtocolHost",
    "RoutingProtocol",
    "PathRoutedProtocol",
    "ProtocolTuning",
    "HybridProtocol",
    "AodvProtocol",
    "DsdvProtocol",
    "FloodingProtocol",
    "RouteEntry",
    "RoutingTable",
    "format_path",
]
