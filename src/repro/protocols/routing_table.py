"""Routing-table data structure shared by the bundled protocols.

Entries carry a full path (source-routing style) so "inspecting the
routing table" renders exactly the paper's Table 2 notation —
``1 -> 2`` for a direct route, ``1 -> 3 -> 2`` for a relayed one — and
carry the bookkeeping every protocol needs: sequence number (freshness),
metric (hop count), expiry, and which mechanism installed the route
(``proactive`` periodic broadcasting vs ``ondemand`` discovery — the two
halves of the paper's hybrid protocol).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, replace
from typing import Iterable, Optional

from ..core.ids import NodeId
from ..errors import ProtocolError

__all__ = ["RouteEntry", "RoutingTable", "format_path"]


def format_path(path: Iterable[NodeId]) -> str:
    """Render a node path the way the paper prints it: ``1 -> 3 -> 2``."""
    return " -> ".join(str(int(n)) for n in path)


@dataclass(frozen=True, slots=True)
class RouteEntry:
    """One route: the full path from this node to ``destination``."""

    destination: NodeId
    path: tuple[NodeId, ...]
    seqno: int
    expires_at: float
    origin: str = "proactive"  # or "ondemand"

    def __post_init__(self) -> None:
        if len(self.path) < 2:
            raise ProtocolError(f"path too short: {self.path}")
        if self.path[-1] != self.destination:
            raise ProtocolError(
                f"path {self.path} does not end at destination {self.destination}"
            )
        if len(set(self.path)) != len(self.path):
            raise ProtocolError(f"path contains a loop: {self.path}")

    @property
    def next_hop(self) -> NodeId:
        return self.path[1]

    @property
    def metric(self) -> int:
        """Hop count."""
        return len(self.path) - 1

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def __str__(self) -> str:
        return format_path(self.path)


class RoutingTable:
    """Freshness-and-metric route store.

    Update rule (DSDV-style, shared by all bundled protocols): a candidate
    replaces the current entry iff it has a strictly newer sequence
    number, or an equal sequence number with a strictly better (smaller)
    metric.  Expired entries are treated as absent.  Thread-safe for the
    real-time stack.
    """

    def __init__(self, owner: NodeId) -> None:
        self.owner = owner
        self._routes: dict[NodeId, RouteEntry] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        with self._lock:
            return len(self._routes)

    def consider(self, entry: RouteEntry) -> bool:
        """Apply the update rule; returns True if the table changed."""
        if entry.destination == self.owner:
            return False  # never route to self
        if entry.path[0] != self.owner:
            raise ProtocolError(
                f"route path {entry.path} does not start at owner {self.owner}"
            )
        with self._lock:
            current = self._routes.get(entry.destination)
            if current is None or self._better(entry, current):
                self._routes[entry.destination] = entry
                return True
            return False

    @staticmethod
    def _better(candidate: RouteEntry, current: RouteEntry) -> bool:
        if candidate.seqno != current.seqno:
            return candidate.seqno > current.seqno
        if candidate.metric != current.metric:
            return candidate.metric < current.metric
        # Same seqno, same metric: refresh expiry if candidate lives longer.
        return candidate.expires_at > current.expires_at

    def lookup(self, destination: NodeId, now: float) -> Optional[RouteEntry]:
        """Current route to ``destination`` (None if absent or expired)."""
        with self._lock:
            entry = self._routes.get(destination)
            if entry is None or entry.expired(now):
                return None
            return entry

    def remove(self, destination: NodeId) -> bool:
        with self._lock:
            return self._routes.pop(destination, None) is not None

    def invalidate_via(self, node: NodeId) -> list[NodeId]:
        """Drop every route whose path traverses ``node``; returns them.

        Used on link breakage: losing neighbor N kills all routes through
        N — the mechanism behind Table 2's entry-count transitions.
        """
        with self._lock:
            dead = [
                dest
                for dest, entry in self._routes.items()
                if node in entry.path[1:]
            ]
            for dest in dead:
                del self._routes[dest]
            return dead

    def purge_expired(self, now: float) -> list[NodeId]:
        """Drop expired entries; returns the destinations removed."""
        with self._lock:
            dead = [d for d, e in self._routes.items() if e.expired(now)]
            for d in dead:
                del self._routes[d]
            return dead

    def refresh(self, destination: NodeId, expires_at: float) -> None:
        """Extend a live route's lifetime (e.g. on traffic)."""
        with self._lock:
            entry = self._routes.get(destination)
            if entry is not None and expires_at > entry.expires_at:
                self._routes[destination] = replace(entry, expires_at=expires_at)

    def entries(self, now: Optional[float] = None) -> list[RouteEntry]:
        """Live entries sorted by destination (expired filtered if ``now``)."""
        with self._lock:
            items = sorted(self._routes.values(), key=lambda e: int(e.destination))
        if now is None:
            return items
        return [e for e in items if not e.expired(now)]

    def destinations(self, now: Optional[float] = None) -> set[NodeId]:
        return {e.destination for e in self.entries(now)}

    def summary(self, now: Optional[float] = None) -> list[str]:
        """Table 2 rendering: one ``a -> b -> c`` line per live route."""
        return [str(e) for e in self.entries(now)]

    def clear(self) -> None:
        with self._lock:
            self._routes.clear()
