"""On-demand routing (AODV-style baseline).

Routes are discovered only when traffic needs them: the source floods a
route request (RREQ) carrying an (origin, id) pair for duplicate
suppression and an accumulated path; the target answers with a route
reply (RREP) unicast back along the reverse path, installing routes at
every hop.  Data is buffered during discovery and released when the RREP
lands; a broken path triggers a route error (RERR) back to the source,
which re-discovers.

Differences from RFC 3561 AODV, chosen for clarity and documented here:
data frames are source-routed along the discovered path (DSR-flavored
data plane) instead of hop-by-hop next-hop lookup, and HELLO beacons —
which stock AODV makes optional — are always on, because bidirectional
link verification is what the paper's Table 2 scene operations exercise.
Optionally an intermediate node with a fresh cached route may answer the
RREQ itself (``reply_from_cache``), AODV's classic optimization.
"""

from __future__ import annotations

from typing import Optional

from .common import PathRoutedProtocol, ProtocolTuning

__all__ = ["AodvProtocol"]


class AodvProtocol(PathRoutedProtocol):
    """Pure on-demand configuration of :class:`PathRoutedProtocol`."""

    name = "aodv"

    def __init__(
        self,
        tuning: Optional[ProtocolTuning] = None,
        reply_from_cache: bool = False,
    ) -> None:
        super().__init__(
            proactive=False,
            ondemand=True,
            tuning=tuning,
            reply_from_cache=reply_from_cache,
        )
