"""The routing-protocol host API.

PoEm's promise is that "implementations of protocols and services will be
tested and evaluated without any conversion and modification" (§1) —
protocols are embedded in the emulation clients (§3.3) and neither know
nor care whether frames travel over real TCP to a central server or
through the in-process virtual-time emulator.

A :class:`RoutingProtocol` talks to the world only through a
:class:`ProtocolHost`:

* identity and radio inventory (which channels can I transmit on?),
* the synchronized emulation clock,
* ``transmit`` — hand a frame to the medium (client stamps it and ships it
  to the server),
* timers — periodic HELLOs, route timeouts, retry backoff,
* an application upcall for data packets that terminate at this node.

Both deployment stacks implement this interface: the real-time TCP client
(:class:`repro.core.client.PoEmClient`) and the per-VMN hosts of the
virtual-time emulator (:class:`repro.core.server.InProcessEmulator`).
A protocol binary therefore runs *unmodified* on either — the paper's
point, kept testable.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.clock import VirtualClock
from ..core.ids import BROADCAST_NODE, ChannelId, NodeId
from ..core.packet import Packet
from ..errors import ProtocolError

__all__ = [
    "TimerHandle",
    "TimerService",
    "VirtualTimerService",
    "ThreadTimerService",
    "ProtocolHost",
    "RoutingProtocol",
    "AppDeliverFn",
]

AppDeliverFn = Callable[[Packet], None]


@dataclass(frozen=True)
class TimerHandle:
    """Opaque handle to a pending timer."""

    key: object


class TimerService(ABC):
    """Deadline callbacks, virtual or wall-clock."""

    @abstractmethod
    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        """Run ``fn`` once after ``delay`` seconds of emulation time."""

    @abstractmethod
    def cancel(self, handle: TimerHandle) -> None:
        """Cancel a pending timer (no-op if already fired)."""

    @abstractmethod
    def cancel_all(self) -> None:
        """Cancel everything (protocol shutdown)."""


class VirtualTimerService(TimerService):
    """Timers on a :class:`VirtualClock` (deterministic stack)."""

    def __init__(self, clock: VirtualClock) -> None:
        self._clock = clock
        self._handles: set = set()

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        def wrapper() -> None:
            self._handles.discard(call)
            fn()

        call = self._clock.call_after(delay, wrapper)
        self._handles.add(call)
        return TimerHandle(call)

    def cancel(self, handle: TimerHandle) -> None:
        call = handle.key
        if call in self._handles:
            self._handles.discard(call)
            self._clock.cancel(call)

    def cancel_all(self) -> None:
        for call in list(self._handles):
            self._clock.cancel(call)
        self._handles.clear()


class ThreadTimerService(TimerService):
    """Timers via ``threading.Timer`` (real-time stack)."""

    def __init__(self) -> None:
        self._timers: dict[int, threading.Timer] = {}
        self._next = 0
        self._lock = threading.Lock()

    def call_after(self, delay: float, fn: Callable[[], None]) -> TimerHandle:
        with self._lock:
            key = self._next
            self._next += 1

        def wrapper() -> None:
            with self._lock:
                self._timers.pop(key, None)
            fn()

        timer = threading.Timer(max(delay, 0.0), wrapper)
        timer.daemon = True
        with self._lock:
            self._timers[key] = timer
        timer.start()
        return TimerHandle(key)

    def cancel(self, handle: TimerHandle) -> None:
        with self._lock:
            timer = self._timers.pop(handle.key, None)
        if timer is not None:
            timer.cancel()

    def cancel_all(self) -> None:
        with self._lock:
            timers = list(self._timers.values())
            self._timers.clear()
        for t in timers:
            t.cancel()


class ProtocolHost(ABC):
    """Everything a routing protocol may touch."""

    @property
    @abstractmethod
    def node_id(self) -> NodeId:
        """This VMN's identity."""

    @abstractmethod
    def channels(self) -> frozenset[ChannelId]:
        """Channels this node currently has a radio on (``CS(self)``)."""

    @abstractmethod
    def now(self) -> float:
        """Synchronized emulation time (drives all protocol timing)."""

    @abstractmethod
    def transmit(
        self,
        destination: NodeId,
        payload: bytes,
        *,
        channel: ChannelId,
        kind: str = "data",
        size_bits: Optional[int] = None,
    ) -> Packet:
        """Send a frame on ``channel``; returns the stamped packet.

        ``destination = BROADCAST_NODE`` reaches all current neighbors on
        the channel.  Raises :class:`ProtocolError` if the node has no
        radio on ``channel``.
        """

    @abstractmethod
    def timers(self) -> TimerService:
        """Timer facility for periodic/one-shot protocol events."""

    @abstractmethod
    def deliver_to_app(self, packet: Packet) -> None:
        """Hand a data packet that terminates here up to the application."""

    def broadcast(
        self,
        payload: bytes,
        *,
        channel: ChannelId,
        kind: str = "control",
        size_bits: Optional[int] = None,
    ) -> Packet:
        """Convenience: transmit to all neighbors on ``channel``."""
        return self.transmit(
            BROADCAST_NODE, payload, channel=channel, kind=kind,
            size_bits=size_bits,
        )


class RoutingProtocol(ABC):
    """Base class of the real protocol implementations under test.

    Lifecycle: ``start(host)`` → any number of ``on_packet`` / ``send_data``
    / timer callbacks → ``stop()``.  Implementations must be reentrant for
    the real-time stack (timer threads) — the bundled protocols serialize
    on a per-instance lock.
    """

    def __init__(self) -> None:
        self.host: Optional[ProtocolHost] = None

    def start(self, host: ProtocolHost) -> None:
        """Bind to a host and begin operating (arm timers, say HELLO)."""
        if self.host is not None:
            raise ProtocolError(f"{type(self).__name__} already started")
        self.host = host
        self.on_start()

    def stop(self) -> None:
        """Disarm and unbind."""
        if self.host is None:
            return
        self.on_stop()
        self.host.timers().cancel_all()
        self.host = None

    def _require_host(self) -> ProtocolHost:
        if self.host is None:
            raise ProtocolError(f"{type(self).__name__} is not started")
        return self.host

    # -- hooks for implementations -------------------------------------------

    def on_start(self) -> None:
        """Called once after the host is bound."""

    def on_stop(self) -> None:
        """Called once before the host is unbound."""

    @abstractmethod
    def on_packet(self, packet: Packet) -> None:
        """A frame arrived from the medium (control or relayed data)."""

    @abstractmethod
    def send_data(self, destination: NodeId, payload: bytes,
                  size_bits: Optional[int] = None) -> bool:
        """Application wants ``payload`` delivered to ``destination``.

        Returns True if the protocol could send (or queue) it, False if it
        has no route and cannot obtain one right now.
        """

    @abstractmethod
    def route_summary(self) -> list[str]:
        """Human-readable routing entries, ``"1 -> 3 -> 2"`` style.

        This is what the paper's Table 2 prints when "inspecting the
        routing table in VMN1 in real time".
        """
