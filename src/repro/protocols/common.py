"""Shared machinery of the routed protocols (DSDV-, AODV-style, hybrid).

The three bundled routed protocols share one engine room:

* **neighbor maintenance** — periodic HELLO/advertisement beacons carry,
  per channel, the set of nodes the sender has recently heard; a link is
  considered up only when *bidirectional* (I hear you **and** your beacon
  lists me).  This is what makes Table 2 Step 2 work: shrinking VMN1's
  range makes the VMN1→VMN3 direction deaf, so both ends drop the link
  even though VMN3's range still covers VMN1.
* **path-vector routing state** — full paths (:mod:`.routing_table`), so
  route inspection prints the paper's ``1 -> 3 -> 2`` notation and loop
  freedom is checked structurally.
* **source-routed data plane** — data frames carry their path and a hop
  index; each hop unicasts to the next.  An intermediate node whose next
  hop is gone emits a route error (RERR) back toward the source.
* **on-demand discovery** — RREQ flood with (origin, id) duplicate
  suppression and path accumulation; the target (or a node with a fresh
  cached route, if enabled) answers with an RREP unicast back along the
  reverse path, installing routes on the way.

:class:`PathRoutedProtocol` implements all of it behind two switches —
``proactive`` (periodic route broadcasting) and ``ondemand`` (discovery) —
and the concrete protocols are thin configurations:

========================  ==========  =========
protocol                  proactive   ondemand
========================  ==========  =========
:class:`~repro.protocols.dsdv.DsdvProtocol`       ✓           ✗
:class:`~repro.protocols.aodv.AodvProtocol`       ✗           ✓
:class:`~repro.protocols.hybrid.HybridProtocol`   ✓           ✓
========================  ==========  =========

The hybrid row is the paper's protocol under test: "combining the
periodic-broadcasting and on-demand mechanisms to achieve high robustness
for military applications" (§6.1).
"""

from __future__ import annotations

import dataclasses
import numpy as np
import threading
from dataclasses import dataclass
from typing import Optional

from ..core.ids import ChannelId, NodeId
from ..core.packet import Packet
from ..errors import ProtocolError
from . import wire
from .base import RoutingProtocol, TimerHandle
from .routing_table import RouteEntry, RoutingTable

__all__ = ["PathRoutedProtocol", "ProtocolTuning"]


@dataclass(frozen=True)
class ProtocolTuning:
    """Timing/limits knobs, grouped so tests can speed everything up."""

    hello_interval: float = 1.0
    """Beacon period (seconds of emulation time)."""

    hello_jitter: float = 0.1
    """Beacon-period jitter fraction: each period is drawn uniformly from
    ``interval · [1−jitter, 1+jitter]``.  Desynchronizes neighbors'
    beacons — without it, nodes started together stay phase-locked and
    (under a contention MAC) their beacons collide forever."""

    neighbor_timeout: float = 3.5
    """A silent neighbor is declared lost after this long."""

    route_lifetime: float = 10.0
    """Installed routes expire after this long without refresh."""

    rreq_ttl: int = 16
    """Hop bound on discovery floods."""

    rreq_initial_ttl: Optional[int] = None
    """Expanding-ring search: first RREQ uses this TTL, each retry doubles
    it up to ``rreq_ttl``.  None (default) floods at ``rreq_ttl`` at once."""

    rreq_retries: int = 2
    """Re-flood attempts before giving up on a destination."""

    rreq_timeout: float = 2.0
    """How long to wait for an RREP before retrying."""

    pending_limit: int = 64
    """Max data packets buffered per destination during discovery."""

    control_size_bits: int = 512
    """Emulated wire size of beacons and discovery messages."""


class PathRoutedProtocol(RoutingProtocol):
    """The configurable proactive/on-demand path-vector protocol."""

    #: subclass override: protocol name in summaries/records
    name = "path-routed"

    def __init__(
        self,
        *,
        proactive: bool,
        ondemand: bool,
        tuning: Optional[ProtocolTuning] = None,
        reply_from_cache: bool = False,
    ) -> None:
        super().__init__()
        if not (proactive or ondemand):
            raise ProtocolError("protocol must be proactive, on-demand, or both")
        self.proactive = proactive
        self.ondemand = ondemand
        self.reply_from_cache = reply_from_cache
        self.tuning = tuning or ProtocolTuning()

        self.table: Optional[RoutingTable] = None
        self._lock = threading.RLock()
        self._seqno = 0
        # Liveness: when did we last hear each node, per channel.
        self._heard_at: dict[NodeId, dict[ChannelId, float]] = {}
        # What each node's latest beacon said it heard, per channel.
        self._their_heard: dict[NodeId, dict[ChannelId, frozenset[int]]] = {}
        # Currently bidirectional links: node -> channels usable to reach it.
        self._neighbor_channels: dict[NodeId, set[ChannelId]] = {}
        # On-demand state.
        self._rreq_seen: set[tuple[int, int]] = set()
        self._rreq_id = 0
        self._pending: dict[NodeId, list[tuple[bytes, Optional[int]]]] = {}
        self._retry_timers: dict[NodeId, TimerHandle] = {}
        self._retries: dict[NodeId, int] = {}
        self._tick_timer: Optional[TimerHandle] = None
        # Observable counters.
        self.data_delivered = 0
        self.data_forwarded = 0
        self.data_dropped = 0
        self.rreqs_sent = 0
        self.rreps_sent = 0
        self.rerrs_sent = 0
        self.malformed_received = 0

    # ------------------------------------------------------------------ setup

    def on_start(self) -> None:
        host = self._require_host()
        self.table = RoutingTable(host.node_id)
        # Deterministic per-node jitter source (seeded by identity).
        self._jitter_rng = np.random.default_rng(int(host.node_id) * 1009 + 5)
        self._tick()  # first beacon immediately; reschedules itself

    def on_stop(self) -> None:
        # Deliberately lock-free.  ``stop()`` can arrive from a scene
        # event listener that still holds the Scene lock (removing a
        # node live detaches its protocol), while every transmit path
        # takes the protocol lock before descending into the scene —
        # taking our lock here would close a scene -> protocol ordering
        # cycle (a potential deadlock; the runtime lock-order detector
        # convicts it).  The swap is atomic under the GIL, and
        # ``stop()`` follows up with ``timers().cancel_all()``, which
        # sweeps any timer a racing ``_tick`` re-armed in between.
        timer, self._tick_timer = self._tick_timer, None  # poem: ignore[POEM008]
        if timer is not None:
            self._require_host().timers().cancel(timer)

    # ------------------------------------------------------------- the beacon

    def _tick(self) -> None:
        host = self.host
        if host is None:
            return
        with self._lock:
            now = host.now()
            self._expire_neighbors(now)
            if self.table is not None:
                self.table.purge_expired(now)
            self._seqno += 1
            beacon = self._build_beacon(now)
            data = wire.encode(beacon)
            channels = sorted(host.channels())
        # Transmit outside the critical section: ``broadcast`` descends
        # into the scene/engine locks, and holding ours across that wait
        # is the held-lock blocking pattern ``poem lint --runtime``
        # exists to surface (it surfaced this one).
        for channel in channels:
            host.broadcast(
                data, channel=channel, kind="control",
                size_bits=self.tuning.control_size_bits,
            )
        with self._lock:
            if self.host is None:
                # ``stop()`` interleaved while we were transmitting; a
                # re-armed timer here would outlive the protocol.
                return
            jitter = self.tuning.hello_jitter
            period = self.tuning.hello_interval
            if jitter > 0:
                period *= 1.0 + float(
                    self._jitter_rng.uniform(-jitter, jitter)
                )
            self._tick_timer = host.timers().call_after(period, self._tick)

    def _build_beacon(self, now: float) -> dict:
        host = self._require_host()
        heard = {
            str(int(ch)): sorted(
                int(n)
                for n, chans in self._heard_at.items()
                if ch in chans and now - chans[ch] < self.tuning.neighbor_timeout
            )
            for ch in host.channels()
        }
        beacon: dict = {
            "t": "adv",
            "s": int(host.node_id),
            "seq": self._seqno,
            "heard": heard,
            "routes": [],
        }
        if self.proactive and self.table is not None:
            # Advertise the route to myself plus everything I know.
            routes = [[int(host.node_id), self._seqno, [int(host.node_id)]]]
            for entry in self.table.entries(now):
                routes.append(
                    [int(entry.destination), entry.seqno,
                     wire.path_to_wire(entry.path)]
                )
            beacon["routes"] = routes
        else:
            # Even pure on-demand nodes advertise themselves so direct
            # (1-hop) routes exist without discovery.
            beacon["routes"] = [
                [int(host.node_id), self._seqno, [int(host.node_id)]]
            ]
        return beacon

    # ----------------------------------------------------------- frame intake

    def on_packet(self, packet: Packet) -> None:
        host = self.host
        if host is None:
            return
        try:
            msg = wire.decode(packet.payload)
        except ProtocolError:
            return
        with self._lock:
            try:
                sender = NodeId(int(msg.get("s", msg.get("from", -1))))
                if sender >= 0 and sender != host.node_id:
                    self._note_heard(sender, packet.channel, host.now())
                kind = msg["t"]
                if kind == "adv":
                    self._on_adv(msg, packet.channel)
                elif kind == "data":
                    self._on_data(msg, packet)
                elif kind == "rreq" and self.ondemand:
                    self._on_rreq(msg)
                elif kind == "rrep" and self.ondemand:
                    self._on_rrep(msg)
                elif kind == "rerr":
                    self._on_rerr(msg)
            except (KeyError, TypeError, ValueError, IndexError,
                    AttributeError, ProtocolError):
                # Malformed or alien frame: a protocol under test must not
                # crash its host on hostile input — drop and count it.
                self.malformed_received += 1

    def _note_heard(self, node: NodeId, channel: ChannelId, now: float) -> None:
        self._heard_at.setdefault(node, {})[channel] = now

    # -------------------------------------------------------------- beacons in

    def _on_adv(self, msg: dict, channel: ChannelId) -> None:
        host = self._require_host()
        now = host.now()
        sender = NodeId(int(msg["s"]))
        if sender == host.node_id:
            return
        heard_raw = msg.get("heard", {})
        self._their_heard[sender] = {
            ChannelId(int(ch)): frozenset(int(n) for n in nodes)
            for ch, nodes in heard_raw.items()
        }
        was_neighbor = bool(self._neighbor_channels.get(sender))
        self._recompute_link(sender, now)
        is_neighbor = bool(self._neighbor_channels.get(sender))
        if not is_neighbor:
            if was_neighbor:
                self._neighbor_lost(sender)
            return
        # Install/refresh routes advertised by a live bidirectional neighbor.
        if self.table is None:
            return
        expires = now + self.tuning.route_lifetime
        for dest_raw, dseq, path_raw in msg.get("routes", []):
            dest = NodeId(int(dest_raw))
            if dest == host.node_id:
                continue
            their_path = wire.path_from_wire(path_raw)
            if not their_path or their_path[0] != sender:
                continue
            if host.node_id in their_path:
                continue  # loop prevention: never route through myself
            candidate = RouteEntry(
                destination=dest,
                path=(host.node_id,) + their_path,
                seqno=int(dseq),
                expires_at=expires,
                origin="proactive" if self.proactive else "ondemand",
            )
            self.table.consider(candidate)
        # A beacon can unblock buffered traffic two ways: it advertised a
        # new route, or it just confirmed bidirectionality of a next hop
        # an earlier RREP picked.  Try every pending destination.
        for dest in list(self._pending):
            self._flush_pending(dest)

    def _recompute_link(self, node: NodeId, now: float) -> None:
        """Re-derive which channels form a bidirectional link to ``node``."""
        host = self._require_host()
        mine = self._heard_at.get(node, {})
        theirs = self._their_heard.get(node, {})
        channels = {
            ch
            for ch, t in mine.items()
            if now - t < self.tuning.neighbor_timeout
            and int(host.node_id) in theirs.get(ch, frozenset())
            and ch in host.channels()
        }
        if channels:
            self._neighbor_channels[node] = channels
        else:
            self._neighbor_channels.pop(node, None)

    def _expire_neighbors(self, now: float) -> None:
        for node in list(self._neighbor_channels):
            self._recompute_link(node, now)
            if node not in self._neighbor_channels:
                self._neighbor_lost(node)

    def _neighbor_lost(self, node: NodeId) -> None:
        """A link went down: drop every route that used it."""
        if self.table is not None:
            self.table.invalidate_via(node)

    def neighbors(self) -> dict[NodeId, set[ChannelId]]:
        """Current bidirectional neighbors and the channels reaching them."""
        with self._lock:
            return {n: set(chs) for n, chs in self._neighbor_channels.items()}

    # ------------------------------------------------------------- data plane

    def send_data(
        self, destination: NodeId, payload: bytes, size_bits: Optional[int] = None
    ) -> bool:
        host = self._require_host()
        with self._lock:
            if destination == host.node_id:
                raise ProtocolError("cannot send data to self")
            now = host.now()
            entry = (
                self.table.lookup(destination, now) if self.table else None
            )
            if entry is not None and self._transmit_data(
                entry.path, 0, payload, size_bits
            ):
                self.table.refresh(destination, now + self.tuning.route_lifetime)
                return True
            # No route, or the route's first hop is not (yet) a confirmed
            # bidirectional neighbor — fall back to buffering + discovery.
            if not self.ondemand:
                self.data_dropped += 1
                return False
            # Buffer and discover.
            queue = self._pending.setdefault(destination, [])
            if len(queue) >= self.tuning.pending_limit:
                self.data_dropped += 1
                return False
            queue.append((payload, size_bits))
            if destination not in self._retry_timers:
                self._retries[destination] = 0
                self._send_rreq(destination)
            return True

    def _transmit_data(
        self,
        path: tuple[NodeId, ...],
        hop: int,
        payload: bytes,
        size_bits: Optional[int],
    ) -> bool:
        """Unicast one data frame to ``path[hop+1]``; False if link gone."""
        host = self._require_host()
        next_hop = path[hop + 1]
        channels = self._neighbor_channels.get(next_hop)
        if not channels:
            return False
        msg = {
            "t": "data",
            "s": int(path[hop]),
            "path": wire.path_to_wire(path),
            "i": hop + 1,
            "data": wire.encode_payload(payload),
        }
        host.transmit(
            next_hop,
            wire.encode(msg),
            channel=min(channels),
            kind="data",
            size_bits=size_bits,
        )
        return True

    def _on_data(self, msg: dict, packet: Packet) -> None:
        host = self._require_host()
        path = wire.path_from_wire(msg["path"])
        hop = int(msg["i"])
        if hop >= len(path) or path[hop] != host.node_id:
            return  # overheard frame not addressed to me on this path
        payload = wire.decode_payload(msg["data"])
        if hop == len(path) - 1:
            self.data_delivered += 1
            # Unwrap: the application sees its own payload and the packet's
            # original source (the frame's source is the last-hop relay).
            host.deliver_to_app(
                dataclasses.replace(packet, payload=payload, source=path[0])
            )
            return
        ok = self._transmit_data(path, hop, payload, packet.size_bits)
        if ok:
            self.data_forwarded += 1
        else:
            self.data_dropped += 1
            self._send_rerr(path, hop, broken=path[hop + 1])

    # --------------------------------------------------------------- discovery

    def _discovery_ttl(self, attempt: int) -> int:
        """TTL for discovery attempt ``attempt`` (0-based).

        With expanding-ring search enabled, rings double per retry:
        initial, 2·initial, 4·initial, …, capped at ``rreq_ttl``.
        """
        initial = self.tuning.rreq_initial_ttl
        if initial is None:
            return self.tuning.rreq_ttl
        return min(initial << attempt, self.tuning.rreq_ttl)

    def _send_rreq(self, destination: NodeId) -> None:
        host = self._require_host()
        self._rreq_id += 1
        self.rreqs_sent += 1
        key = (int(host.node_id), self._rreq_id)
        self._rreq_seen.add(key)
        msg = {
            "t": "rreq",
            "s": int(host.node_id),
            "o": int(host.node_id),
            "d": int(destination),
            "id": self._rreq_id,
            "ttl": self._discovery_ttl(self._retries.get(destination, 0)),
            "path": [int(host.node_id)],
        }
        data = wire.encode(msg)
        for channel in sorted(host.channels()):
            host.broadcast(data, channel=channel, kind="control",
                           size_bits=self.tuning.control_size_bits)
        self._retry_timers[destination] = host.timers().call_after(
            self.tuning.rreq_timeout, lambda: self._rreq_retry(destination)
        )

    def _rreq_retry(self, destination: NodeId) -> None:
        with self._lock:
            host = self.host
            if host is None:
                return
            self._retry_timers.pop(destination, None)
            if destination not in self._pending:
                return  # already flushed
            if self._flush_pending(destination):
                return
            attempts = self._retries.get(destination, 0)
            if attempts >= self.tuning.rreq_retries:
                dropped = self._pending.pop(destination, [])
                self.data_dropped += len(dropped)
                self._retries.pop(destination, None)
                return
            self._retries[destination] = attempts + 1
            self._send_rreq(destination)

    def _on_rreq(self, msg: dict) -> None:
        host = self._require_host()
        origin = NodeId(int(msg["o"]))
        target = NodeId(int(msg["d"]))
        key = (int(origin), int(msg["id"]))
        if origin == host.node_id or key in self._rreq_seen:
            return
        self._rreq_seen.add(key)
        path = wire.path_from_wire(msg["path"])
        if host.node_id in path:
            return
        full_path = path + (host.node_id,)
        now = host.now()
        # Learn the reverse route toward the origin for free.
        if self.table is not None and len(full_path) >= 2:
            reverse = tuple(reversed(full_path))
            self.table.consider(
                RouteEntry(
                    destination=origin,
                    path=reverse,
                    seqno=0,
                    expires_at=now + self.tuning.route_lifetime,
                    origin="ondemand",
                )
            )
        if target == host.node_id:
            self._seqno += 1
            self._send_rrep(full_path, int(msg["id"]), self._seqno)
            return
        if self.reply_from_cache and self.table is not None:
            cached = self.table.lookup(target, now)
            if cached is not None and not (set(cached.path) & set(path)):
                spliced = full_path + cached.path[1:]
                # We answer from the middle of the spliced path, not its
                # target end — the hop index is our own position.
                self._send_rrep(
                    spliced, int(msg["id"]), cached.seqno,
                    holder_index=len(full_path) - 1,
                )
                return
        ttl = int(msg["ttl"]) - 1
        if ttl <= 0:
            return
        relay = dict(msg)
        relay["s"] = int(host.node_id)
        relay["ttl"] = ttl
        relay["path"] = wire.path_to_wire(full_path)
        data = wire.encode(relay)
        for channel in sorted(host.channels()):
            host.broadcast(data, channel=channel, kind="control",
                           size_bits=self.tuning.control_size_bits)

    def _send_rrep(
        self,
        path: tuple[NodeId, ...],
        rreq_id: int,
        seq: int,
        holder_index: Optional[int] = None,
    ) -> None:
        """Answer a discovery: unicast back along the reverse of ``path``.

        ``path`` runs origin → … → target.  ``holder_index`` is the
        answering node's position in it — the target end by default, or
        the middle for a cache reply.
        """
        host = self._require_host()
        self.rreps_sent += 1
        msg = {
            "t": "rrep",
            "s": int(host.node_id),
            "id": rreq_id,
            "seq": seq,
            "path": wire.path_to_wire(path),
            "i": len(path) - 1 if holder_index is None else holder_index,
        }
        self._forward_rrep(msg)

    def _forward_rrep(self, msg: dict) -> None:
        host = self._require_host()
        path = wire.path_from_wire(msg["path"])
        i = int(msg["i"])
        if i <= 0:
            return
        prev_hop = path[i - 1]
        channels = self._neighbor_channels.get(prev_hop)
        if not channels:
            return  # reverse path broke while the RREP was in flight
        out = dict(msg)
        out["s"] = int(host.node_id)
        out["i"] = i - 1
        host.transmit(prev_hop, wire.encode(out), channel=min(channels),
                      kind="control", size_bits=self.tuning.control_size_bits)

    def _on_rrep(self, msg: dict) -> None:
        host = self._require_host()
        path = wire.path_from_wire(msg["path"])
        i = int(msg["i"])
        if i >= len(path) or path[i] != host.node_id:
            return
        target = path[-1]
        now = host.now()
        if self.table is not None:
            my_path = path[i:]
            if len(my_path) >= 2 and host.node_id not in my_path[1:]:
                changed = self.table.consider(
                    RouteEntry(
                        destination=target,
                        path=my_path,
                        seqno=int(msg["seq"]),
                        expires_at=now + self.tuning.route_lifetime,
                        origin="ondemand",
                    )
                )
                if changed and target in self._pending:
                    self._flush_pending(target)
        if i > 0:
            self._forward_rrep(msg)

    def _flush_pending(self, destination: NodeId) -> bool:
        """Release buffered data if a *usable* route exists.

        Usable means the first hop is a confirmed bidirectional neighbor —
        a route learned from an RREP can briefly outrun the HELLO
        confirmation, in which case we keep buffering and let the retry
        timer (or the next beacon-triggered flush) try again.
        """
        host = self._require_host()
        entry = self.table.lookup(destination, host.now()) if self.table else None
        if entry is None or entry.next_hop not in self._neighbor_channels:
            return False
        for payload, size_bits in self._pending.pop(destination, []):
            self._transmit_data(entry.path, 0, payload, size_bits)
        timer = self._retry_timers.pop(destination, None)
        if timer is not None:
            host.timers().cancel(timer)
        self._retries.pop(destination, None)
        return True

    # --------------------------------------------------------------- route error

    def _send_rerr(self, path: tuple[NodeId, ...], hop: int, broken: NodeId) -> None:
        """Tell the source its path broke at ``broken`` (hop ``hop``→``hop+1``)."""
        host = self._require_host()
        if hop == 0:
            self._handle_break(path[-1], broken)
            return
        prev = path[hop - 1]
        channels = self._neighbor_channels.get(prev)
        if not channels:
            return
        self.rerrs_sent += 1
        msg = {
            "t": "rerr",
            "s": int(host.node_id),
            "dest": int(path[-1]),
            "broken": int(broken),
            "path": wire.path_to_wire(path),
            "i": hop - 1,
        }
        host.transmit(prev, wire.encode(msg), channel=min(channels),
                      kind="control", size_bits=self.tuning.control_size_bits)

    def _on_rerr(self, msg: dict) -> None:
        host = self._require_host()
        path = wire.path_from_wire(msg["path"])
        i = int(msg["i"])
        if i >= len(path) or path[i] != host.node_id:
            return
        broken = NodeId(int(msg["broken"]))
        if i == 0:
            self._handle_break(NodeId(int(msg["dest"])), broken)
        else:
            # keep propagating toward the source
            prev = path[i - 1]
            channels = self._neighbor_channels.get(prev)
            if channels:
                out = dict(msg)
                out["s"] = int(host.node_id)
                out["i"] = i - 1
                host.transmit(prev, wire.encode(out), channel=min(channels),
                              kind="control",
                              size_bits=self.tuning.control_size_bits)
        if self.table is not None:
            self.table.invalidate_via(broken)

    def _handle_break(self, destination: NodeId, broken: NodeId) -> None:
        if self.table is not None:
            self.table.invalidate_via(broken)
        if self.ondemand and destination in self._pending:
            if destination not in self._retry_timers:
                self._send_rreq(destination)

    # --------------------------------------------------------------- inspection

    def route_summary(self) -> list[str]:
        """Table 2's 'routing table in VMN1' rendering."""
        with self._lock:
            if self.table is None or self.host is None:
                return []
            return self.table.summary(self.host.now())

    def route_count(self) -> int:
        """'# of Routing Entries' in Table 2."""
        with self._lock:
            if self.table is None or self.host is None:
                return 0
            return len(self.table.entries(self.host.now()))
