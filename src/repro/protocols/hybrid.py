"""The hybrid protocol under test in the paper's §6.1.

"... a hybrid MANET routing protocol developed by our group, which is
combining the periodic-broadcasting and on-demand mechanisms to achieve
high robustness for military applications."

Both mechanisms of :class:`~repro.protocols.common.PathRoutedProtocol`
are enabled and feed one routing table:

* the **periodic-broadcasting** half keeps nearby routes continuously
  fresh and detects link breakage fast (bidirectional HELLO verification
  — this is what makes the Table 2 routing-table transitions appear
  "in real time" without any traffic being sent);
* the **on-demand** half (RREQ/RREP/RERR) fills in routes the periodic
  exchange has not propagated yet, so the first data packet to a distant
  destination is buffered-then-delivered instead of dropped.

Robustness comes from the overlap: when mobility breaks a path, data in
flight triggers RERR + rediscovery *and* the next periodic broadcast
re-advertises a working path — whichever is faster wins.
"""

from __future__ import annotations

from typing import Optional

from .common import PathRoutedProtocol, ProtocolTuning

__all__ = ["HybridProtocol"]


class HybridProtocol(PathRoutedProtocol):
    """Periodic broadcasting + on-demand discovery, as in the paper."""

    name = "hybrid"

    def __init__(
        self,
        tuning: Optional[ProtocolTuning] = None,
        reply_from_cache: bool = True,
    ) -> None:
        super().__init__(
            proactive=True,
            ondemand=True,
            tuning=tuning,
            reply_from_cache=reply_from_cache,
        )
