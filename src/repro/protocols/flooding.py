"""Controlled flooding — the simplest routing baseline.

Every data packet is broadcast on every channel; receivers rebroadcast
unseen packets until the TTL runs out.  No routing state at all, so its
``route_summary`` is always empty — useful as a delivery-rate baseline
(floods get through whenever *any* path exists) and as the simplest
exercise of the host API.
"""

from __future__ import annotations

import dataclasses
import itertools
import threading
from typing import Optional

from ..core.ids import NodeId
from ..core.packet import Packet
from . import wire
from .base import RoutingProtocol

__all__ = ["FloodingProtocol"]


class FloodingProtocol(RoutingProtocol):
    """TTL-bounded flooding with duplicate suppression."""

    def __init__(self, ttl: int = 8, seen_limit: int = 65536) -> None:
        super().__init__()
        self.ttl = ttl
        self.seen_limit = seen_limit
        self._seen: dict[tuple[int, int], None] = {}  # insertion-ordered set
        self._next_id = itertools.count(1)
        self._lock = threading.Lock()
        self.delivered = 0
        self.relayed = 0
        self.malformed_received = 0

    def on_packet(self, packet: Packet) -> None:
        host = self._require_host()
        try:
            msg = wire.decode(packet.payload)
        # A well-behaved protocol ignores alien frames on a shared
        # channel — dropping here is the spec, not a swallowed error.
        except Exception:  # poem: ignore[POEM005]
            return
        if msg.get("t") != "flood":
            return
        try:
            key = (int(msg["src"]), int(msg["id"]))
            dst = int(msg["dst"])
            ttl = int(msg["ttl"])
            data = str(msg["data"])
        except (KeyError, TypeError, ValueError):
            self.malformed_received += 1
            return
        with self._lock:
            if key in self._seen:
                return
            self._remember(key)
        if dst == int(host.node_id):
            self.delivered += 1
            # Unwrap: the app sees its own payload and the flood's origin.
            host.deliver_to_app(
                dataclasses.replace(
                    packet,
                    payload=wire.decode_payload(data),
                    source=NodeId(key[0]),
                )
            )
            return
        ttl -= 1
        if ttl <= 0:
            return
        msg["ttl"] = ttl
        self.relayed += 1
        self._broadcast_everywhere(wire.encode(msg), packet.size_bits)

    def send_data(
        self, destination: NodeId, payload: bytes, size_bits: Optional[int] = None
    ) -> bool:
        host = self._require_host()
        with self._lock:
            flood_id = next(self._next_id)
            self._remember((int(host.node_id), flood_id))
        msg = {
            "t": "flood",
            "src": int(host.node_id),
            "dst": int(destination),
            "id": flood_id,
            "ttl": self.ttl,
            "data": wire.encode_payload(payload),
        }
        self._broadcast_everywhere(wire.encode(msg), size_bits)
        return True

    def _remember(self, key: tuple[int, int]) -> None:
        """Record a flood id, evicting the oldest beyond the cache limit."""
        self._seen[key] = None
        while len(self._seen) > self.seen_limit:
            self._seen.pop(next(iter(self._seen)))

    def _broadcast_everywhere(
        self, data: bytes, size_bits: Optional[int]
    ) -> None:
        host = self._require_host()
        for channel in sorted(host.channels()):
            host.broadcast(data, channel=channel, kind="data",
                           size_bits=size_bits)

    def route_summary(self) -> list[str]:
        return []  # flooding keeps no routes
