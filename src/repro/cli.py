"""Command-line interface: ``python -m repro <command>``.

The commands cover the operator workflows the paper's GUI served:

``run-scenario``
    Headless emulation run: build nodes from a JSON spec, drive the scene
    with a scenario script, record everything to SQLite.
``replay``
    Post-emulation replay of a recording — ASCII timeline to stdout
    and/or SVG frames to a directory.
``experiment``
    Regenerate one of the paper's tables/figures and print its rows.
``stats``
    Whole-run statistics report from a recording.
``export``
    Dump a recording as CSV or JSON-lines for external analysis.
``analyze``
    Post-emulation forensics report: per-packet lineage, clock-drift
    audit, anomaly detection — text, JSON, or a single-file HTML page.
    ``--flight PATH`` renders a crash flight-recorder artifact (the
    JSON a dying cluster dumps) instead of, or alongside, a recording.
``console``
    Interactive operator console on a fresh emulator.
``serve``
    Start the real-time TCP emulation server and wait for clients
    (``--profile-hz`` turns on the continuous sampling profiler).
``profile``
    Render a run's CPU profile: per-thread self-time summary,
    flamegraph.pl/speedscope collapsed stacks, or the raw JSON
    snapshot — from a recording's ``profile`` scene event or live from
    a deployment's ``GET /profile`` endpoint (``--live URL``).

Node-spec JSON (``run-scenario --nodes``)::

    [
      {"x": 0,   "y": 0, "label": "VMN1", "protocol": "hybrid",
       "radios": [{"channel": 1, "range": 200}]},
      {"x": 120, "y": 0, "label": "VMN2", "protocol": "hybrid",
       "radios": [{"channel": 1, "range": 200}, {"channel": 2, "range": 200}]}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from .core.geometry import Vec2
from .core.recording import SqliteRecorder
from .core.server import InProcessEmulator
from .errors import PoEmError
from .models.radio import Radio, RadioConfig
from .protocols.aodv import AodvProtocol
from .protocols.dsdv import DsdvProtocol
from .protocols.flooding import FloodingProtocol
from .protocols.hybrid import HybridProtocol

__all__ = ["main", "build_parser"]

PROTOCOLS = {
    "hybrid": HybridProtocol,
    "aodv": AodvProtocol,
    "dsdv": DsdvProtocol,
    "flooding": FloodingProtocol,
    "none": None,
}

EXPERIMENTS = (
    "table1", "table2", "fig2", "fig3", "fig5", "fig6", "fig10",
    "ablation", "scale", "sensitivity",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PoEm — portable real-time emulator for multi-radio MANETs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run-scenario", help="headless recorded emulation run")
    run.add_argument("scenario", help="scenario JSON file (timed scene ops)")
    run.add_argument("--nodes", required=True, help="node-spec JSON file")
    run.add_argument("--record", required=True, help="output SQLite path")
    run.add_argument("--until", type=float, required=True,
                     help="emulation end time (seconds)")
    run.add_argument("--seed", type=int, default=0)

    replay = sub.add_parser("replay", help="replay a recording")
    replay.add_argument("recording", help="SQLite recording path")
    replay.add_argument("--fps", type=float, default=2.0)
    replay.add_argument("--svg", help="directory to write SVG frames into")
    replay.add_argument("--width", type=int, default=72)
    replay.add_argument("--height", type=int, default=20)
    replay.add_argument("--summary-only", action="store_true")

    experiment = sub.add_parser(
        "experiment", help="regenerate a table/figure from the paper"
    )
    experiment.add_argument("name", choices=EXPERIMENTS)

    stats = sub.add_parser("stats", help="print a recording's statistics")
    stats.add_argument("recording", help="SQLite recording path")
    stats.add_argument("--top-flows", type=int, default=10)

    export = sub.add_parser(
        "export", help="export a recording for external analysis"
    )
    export.add_argument("recording", help="SQLite recording path")
    export.add_argument("--format", choices=("csv", "jsonl"), default="csv")
    export.add_argument("--out", required=True,
                        help="output file (csv: packets; a *_scene.csv "
                             "sibling is written too)")

    analyze = sub.add_parser(
        "analyze", help="post-emulation forensics report from a recording"
    )
    analyze.add_argument("recording", nargs="?",
                         help="SQLite recording path (optional when only "
                              "--flight is given)")
    analyze.add_argument("--flight", metavar="PATH",
                         help="render a crash flight-recorder JSON "
                              "artifact (the path a worker-crash "
                              "anomaly/ClusterError points at); combine "
                              "with a recording for the full report")
    analyze.add_argument("--format", choices=("text", "json", "html"),
                         default="text")
    analyze.add_argument("--out", help="write the report to a file "
                                       "instead of stdout")
    analyze.add_argument("--window", type=float, default=1.0,
                         help="aggregate/anomaly window width (seconds)")
    analyze.add_argument("--lag-budget", type=float, default=0.010,
                         help="scheduler-lag spike threshold (seconds)")
    analyze.add_argument("--drift-budget", type=float, default=0.010,
                         help="projected clock-stamp error budget (seconds)")
    analyze.add_argument("--lineage", type=int, default=1, metavar="N",
                         help="number of sample packet lineages to resolve")
    analyze.add_argument("--record-id", type=int, action="append",
                         dest="record_ids", metavar="ID",
                         help="resolve the lineage of this specific packet "
                              "record (repeatable; overrides --lineage)")
    analyze.add_argument("--timeline", metavar="OUT.json",
                         help="also export the recording as Chrome "
                              "trace-event JSON (load in Perfetto: "
                              "https://ui.perfetto.dev)")
    analyze.add_argument("--fail-degraded", action="store_true",
                         help="exit 3 unless the fidelity verdict is "
                              "'real-time' (CI gate on the validity "
                              "envelope)")

    console = sub.add_parser(
        "console", help="interactive operator console on a fresh emulator"
    )
    console.add_argument("--nodes", help="optional node-spec JSON file")
    console.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="start the real-time TCP server")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=0)
    serve.add_argument("--record", help="optional SQLite recording path")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument("--profile-hz", type=float, default=None,
                       help="run the continuous sampling profiler at "
                            "this rate (e.g. 97)")

    profile = sub.add_parser(
        "profile",
        help="render a run's CPU profile (collapsed stacks, per-thread "
             "self-time)",
    )
    profile.add_argument(
        "recording", nargs="?",
        help="SQLite recording path — reads the run's persisted "
             "'profile' scene event",
    )
    profile.add_argument(
        "--live", metavar="URL",
        help="fetch from a running deployment's obs endpoint instead "
             "(e.g. http://127.0.0.1:9100)",
    )
    profile.add_argument(
        "--seconds", type=float, default=None,
        help="with --live: sample a fresh N-second window first",
    )
    profile.add_argument(
        "--format", choices=("summary", "collapsed", "json"),
        default="summary",
        help="summary = per-thread self-time table; collapsed = "
             "flamegraph.pl / speedscope input; json = raw snapshot",
    )
    profile.add_argument("--out", help="write the profile to a file "
                                       "instead of stdout")

    lint = sub.add_parser(
        "lint",
        help="concurrency-correctness checks (POEM rules + lock-order "
             "runtime detector + whole-program deep analysis)",
        description="Static and runtime concurrency checks.",
        epilog="exit codes: 0 = clean, 1 = findings (or an unclean "
               "runtime/deep pass, or stale baseline entries), "
               "2 = usage error (bad --changed base, malformed "
               "baseline, unreadable path)",
    )
    lint.add_argument(
        "paths", nargs="*", default=None,
        help="files/directories to lint (default: the installed "
             "repro package source)",
    )
    lint.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="sarif = SARIF 2.1.0 for code-scanning upload",
    )
    lint.add_argument(
        "--runtime", action="store_true",
        help="also run a short instrumented virtual-transport emulation "
             "and report the lock-order graph (cycles = potential "
             "deadlocks)",
    )
    lint.add_argument(
        "--deep", action="store_true",
        help="whole-program interprocedural analysis: POEM008 static "
             "shared-state races, POEM009 static lock-order cycles "
             "(cross-checked against --runtime when both are given), "
             "POEM010 cluster-protocol drift; accepted findings live "
             "in the committed baseline",
    )
    lint.add_argument(
        "--baseline", metavar="PATH",
        help="baseline file for --deep (default: lint-baseline.json "
             "discovered upward from the first linted path)",
    )
    lint.add_argument(
        "--changed", nargs="?", const="HEAD", metavar="BASE",
        help="only report findings in files changed versus git BASE "
             "(default HEAD); the --deep model is still built over the "
             "full tree so interprocedural results stay sound",
    )
    lint.add_argument("--out", help="write the report to a file "
                                    "instead of stdout")

    return parser


def _load_nodes(emu: InProcessEmulator, path: str) -> None:
    specs = json.loads(Path(path).read_text())
    if not isinstance(specs, list):
        raise PoEmError("node spec must be a JSON list")
    for spec in specs:
        radios = RadioConfig.of(
            Radio(int(r["channel"]), float(r["range"]))
            for r in spec["radios"]
        )
        name = str(spec.get("protocol", "hybrid")).lower()
        if name not in PROTOCOLS:
            raise PoEmError(
                f"unknown protocol {name!r}; choose from {sorted(PROTOCOLS)}"
            )
        factory = PROTOCOLS[name]
        emu.add_node(
            Vec2(float(spec["x"]), float(spec["y"])),
            radios,
            label=str(spec.get("label", "")),
            protocol=factory() if factory else None,
        )


def _cmd_run_scenario(args: argparse.Namespace) -> int:
    from .scenario import Scenario

    recorder = SqliteRecorder(args.record)
    try:
        emu = InProcessEmulator(seed=args.seed, recorder=recorder)
        _load_nodes(emu, args.nodes)
        script = Scenario.from_json(Path(args.scenario).read_text())
        script.run(emu, until=args.until)
        # Clean-shutdown marker: lets `poem analyze` frame the run
        # without inferring its end from the last packet.
        emu.record_run_summary()
        packets = len(recorder.packets())
        events = len(recorder.scene_events())
        print(
            f"recorded {packets} packet rows and {events} scene events "
            f"to {args.record} ({args.until:.1f}s of emulation, "
            f"{len(emu.scene)} nodes)"
        )
    finally:
        recorder.close()
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .gui.svg import frame_to_svg
    from .gui.timeline import ReplayTimeline

    recorder = SqliteRecorder(args.recording)
    try:
        timeline = ReplayTimeline(
            recorder, fps=args.fps, width=args.width, height=args.height
        )
        print(timeline.summary())
        if not args.summary_only:
            for frame in timeline.iter_frames():
                print(frame)
        if args.svg:
            out = Path(args.svg)
            out.mkdir(parents=True, exist_ok=True)
            replay = timeline.replay
            step = 1.0 / args.fps
            t, i = replay.start_time, 0
            while t <= replay.end_time + 1e-12:
                (out / f"frame_{i:04d}.svg").write_text(
                    frame_to_svg(replay.frame_at(t))
                )
                t += step
                i += 1
            print(f"wrote {i} SVG frames to {out}/")
    finally:
        recorder.close()
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from .experiments import (  # noqa: F401 — dispatch table below
        ablation, fig2, fig3, fig5, fig6, fig10, scale, sensitivity,
        table1, table2,
    )

    name = args.name
    if name == "table1":
        print(table1.format_rows(table1.run_table1()))
    elif name == "table2":
        print(table2.format_table(table2.run_table2()))
    elif name == "fig2":
        print(fig2.format_rows(fig2.run_fig2()))
    elif name == "fig3":
        print(fig3.format_rows(fig3.run_fig3()))
    elif name == "fig5":
        print(fig5.format_rows(fig5.run_fig5()))
    elif name == "fig6":
        print(fig6.format_rows(fig6.run_fig6()))
    elif name == "fig10":
        print(fig10.format_result(fig10.run_fig10()))
    elif name == "ablation":
        print(ablation.format_rows(ablation.run_channel_mac_ablation()))
    elif name == "sensitivity":
        print(sensitivity.format_rows(sensitivity.run_sensitivity()))
    elif name == "scale":
        print(scale.format_node_rows(scale.run_node_scaling()))
        print()
        print(scale.format_cluster_rows(scale.run_cluster_scaling()))
        print()
        print(scale.format_sharded_rows(scale.run_sharded_scaling()))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from .stats.report import build_report, format_report

    recorder = SqliteRecorder(args.recording)
    try:
        print(format_report(build_report(recorder, top_flows=args.top_flows)))
    finally:
        recorder.close()
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from .stats.export import export_jsonl, export_packets_csv, export_scene_csv

    recorder = SqliteRecorder(args.recording)
    try:
        out = Path(args.out)
        if args.format == "jsonl":
            lines = export_jsonl(recorder, out)
            print(f"wrote {lines} JSON lines to {out}")
        else:
            n_packets = export_packets_csv(recorder, out)
            scene_path = out.with_name(out.stem + "_scene.csv")
            n_events = export_scene_csv(recorder, scene_path)
            print(f"wrote {n_packets} packet rows to {out} and "
                  f"{n_events} scene rows to {scene_path}")
    finally:
        recorder.close()
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    from .analysis import Thresholds, analyze
    from .analysis.report import render_html, render_json, render_text

    if args.recording is None and not args.flight:
        raise PoEmError(
            "analyze needs a recording path and/or --flight ARTIFACT"
        )
    if args.flight:
        from .obs.flightrec import format_flight, load_flight

        artifact = load_flight(args.flight)
        if args.format == "json":
            print(json.dumps(artifact, indent=2, sort_keys=True))
        else:
            print(format_flight(artifact))
        if args.recording is None:
            return 0
    thresholds = Thresholds(
        lag_budget=args.lag_budget,
        drift_budget=args.drift_budget,
        window=args.window,
    )
    report = analyze(
        args.recording,
        thresholds=thresholds,
        lineage_samples=max(args.lineage, 0),
        lineage_records=args.record_ids,
    )
    if args.format == "json":
        rendered = render_json(report)
    elif args.format == "html":
        rendered = render_html(report)
    else:
        rendered = render_text(report)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.format} report to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.timeline:
        from .obs.timeline import timeline_from_recorder, write_timeline

        recorder = SqliteRecorder(args.recording)
        try:
            path = write_timeline(
                args.timeline, timeline_from_recorder(recorder)
            )
        finally:
            recorder.close()
        print(f"wrote Perfetto timeline to {path} "
              "(load at https://ui.perfetto.dev)")
    if args.fail_degraded:
        verdict = report.fidelity.get("verdict", "real-time")
        if verdict != "real-time":
            print(f"fidelity verdict: {verdict} — failing as requested")
            return 3
    return 0


def _cmd_console(args: argparse.Namespace) -> int:
    from .gui.console import PoEmConsole

    emu = InProcessEmulator(seed=args.seed)
    if args.nodes:
        _load_nodes(emu, args.nodes)
    PoEmConsole(emu).cmdloop()
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .core.tcpserver import PoEmServer

    recorder = SqliteRecorder(args.record) if args.record else None
    server = PoEmServer(
        host=args.host, port=args.port, seed=args.seed, recorder=recorder,
        profile_hz=args.profile_hz,
    )
    host, port = server.start()
    print(f"PoEm server listening on {host}:{port} (Ctrl-C to stop)")
    stop = threading.Event()
    signal.signal(signal.SIGINT, lambda *_: stop.set())
    signal.signal(signal.SIGTERM, lambda *_: stop.set())
    try:
        stop.wait()
    finally:
        server.stop()
        if recorder is not None:
            recorder.close()
        print("server stopped")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """Render a CPU profile from a recording or a live deployment."""
    from .obs.profiler import format_profile

    if bool(args.recording) == bool(args.live):
        raise PoEmError(
            "profile needs exactly one source: a recording path or "
            "--live URL"
        )
    if args.live:
        import urllib.request

        url = args.live.rstrip("/") + "/profile?format=json"
        if args.seconds:
            url += f"&seconds={float(args.seconds)}"
        try:
            with urllib.request.urlopen(url, timeout=(
                float(args.seconds or 0) + 10.0
            )) as resp:
                snapshot = json.loads(resp.read().decode())
        except OSError as exc:
            raise PoEmError(f"cannot fetch {url}: {exc}") from exc
    else:
        if args.seconds:
            raise PoEmError("--seconds only applies to --live profiles")
        recorder = SqliteRecorder(args.recording)
        try:
            snapshots = [
                e.details for e in recorder.scene_events()
                if e.kind == "profile"
            ]
        finally:
            recorder.close()
        if not snapshots:
            raise PoEmError(
                f"{args.recording}: no 'profile' scene event — was the "
                "run profiled (profile_hz)?"
            )
        snapshot = snapshots[-1]  # the terminal (most complete) profile
    stacks = {
        str(k): int(v) for k, v in (snapshot.get("stacks") or {}).items()
    }
    if args.format == "json":
        rendered = json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
    elif args.format == "collapsed":
        rendered = "".join(
            f"{key} {count}\n"
            for key, count in sorted(
                stacks.items(), key=lambda kv: (-kv[1], kv[0])
            )
        )
    else:
        header = (
            f"role={snapshot.get('role', '?')} "
            f"hz={snapshot.get('hz', '?')} "
            f"samples={snapshot.get('samples', '?')} "
            f"paused={snapshot.get('paused', 0)}\n"
        )
        rendered = header + format_profile(stacks) + "\n"
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.format} profile to {args.out}")
    else:
        print(rendered, end="")
    return 0


def _changed_files(base: str) -> "set[Path]":
    """Python files changed versus git ``base`` (usage error -> None)."""
    import subprocess

    proc = subprocess.run(
        ["git", "diff", "--name-only", base, "--", "*.py"],
        capture_output=True,
        text=True,
        cwd=str(Path(__file__).resolve().parent),
    )
    if proc.returncode != 0:
        raise _LintUsageError(
            f"--changed: git diff against {base!r} failed: "
            f"{proc.stderr.strip() or 'not a git checkout?'}"
        )
    toplevel = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        capture_output=True,
        text=True,
        cwd=str(Path(__file__).resolve().parent),
    ).stdout.strip()
    root = Path(toplevel) if toplevel else Path.cwd()
    return {
        (root / line).resolve()
        for line in proc.stdout.splitlines()
        if line.strip()
    }


class _LintUsageError(Exception):
    """A ``poem lint`` invocation problem (exit code 2, not 1)."""


def _cmd_lint(args: argparse.Namespace) -> int:
    """Exit 0 on a clean tree, 1 on findings, 2 on a usage error."""
    from .lint import (
        lint_paths,
        render_json,
        render_sarif,
        render_text,
        run_deep,
        run_runtime_check,
    )

    try:
        paths = list(args.paths) if args.paths else [
            str(Path(__file__).resolve().parent)
        ]
        changed: Optional[set] = None
        if args.changed is not None:
            changed = _changed_files(args.changed)
        findings, checked = lint_paths(paths)
        runtime = None
        runtime_report = None
        if args.runtime:
            runtime_report = run_runtime_check()
            runtime = runtime_report.as_dict()
        deep = None
        if args.deep:
            runtime_edges = None
            if runtime_report is not None:
                runtime_edges = sorted(runtime_report.graph.edges())
            baseline = Path(args.baseline) if args.baseline else None
            try:
                result = run_deep(
                    paths, baseline=baseline, runtime_edges=runtime_edges
                )
            except (ValueError, OSError) as exc:
                raise _LintUsageError(str(exc)) from exc
            findings = findings + [f for f, _ in result.findings]
            deep = result.as_dict()
        if changed is not None:
            findings = [
                f for f in findings if Path(f.path).resolve() in changed
            ]
        findings.sort(key=lambda f: (f.path, f.line, f.rule))
    except _LintUsageError as exc:
        print(f"usage error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        rendered = render_json(findings, checked, runtime, deep)
    elif args.format == "sarif":
        rendered = render_sarif(
            findings, src_root=Path(__file__).resolve().parent.parent
        )
    else:
        rendered = render_text(findings, checked, runtime, deep)
    if args.out:
        Path(args.out).write_text(rendered)
        print(f"wrote {args.format} lint report to {args.out}")
    else:
        print(rendered, end="" if rendered.endswith("\n") else "\n")
    # `findings` already folds in the deep pass's actionable findings
    # (filtered by --changed when given); stale baseline entries fail
    # the gate regardless so the baseline cannot rot.
    clean = (
        not findings
        and (runtime is None or runtime.get("clean", False))
        and (deep is None or not deep.get("stale_baseline_entries"))
    )
    return 0 if clean else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run-scenario": _cmd_run_scenario,
        "replay": _cmd_replay,
        "experiment": _cmd_experiment,
        "stats": _cmd_stats,
        "export": _cmd_export,
        "analyze": _cmd_analyze,
        "console": _cmd_console,
        "serve": _cmd_serve,
        "profile": _cmd_profile,
        "lint": _cmd_lint,
    }
    try:
        return handlers[args.command](args)
    except PoEmError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
