"""Mobility models (paper §4.3.1).

The paper generalizes VMN mobility as a 4-tuple

    ``<pause_time, direction, move_speed, move_time>``

where each component is either a constant or a random draw from a range.
Successive *legs* are generated from the tuple; during a leg the node first
pauses, then moves with

    ``x(t + Δt) = x(t) + v · t_move · cos θ``
    ``y(t + Δt) = y(t) + v · t_move · sin θ``

Choosing the components appropriately recovers the classic 2-D entity
models of Camp et al. [11]: e.g. the Random Walk model is
``pause_time = 0``, ``direction ~ U[0°, 360°)``,
``speed ~ U[minspeed, maxspeed]``, ``move_time = time_step``.

This module implements the generalized model plus the named
specializations, a :class:`Trajectory` that evaluates position at any
emulation time (piecewise-linear, cached leg-by-leg), and boundary
policies (reflect / wrap / clamp) for bounded emulation areas.

All randomness flows through an explicit ``numpy.random.Generator`` so
scenes are reproducible from a seed — the reproducibility the paper's
"drift of random number generator" error analysis (§6.2) wishes it had.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from ..core.geometry import Vec2
from ..errors import ConfigurationError

__all__ = [
    "Param",
    "Constant",
    "Uniform",
    "Choice",
    "MobilityLeg",
    "MobilityModel",
    "GeneralizedMobility",
    "RandomWalk",
    "RandomWaypoint",
    "ConstantVelocity",
    "Stationary",
    "Bounds",
    "Trajectory",
]


# ---------------------------------------------------------------------------
# Parameter specifications: "constant or variation range" (paper's words).
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Constant:
    """A parameter fixed to one value."""

    value: float

    def sample(self, rng: np.random.Generator) -> float:
        return self.value


@dataclass(frozen=True, slots=True)
class Uniform:
    """A parameter drawn uniformly from ``[low, high]``."""

    low: float
    high: float

    def __post_init__(self) -> None:
        if self.high < self.low:
            raise ConfigurationError(
                f"uniform range inverted: [{self.low}, {self.high}]"
            )

    def sample(self, rng: np.random.Generator) -> float:
        if self.high == self.low:
            return self.low
        return float(rng.uniform(self.low, self.high))


@dataclass(frozen=True, slots=True)
class Choice:
    """A parameter drawn uniformly from a finite set of values."""

    values: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.values:
            raise ConfigurationError("Choice needs at least one value")

    def sample(self, rng: np.random.Generator) -> float:
        return float(self.values[int(rng.integers(len(self.values)))])


Param = Union[Constant, Uniform, Choice]


def _as_param(value: Union[Param, float, int]) -> Param:
    """Coerce bare numbers to :class:`Constant` for ergonomic configs."""
    if isinstance(value, (Constant, Uniform, Choice)):
        return value
    return Constant(float(value))


# ---------------------------------------------------------------------------
# Legs and models.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class MobilityLeg:
    """One realized step of the 4-tuple: pause, then move.

    ``direction`` is degrees CCW from +x; ``speed`` in units/s;
    ``move_time`` in seconds.
    """

    pause_time: float
    direction: float
    speed: float
    move_time: float

    @property
    def duration(self) -> float:
        return self.pause_time + self.move_time

    def displacement(self) -> Vec2:
        """Total displacement of the leg (paper's update formula)."""
        return Vec2.from_polar(self.speed * self.move_time, self.direction)

    def position_at(self, start: Vec2, elapsed: float) -> Vec2:
        """Position ``elapsed`` seconds into the leg, starting from ``start``."""
        if elapsed <= self.pause_time:
            return start
        moving = min(elapsed - self.pause_time, self.move_time)
        return start + Vec2.from_polar(self.speed * moving, self.direction)


class MobilityModel:
    """Generator of successive :class:`MobilityLeg` values."""

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        """Draw the next leg; ``position`` lets waypoint models aim."""
        raise NotImplementedError


class GeneralizedMobility(MobilityModel):
    """The paper's 4-tuple model with constant-or-random components."""

    def __init__(
        self,
        pause_time: Union[Param, float] = 0.0,
        direction: Union[Param, float] = Uniform(0.0, 360.0),
        move_speed: Union[Param, float] = Constant(1.0),
        move_time: Union[Param, float] = Constant(1.0),
    ) -> None:
        self.pause_time = _as_param(pause_time)
        self.direction = _as_param(direction)
        self.move_speed = _as_param(move_speed)
        self.move_time = _as_param(move_time)
        self._validate()

    def _validate(self) -> None:
        for name, p in (
            ("pause_time", self.pause_time),
            ("move_speed", self.move_speed),
            ("move_time", self.move_time),
        ):
            low = p.value if isinstance(p, Constant) else (
                p.low if isinstance(p, Uniform) else min(p.values)
            )
            if low < 0:
                raise ConfigurationError(f"{name} must be non-negative (min {low})")

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        leg = MobilityLeg(
            pause_time=self.pause_time.sample(rng),
            direction=self.direction.sample(rng),
            speed=self.move_speed.sample(rng),
            move_time=self.move_time.sample(rng),
        )
        if leg.duration <= 0:
            # A zero-duration leg would stall trajectory evaluation; treat
            # it as a one-second dwell (a stationary model should use
            # Stationary, which does this intentionally).
            return MobilityLeg(1.0, leg.direction, 0.0, 0.0)
        return leg


class RandomWalk(GeneralizedMobility):
    """Random Walk: the paper's worked specialization of the 4-tuple.

    ``pause_time = 0``, ``direction ~ U[0, 360)``,
    ``speed ~ U[min_speed, max_speed]``, ``move_time = time_step``.
    """

    def __init__(
        self, min_speed: float, max_speed: float, time_step: float = 1.0
    ) -> None:
        super().__init__(
            pause_time=Constant(0.0),
            direction=Uniform(0.0, 360.0),
            move_speed=Uniform(min_speed, max_speed),
            move_time=Constant(time_step),
        )


class RandomWaypoint(MobilityModel):
    """Random Waypoint over a rectangular area.

    Picks a uniform destination in the area, travels straight at a uniform
    random speed, pauses, repeats — expressed as 4-tuple legs whose
    direction/move_time are derived from the chosen waypoint, showing the
    generalized model "practically diverges to different 2-D entity
    mobility models" as the paper claims.
    """

    def __init__(
        self,
        area: "Bounds",
        min_speed: float,
        max_speed: float,
        pause_time: Union[Param, float] = 0.0,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ConfigurationError(
                f"need 0 < min_speed <= max_speed, got [{min_speed}, {max_speed}]"
            )
        self.area = area
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = _as_param(pause_time)

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        target = Vec2(
            float(rng.uniform(self.area.x_min, self.area.x_max)),
            float(rng.uniform(self.area.y_min, self.area.y_max)),
        )
        delta = target - position
        dist = delta.norm()
        speed = float(rng.uniform(self.min_speed, self.max_speed))
        if dist == 0.0:
            return MobilityLeg(max(self.pause_time.sample(rng), 1e-9), 0.0, 0.0, 0.0)
        direction = math.degrees(math.atan2(delta.y, delta.x)) % 360.0
        return MobilityLeg(
            pause_time=self.pause_time.sample(rng),
            direction=direction,
            speed=speed,
            move_time=dist / speed,
        )


class ConstantVelocity(MobilityModel):
    """Straight-line motion — the Fig 9 relay (10 units/s "downwards").

    The experiment scenario uses this with ``direction=270`` (screen-down
    in the standard CCW-from-+x convention).
    """

    def __init__(self, speed: float, direction: float, leg_time: float = 1.0) -> None:
        if speed < 0:
            raise ConfigurationError(f"speed must be non-negative: {speed}")
        if leg_time <= 0:
            raise ConfigurationError(f"leg_time must be positive: {leg_time}")
        self.speed = speed
        self.direction = direction % 360.0
        self.leg_time = leg_time

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        return MobilityLeg(0.0, self.direction, self.speed, self.leg_time)


class Stationary(MobilityModel):
    """A node that never moves (infinite dwell expressed as long pauses)."""

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        return MobilityLeg(pause_time=3600.0, direction=0.0, speed=0.0, move_time=0.0)


# ---------------------------------------------------------------------------
# Bounded areas and trajectories.
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Bounds:
    """A rectangular emulation area with a boundary policy.

    ``policy`` is one of ``"reflect"`` (bounce off walls, preserving leg
    timing), ``"clamp"`` (stick to the wall), or ``"wrap"`` (torus).
    """

    x_min: float
    y_min: float
    x_max: float
    y_max: float
    policy: str = "reflect"

    def __post_init__(self) -> None:
        if self.x_max <= self.x_min or self.y_max <= self.y_min:
            raise ConfigurationError("degenerate bounds")
        if self.policy not in ("reflect", "clamp", "wrap"):
            raise ConfigurationError(f"unknown boundary policy: {self.policy}")

    @property
    def width(self) -> float:
        return self.x_max - self.x_min

    @property
    def height(self) -> float:
        return self.y_max - self.y_min

    def contains(self, p: Vec2) -> bool:
        return (
            self.x_min <= p.x <= self.x_max and self.y_min <= p.y <= self.y_max
        )

    def apply(self, p: Vec2) -> Vec2:
        """Map an out-of-area point back inside per the policy."""
        if self.contains(p):
            return p
        if self.policy == "clamp":
            return Vec2(
                min(max(p.x, self.x_min), self.x_max),
                min(max(p.y, self.y_min), self.y_max),
            )
        if self.policy == "wrap":
            return Vec2(
                self.x_min + (p.x - self.x_min) % self.width,
                self.y_min + (p.y - self.y_min) % self.height,
            )
        return Vec2(
            _reflect(p.x, self.x_min, self.x_max),
            _reflect(p.y, self.y_min, self.y_max),
        )


def _reflect(v: float, lo: float, hi: float) -> float:
    """Fold ``v`` into ``[lo, hi]`` by mirror reflection at the walls."""
    span = hi - lo
    # Map into a 2*span sawtooth, then mirror the upper half.
    t = (v - lo) % (2.0 * span)
    return lo + (t if t <= span else 2.0 * span - t)


class Trajectory:
    """Lazily evaluated piecewise trajectory of one node.

    Legs are drawn from the model on demand and memoized, so evaluating
    ``position_at(t)`` for increasing ``t`` is amortized O(1) and two
    evaluations at the same time always agree (determinism for replay).
    """

    def __init__(
        self,
        start: Vec2,
        model: MobilityModel,
        rng: np.random.Generator,
        bounds: Optional[Bounds] = None,
        t0: float = 0.0,
    ) -> None:
        self.model = model
        self.bounds = bounds
        self._rng = rng
        self._t0 = t0
        # Memoized legs: (leg_start_time, start_position, leg).
        self._legs: list[tuple[float, Vec2, MobilityLeg]] = []
        self._horizon = t0
        self._next_start = self._constrain(start)

    def _constrain(self, p: Vec2) -> Vec2:
        return self.bounds.apply(p) if self.bounds is not None else p

    def _extend_to(self, t: float) -> None:
        while self._horizon <= t:
            leg = self.model.next_leg(self._rng, self._next_start)
            if leg.duration <= 0:
                raise ConfigurationError(
                    f"mobility model {type(self.model).__name__} produced a "
                    "zero-duration leg"
                )
            self._legs.append((self._horizon, self._next_start, leg))
            end = self._constrain(leg.position_at(self._next_start, leg.duration))
            self._horizon += leg.duration
            self._next_start = end

    def position_at(self, t: float) -> Vec2:
        """Node position at emulation time ``t`` (>= trajectory start)."""
        if t < self._t0:
            raise ConfigurationError(
                f"time {t} precedes trajectory start {self._t0}"
            )
        self._extend_to(t)
        # Binary search over memoized legs.
        lo, hi = 0, len(self._legs) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._legs[mid][0] <= t:
                lo = mid
            else:
                hi = mid - 1
        leg_start, start_pos, leg = self._legs[lo]
        return self._constrain(leg.position_at(start_pos, t - leg_start))

    def sample(self, t_start: float, t_end: float, step: float) -> list[Vec2]:
        """Positions at ``t_start, t_start+step, …, <= t_end`` (inclusive)."""
        if step <= 0:
            raise ConfigurationError(f"step must be positive: {step}")
        times = np.arange(t_start, t_end + step * 1e-9, step)
        return [self.position_at(float(t)) for t in times]
