"""Group mobility and richer entity models — §7 future work, implemented.

"Sophisticated underlying models such as ... group mobility also need be
added into our system."  The models here come from the same survey the
paper cites for its mobility section (Camp, Boleng & Davies [11]):

:class:`ReferencePointGroupModel` (RPGM)
    A group's *reference point* follows any entity mobility model; each
    member holds a logical offset from it plus a bounded random local
    deviation.  The classic model for platoons/convoys — the military
    scenario the paper's hybrid protocol targets.  Members are trajectory
    objects (:meth:`ReferencePointGroupModel.member`) attached to nodes
    via :meth:`Scene.set_trajectory`.

:class:`GaussMarkovMobility`
    Velocity with memory: speed and direction follow first-order
    autoregressive processes (``x' = αx + (1−α)μ + σ√(1−α²)·N(0,1)``),
    removing the sharp turns of the memoryless models.  ``α = 0``
    degenerates to a random walk, ``α = 1`` to linear motion.

:class:`RandomDirectionMobility`
    Pick a uniform direction, travel until the area boundary, pause,
    repeat — avoiding the Random Waypoint's well-known center-density
    bias.

Gauss-Markov and Random Direction are stateful per-node models (one
instance per node); RPGM is shared per group by construction.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..core.geometry import Vec2
from ..errors import ConfigurationError
from .mobility import Bounds, MobilityLeg, MobilityModel, Trajectory

__all__ = [
    "ReferencePointGroupModel",
    "GroupMemberTrajectory",
    "GaussMarkovMobility",
    "RandomDirectionMobility",
]


class ReferencePointGroupModel:
    """RPGM: one reference trajectory, many offset members."""

    def __init__(
        self,
        start: Vec2,
        reference_model: MobilityModel,
        *,
        bounds: Optional[Bounds] = None,
        deviation: float = 5.0,
        deviation_period: float = 2.0,
        seed: int = 0,
        t0: float = 0.0,
    ) -> None:
        if deviation < 0 or deviation_period <= 0:
            raise ConfigurationError(
                "deviation must be >= 0 and deviation_period > 0"
            )
        self.bounds = bounds
        self.deviation = deviation
        self.deviation_period = deviation_period
        self._rng = np.random.default_rng(seed)
        self.reference = Trajectory(
            start, reference_model, self._rng, bounds=bounds, t0=t0
        )
        self._members = 0

    def member(self, offset: Vec2) -> "GroupMemberTrajectory":
        """Create one member trajectory at logical ``offset`` from the
        reference point."""
        self._members += 1
        return GroupMemberTrajectory(
            self, offset, seed=int(self._rng.integers(2**31))
        )

    @property
    def member_count(self) -> int:
        return self._members


class GroupMemberTrajectory:
    """One RPGM member: reference + offset + smooth random deviation.

    The deviation is a piecewise-linear wobble: every
    ``deviation_period`` seconds a fresh uniform point in the deviation
    disc is drawn, and the wobble interpolates between consecutive draws.
    Deterministic: draws are memoized per period index, so
    ``position_at`` is a pure function of ``t``.
    """

    def __init__(
        self, group: ReferencePointGroupModel, offset: Vec2, seed: int
    ) -> None:
        self.group = group
        self.offset = offset
        self._rng = np.random.default_rng(seed)
        self._anchors: list[Vec2] = []

    def _anchor(self, index: int) -> Vec2:
        while len(self._anchors) <= index:
            if self.group.deviation == 0.0:
                self._anchors.append(Vec2(0.0, 0.0))
                continue
            r = self.group.deviation * math.sqrt(self._rng.random())
            theta = self._rng.random() * 2 * math.pi
            self._anchors.append(Vec2(r * math.cos(theta),
                                      r * math.sin(theta)))
        return self._anchors[index]

    def _deviation_at(self, t: float) -> Vec2:
        period = self.group.deviation_period
        k = int(t // period)
        frac = (t - k * period) / period
        a, b = self._anchor(k), self._anchor(k + 1)
        return Vec2(a.x + (b.x - a.x) * frac, a.y + (b.y - a.y) * frac)

    def position_at(self, t: float) -> Vec2:
        ref = self.group.reference.position_at(t)
        raw = ref + self.offset + self._deviation_at(max(t, 0.0))
        if self.group.bounds is not None:
            return self.group.bounds.apply(raw)
        return raw


class GaussMarkovMobility(MobilityModel):
    """Gauss-Markov: temporally correlated speed and direction.

    One instance per node (the model carries velocity state).
    """

    def __init__(
        self,
        mean_speed: float,
        *,
        alpha: float = 0.75,
        speed_sigma: float = 1.0,
        direction_sigma_deg: float = 30.0,
        time_step: float = 1.0,
        mean_direction_deg: Optional[float] = None,
    ) -> None:
        if not 0.0 <= alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in [0,1]: {alpha}")
        if mean_speed < 0 or speed_sigma < 0 or direction_sigma_deg < 0:
            raise ConfigurationError("speeds/sigmas must be non-negative")
        if time_step <= 0:
            raise ConfigurationError(f"time_step must be positive: {time_step}")
        self.mean_speed = mean_speed
        self.alpha = alpha
        self.speed_sigma = speed_sigma
        self.direction_sigma = math.radians(direction_sigma_deg)
        self.time_step = time_step
        self.mean_direction = (
            None if mean_direction_deg is None
            else math.radians(mean_direction_deg)
        )
        self._speed: Optional[float] = None
        self._direction: Optional[float] = None

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        if self._speed is None:
            self._speed = self.mean_speed
            self._direction = (
                float(rng.uniform(0, 2 * math.pi))
                if self.mean_direction is None
                else self.mean_direction
            )
        a = self.alpha
        noise_scale = math.sqrt(max(1.0 - a * a, 0.0))
        self._speed = max(
            a * self._speed
            + (1 - a) * self.mean_speed
            + noise_scale * self.speed_sigma * float(rng.standard_normal()),
            0.0,
        )
        mean_dir = (
            self._direction if self.mean_direction is None
            else self.mean_direction
        )
        self._direction = (
            a * self._direction
            + (1 - a) * mean_dir
            + noise_scale * self.direction_sigma * float(rng.standard_normal())
        )
        return MobilityLeg(
            pause_time=0.0,
            direction=math.degrees(self._direction) % 360.0,
            speed=self._speed,
            move_time=self.time_step,
        )


class RandomDirectionMobility(MobilityModel):
    """Random Direction: travel boundary-to-boundary, pause, turn.

    Requires the area up front (legs aim at its walls).  Avoids Random
    Waypoint's density bias toward the center [11].
    """

    def __init__(
        self,
        area: Bounds,
        min_speed: float,
        max_speed: float,
        pause_time: float = 1.0,
    ) -> None:
        if min_speed <= 0 or max_speed < min_speed:
            raise ConfigurationError(
                f"need 0 < min_speed <= max_speed: [{min_speed}, {max_speed}]"
            )
        if pause_time < 0:
            raise ConfigurationError("pause_time must be non-negative")
        self.area = area
        self.min_speed = min_speed
        self.max_speed = max_speed
        self.pause_time = pause_time

    def _distance_to_wall(self, position: Vec2, direction_rad: float) -> float:
        """Ray-cast from ``position`` to the area boundary."""
        dx, dy = math.cos(direction_rad), math.sin(direction_rad)
        candidates = []
        if dx > 1e-12:
            candidates.append((self.area.x_max - position.x) / dx)
        elif dx < -1e-12:
            candidates.append((self.area.x_min - position.x) / dx)
        if dy > 1e-12:
            candidates.append((self.area.y_max - position.y) / dy)
        elif dy < -1e-12:
            candidates.append((self.area.y_min - position.y) / dy)
        dists = [c for c in candidates if c > 1e-9]
        return min(dists) if dists else 0.0

    def next_leg(self, rng: np.random.Generator, position: Vec2) -> MobilityLeg:
        direction = float(rng.uniform(0, 2 * math.pi))
        distance = self._distance_to_wall(position, direction)
        if distance <= 1e-9:
            # On a wall pointing outward: just pause and redraw next leg.
            return MobilityLeg(max(self.pause_time, 0.1), 0.0, 0.0, 0.0)
        speed = float(rng.uniform(self.min_speed, self.max_speed))
        return MobilityLeg(
            pause_time=self.pause_time,
            direction=math.degrees(direction) % 360.0,
            speed=speed,
            move_time=distance / speed,
        )
