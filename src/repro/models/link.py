"""Link models: packet loss, bandwidth, and delay (paper §4.3.2).

A link is "normally modeled as three parameters: packet loss, bandwidth,
and delay" [5].  PoEm's revisions, all GUI-configurable (here:
constructor-configurable):

**Packet loss** — piecewise linear in distance ``r`` from the sender
(derived from [6])::

    P(r) = P0                      for r <= D0
    P(r) = Kp * (r - D0) + P0      for r >  D0,   Kp = (P1 - P0) / (R - D0)

so loss ramps from the floor ``P0`` at distance ``D0`` up to ``P1`` at the
radio range ``R``.  Setting ``P1 == P0`` recovers the constant model.

**Bandwidth** — Gaussian in distance (distinct from [5]'s discrete steps)::

    B(r) = M * exp(-Kb * r²),      Kb = (ln M - ln m) / R²

so ``B(0) = M`` (peak) and ``B(R) = m`` (edge).  ``m == M`` recovers the
constant model.

**Delay** — the propagation/processing component added on top of the
serialization time ``size / bandwidth`` in the forward-time formula (§3.2
Step 3)::

    t_forward = t_receipt + delay + packet_size / bandwidth

Units: distances in the paper's abstract "(unit)", bandwidth in bits/s,
delay in seconds, sizes in bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from ..errors import ConfigurationError

__all__ = [
    "PacketLossModel",
    "BandwidthModel",
    "DelayModel",
    "LinkModel",
    "DEFAULT_LINK",
]


@dataclass(frozen=True, slots=True)
class PacketLossModel:
    """Piecewise-linear loss probability vs distance.

    Parameters mirror the paper exactly: ``p0`` (floor), ``p1`` (value at
    range), ``d0`` (knee distance), ``radio_range`` (``R``).  Table 3 uses
    ``P0=0.1, P1=0.9, D0=50, R=200``.
    """

    p0: float = 0.0
    p1: float = 0.0
    d0: float = 0.0
    radio_range: float = 1.0

    def __post_init__(self) -> None:
        for name, v in (("p0", self.p0), ("p1", self.p1)):
            if not 0.0 <= v <= 1.0:
                raise ConfigurationError(f"{name} must be in [0,1], got {v}")
        if self.p1 < self.p0:
            raise ConfigurationError(
                f"p1 ({self.p1}) must be >= p0 ({self.p0}): loss cannot "
                "decrease with distance"
            )
        if self.d0 < 0:
            raise ConfigurationError(f"d0 must be non-negative, got {self.d0}")
        if self.radio_range <= 0:
            raise ConfigurationError(
                f"radio_range must be positive, got {self.radio_range}"
            )
        if self.d0 > self.radio_range and self.p1 != self.p0:
            raise ConfigurationError(
                f"d0 ({self.d0}) beyond radio_range ({self.radio_range}) "
                "leaves no ramp region"
            )

    @property
    def is_constant(self) -> bool:
        """The paper's constant special case, ``P1 == P0``."""
        return self.p1 == self.p0

    @property
    def kp(self) -> float:
        """Ramp slope ``Kp = (P1 - P0) / (R - D0)`` (0 for constant model)."""
        if self.is_constant:
            return 0.0
        return (self.p1 - self.p0) / (self.radio_range - self.d0)

    def loss_probability(self, r: float) -> float:
        """Loss probability at distance ``r``, clamped to ``[p0, p1]``.

        The clamp at ``p1`` covers ``r`` slightly beyond ``R`` (a packet
        already in flight when its receiver drifted just out of range).
        """
        if r < 0:
            raise ConfigurationError(f"distance must be non-negative: {r}")
        if r <= self.d0:
            return self.p0
        return min(self.p0 + self.kp * (r - self.d0), self.p1)

    def loss_probability_array(self, r: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`loss_probability` for analysis/benchmarks."""
        r = np.asarray(r, dtype=float)
        return np.clip(self.p0 + self.kp * np.maximum(r - self.d0, 0.0),
                       self.p0, self.p1)

    def should_drop(self, rng: np.random.Generator, r: float) -> bool:
        """Bernoulli drop decision at distance ``r``."""
        p = self.loss_probability(r)
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(rng.random() < p)

    def should_drop_many(
        self, rng: np.random.Generator, r: np.ndarray
    ) -> np.ndarray:
        """Vectorized Bernoulli drop decisions: one RNG call for a whole
        broadcast fan-out (the §3.2 Step 3 hot loop, batched).

        Stream compatibility with the scalar path: no random numbers are
        consumed when every probability is degenerate (all ≤ 0 or all
        ≥ 1) — exactly like :meth:`should_drop`, which skips the draw for
        degenerate ``p``.  In the mixed regime one ``rng.random(n)`` call
        consumes the same underlying stream as ``n`` scalar draws, and
        degenerate elements are forced to their deterministic outcome.
        """
        r = np.asarray(r, dtype=float)
        n = r.shape[0]
        if n == 0:
            return np.zeros(0, dtype=bool)
        p = self.loss_probability_array(r)
        if p.max() <= 0.0:
            return np.zeros(n, dtype=bool)
        if p.min() >= 1.0:
            return np.ones(n, dtype=bool)
        draws = rng.random(n)
        out = draws < p
        # Degenerate elements keep their deterministic scalar outcome.
        out[p <= 0.0] = False
        out[p >= 1.0] = True
        return out


@dataclass(frozen=True, slots=True)
class BandwidthModel:
    """Gaussian bandwidth-vs-distance: ``B(r) = M exp(-Kb r²)``.

    ``peak`` is ``M`` (bits/s at distance 0), ``edge`` is ``m`` (bits/s at
    the radio range ``R``).  ``edge == peak`` recovers the constant model.
    """

    peak: float
    edge: Optional[float] = None
    radio_range: float = 1.0

    def __post_init__(self) -> None:
        if self.peak <= 0:
            raise ConfigurationError(f"peak bandwidth must be positive: {self.peak}")
        edge = self.peak if self.edge is None else self.edge
        object.__setattr__(self, "edge", edge)
        if edge <= 0:
            raise ConfigurationError(f"edge bandwidth must be positive: {edge}")
        if edge > self.peak:
            raise ConfigurationError(
                f"edge bandwidth ({edge}) cannot exceed peak ({self.peak})"
            )
        if self.radio_range <= 0:
            raise ConfigurationError(
                f"radio_range must be positive: {self.radio_range}"
            )

    @property
    def is_constant(self) -> bool:
        return self.edge == self.peak

    @property
    def kb(self) -> float:
        """``Kb = (ln M - ln m) / R²`` (0 for the constant model)."""
        if self.is_constant:
            return 0.0
        return (math.log(self.peak) - math.log(self.edge)) / (
            self.radio_range**2
        )

    def bandwidth(self, r: float) -> float:
        """Bandwidth in bits/s at distance ``r`` (never below ``edge``)."""
        if r < 0:
            raise ConfigurationError(f"distance must be non-negative: {r}")
        if self.is_constant:
            return self.peak
        return max(self.peak * math.exp(-self.kb * r * r), self.edge)

    def bandwidth_array(self, r: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`bandwidth`."""
        r = np.asarray(r, dtype=float)
        if self.is_constant:
            return np.full_like(r, self.peak)
        return np.maximum(self.peak * np.exp(-self.kb * r * r), self.edge)

    def serialization_time(self, size_bits: int, r: float) -> float:
        """``packet_size / bandwidth`` at distance ``r`` (seconds)."""
        return size_bits / self.bandwidth(r)

    def serialization_time_array(
        self, size_bits: int, r: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`serialization_time` over many distances."""
        return size_bits / self.bandwidth_array(r)


@dataclass(frozen=True, slots=True)
class DelayModel:
    """Fixed plus distance-proportional delay (seconds).

    ``delay(r) = base + per_unit * r``.  The paper treats delay as one
    configurable parameter; the optional distance term lets larger scenes
    model propagation without a separate model class.
    """

    base: float = 0.0
    per_unit: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_unit < 0:
            raise ConfigurationError("delay components must be non-negative")

    def delay(self, r: float) -> float:
        if r < 0:
            raise ConfigurationError(f"distance must be non-negative: {r}")
        return self.base + self.per_unit * r

    def delay_array(self, r: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`delay`."""
        r = np.asarray(r, dtype=float)
        if self.per_unit == 0.0:
            return np.full_like(r, self.base)
        return self.base + self.per_unit * r


@dataclass(frozen=True, slots=True)
class LinkModel:
    """The full per-link model bundle used by the forwarding engine.

    One :class:`LinkModel` is attached per radio (so different channels can
    have different characteristics, e.g. a long-range low-rate radio plus a
    short-range high-rate one — the multi-radio motivation [12]).
    """

    loss: PacketLossModel = field(default_factory=PacketLossModel)
    bandwidth: BandwidthModel = field(
        default_factory=lambda: BandwidthModel(peak=11e6)
    )
    delay: DelayModel = field(default_factory=DelayModel)

    def forward_time(self, t_receipt: float, size_bits: int, r: float) -> float:
        """§3.2 Step 3: ``t_forward = t_receipt + delay + size/bandwidth``."""
        return (
            t_receipt
            + self.delay.delay(r)
            + self.bandwidth.serialization_time(size_bits, r)
        )

    def forward_time_many(
        self, t_receipt: float, size_bits: int, r: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`forward_time` over a broadcast fan-out.

        One numpy expression replaces N scalar delay/bandwidth
        evaluations — the batched half of §3.2 Step 3.
        """
        r = np.asarray(r, dtype=float)
        return (
            t_receipt
            + self.delay.delay_array(r)
            + self.bandwidth.serialization_time_array(size_bits, r)
        )

    def should_drop(self, rng: np.random.Generator, r: float) -> bool:
        return self.loss.should_drop(rng, r)

    def should_drop_many(
        self, rng: np.random.Generator, r: np.ndarray
    ) -> np.ndarray:
        """Vectorized loss decisions for a whole fan-out (one RNG call)."""
        return self.loss.should_drop_many(rng, r)


DEFAULT_LINK = LinkModel()
"""Lossless, constant 11 Mbps (802.11b-era), zero delay — a benign default."""
