"""Power-consumption model — the paper's §7 future work, implemented.

"Sophisticated underlying models such as power consumption ... also need
be added into our system to provide more precise examinations."

A classic first-order radio energy model: transmitting a frame costs a
fixed electronics overhead plus an amount proportional to its bits, and
receiving costs the same shape with different constants.  Idle draw can
be charged explicitly per interval (``charge_idle``) by callers that
model duty cycles; the emulator core charges tx/rx automatically.

:class:`EnergyTracker` keeps per-node batteries.  When a node's battery
empties, further transmissions and receptions fail — the engine records
them as ``no-energy`` drops, and an optional ``on_death`` callback lets a
scenario remove the node from the scene (a node dying of battery is a
scene event worth replaying).
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from typing import Callable, Optional

from ..core.ids import NodeId
from ..errors import ConfigurationError

__all__ = ["EnergyModel", "EnergyTracker"]


@dataclass(frozen=True, slots=True)
class EnergyModel:
    """Joule costs of radio operations.

    Defaults are in the ballpark of classic sensor-radio numbers
    (50 nJ/bit electronics) — but the absolute scale only matters
    relative to configured battery capacities.
    """

    tx_per_bit: float = 50e-9
    rx_per_bit: float = 50e-9
    tx_overhead: float = 0.0
    rx_overhead: float = 0.0
    idle_per_second: float = 0.0

    def __post_init__(self) -> None:
        for name in ("tx_per_bit", "rx_per_bit", "tx_overhead",
                     "rx_overhead", "idle_per_second"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")

    def tx_cost(self, bits: int) -> float:
        return self.tx_overhead + self.tx_per_bit * bits

    def rx_cost(self, bits: int) -> float:
        return self.rx_overhead + self.rx_per_bit * bits


class EnergyTracker:
    """Per-node battery accounting.

    Nodes default to an infinite battery (energy is observed but never
    gates traffic) until :meth:`set_battery` assigns a finite capacity.
    Thread-safe for the real-time stack.
    """

    def __init__(
        self,
        model: Optional[EnergyModel] = None,
        on_death: Optional[Callable[[NodeId], None]] = None,
    ) -> None:
        self.model = model or EnergyModel()
        self.on_death = on_death
        self._capacity: dict[NodeId, float] = {}
        self._spent: dict[NodeId, float] = {}
        self._dead: set[NodeId] = set()
        self._lock = threading.Lock()

    # -- configuration -----------------------------------------------------------

    def set_battery(self, node: NodeId, joules: float) -> None:
        """Give ``node`` a finite battery (resets its spend)."""
        if joules <= 0:
            raise ConfigurationError(f"battery must be positive: {joules}")
        with self._lock:
            self._capacity[node] = joules
            self._spent[node] = 0.0
            self._dead.discard(node)

    # -- charging ------------------------------------------------------------------

    def _charge(self, node: NodeId, joules: float) -> bool:
        died = False
        with self._lock:
            if node in self._dead:
                return False
            spent = self._spent.get(node, 0.0) + joules
            self._spent[node] = spent
            capacity = self._capacity.get(node, math.inf)
            if spent >= capacity:
                self._spent[node] = capacity
                self._dead.add(node)
                died = True
        if died and self.on_death is not None:
            self.on_death(node)
        return not died

    def charge_tx(self, node: NodeId, bits: int) -> bool:
        """Charge a transmission; False if the battery just died (or was
        already dead) — the frame does not make it onto the air."""
        return self._charge(node, self.model.tx_cost(bits))

    def charge_rx(self, node: NodeId, bits: int) -> bool:
        """Charge a reception; False if the receiver is out of energy."""
        return self._charge(node, self.model.rx_cost(bits))

    def charge_idle(self, node: NodeId, seconds: float) -> bool:
        """Charge idle draw over ``seconds`` (duty-cycle modeling)."""
        if seconds < 0:
            raise ConfigurationError(f"negative idle interval: {seconds}")
        return self._charge(node, self.model.idle_per_second * seconds)

    # -- inspection -----------------------------------------------------------------

    def spent(self, node: NodeId) -> float:
        with self._lock:
            return self._spent.get(node, 0.0)

    def remaining(self, node: NodeId) -> float:
        with self._lock:
            return self._capacity.get(node, math.inf) - self._spent.get(
                node, 0.0
            )

    def is_alive(self, node: NodeId) -> bool:
        with self._lock:
            return node not in self._dead

    def report(self) -> dict[NodeId, dict]:
        """Per-node energy summary (for the stats pane / examples)."""
        with self._lock:
            nodes = set(self._spent) | set(self._capacity)
            return {
                n: {
                    "spent": self._spent.get(n, 0.0),
                    "capacity": self._capacity.get(n, math.inf),
                    "alive": n not in self._dead,
                }
                for n in nodes
            }
