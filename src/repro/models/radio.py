"""Radio and multi-radio node configuration (paper §4.2).

"In multi-radio environment, each MANET node has multiple radios to assign
multiple channels to adjust neighbor connectivity with other nodes" — a
node's neighborhood depends on *both* radio range and channel assignment.

A :class:`Radio` is one transceiver: a channel id, a range ``R(A, n)``, and
its own :class:`~repro.models.link.LinkModel` (different radios may differ
in rate/loss characteristics).  A :class:`RadioConfig` is the immutable
bundle a node is created with; at runtime the scene owns mutable
:class:`RadioState` objects so the GUI-equivalent operations ("switching
the channel, changing the radio range") can retune them live.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Optional

from ..core.ids import ChannelId, RadioIndex
from ..errors import ChannelError, ConfigurationError
from .link import DEFAULT_LINK, LinkModel

__all__ = ["Radio", "RadioConfig", "RadioState"]


@dataclass(frozen=True, slots=True)
class Radio:
    """One transceiver: channel, range, link model."""

    channel: ChannelId
    range: float
    link: LinkModel = field(default_factory=lambda: DEFAULT_LINK)

    def __post_init__(self) -> None:
        if int(self.channel) < 0:
            raise ChannelError(f"channel id must be non-negative: {self.channel}")
        if self.range <= 0:
            raise ConfigurationError(f"radio range must be positive: {self.range}")

    def retuned(self, channel: ChannelId) -> "Radio":
        """Copy of this radio switched to another channel."""
        return replace(self, channel=channel)

    def ranged(self, range_: float) -> "Radio":
        """Copy of this radio with a different range."""
        return replace(self, range=range_)


@dataclass(frozen=True, slots=True)
class RadioConfig:
    """The radios a node is born with (at least one)."""

    radios: tuple[Radio, ...]

    def __post_init__(self) -> None:
        if not self.radios:
            raise ConfigurationError("a node needs at least one radio")

    @staticmethod
    def single(
        channel: int, range_: float, link: Optional[LinkModel] = None
    ) -> "RadioConfig":
        """One-radio convenience constructor."""
        return RadioConfig(
            (Radio(ChannelId(channel), range_, link or DEFAULT_LINK),)
        )

    @staticmethod
    def of(radios: Iterable[Radio]) -> "RadioConfig":
        return RadioConfig(tuple(radios))

    @property
    def channels(self) -> frozenset[ChannelId]:
        """``CS(A)`` — the node's channel set."""
        return frozenset(r.channel for r in self.radios)

    def radio_on_channel(self, channel: ChannelId) -> Optional[Radio]:
        """The first radio tuned to ``channel``, or None."""
        for r in self.radios:
            if r.channel == channel:
                return r
        return None


class RadioState:
    """Mutable runtime state of one node's radios (owned by the scene).

    Mutations go through the scene so change listeners (neighbor tables,
    recorders) observe every retune — don't mutate directly in user code.
    """

    def __init__(self, config: RadioConfig) -> None:
        self._radios: list[Radio] = list(config.radios)

    def __len__(self) -> int:
        return len(self._radios)

    def __getitem__(self, index: int) -> Radio:
        return self._radios[index]

    def __iter__(self):
        return iter(self._radios)

    @property
    def channels(self) -> frozenset[ChannelId]:
        """Current ``CS(A)``."""
        return frozenset(r.channel for r in self._radios)

    def radio_on_channel(self, channel: ChannelId) -> Optional[tuple[RadioIndex, Radio]]:
        """(index, radio) of the first radio tuned to ``channel``."""
        for i, r in enumerate(self._radios):
            if r.channel == channel:
                return RadioIndex(i), r
        return None

    def set_channel(self, index: RadioIndex, channel: ChannelId) -> Radio:
        """Retune radio ``index``; returns the new radio value."""
        self._check(index)
        if int(channel) < 0:
            raise ChannelError(f"channel id must be non-negative: {channel}")
        self._radios[index] = self._radios[index].retuned(channel)
        return self._radios[index]

    def set_range(self, index: RadioIndex, range_: float) -> Radio:
        """Change radio ``index``'s range; returns the new radio value."""
        self._check(index)
        if range_ <= 0:
            raise ConfigurationError(f"radio range must be positive: {range_}")
        self._radios[index] = self._radios[index].ranged(range_)
        return self._radios[index]

    def set_link(self, index: RadioIndex, link: LinkModel) -> Radio:
        """Swap radio ``index``'s link model (a GUI 'configure' action)."""
        self._check(index)
        self._radios[index] = replace(self._radios[index], link=link)
        return self._radios[index]

    def snapshot(self) -> RadioConfig:
        """Immutable snapshot of the current radios (for records/replay)."""
        return RadioConfig(tuple(self._radios))

    def _check(self, index: int) -> None:
        if not 0 <= index < len(self._radios):
            raise ConfigurationError(
                f"radio index {index} out of range (node has {len(self._radios)})"
            )
