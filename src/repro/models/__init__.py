"""Configurable models: mobility (4-tuple), link (loss/bandwidth/delay), radios."""
