"""MAC algorithm models — the paper's §7 future work, implemented.

"Sophisticated underlying models such as ... MAC algorithms ... also need
be added into our system to provide more precise examinations."

The base emulator treats each (sender, receiver) pair independently: no
contention, no collisions — that is :class:`IdealMac`, and it is exactly
what the paper's §6.2 experiment relies on ("the two channels are
assigned diverse channel IDs to avoid any collision").  To examine what
happens *without* that careful channel assignment, two contention models
are provided, each treating a channel as one shared collision domain
(a reasonable model at emulation scale; spatial reuse would need a full
SINR model, far beyond the paper's fidelity):

:class:`AlohaMac`
    Senders transmit immediately.  If two frames' airtimes overlap on the
    same channel, **both** are corrupted (no capture effect) and dropped
    with reason ``collision``.

:class:`CsmaCaMac`
    Carrier sense + random backoff: a frame arriving while the channel is
    busy defers until the channel goes idle, plus a uniformly random
    backoff.  Deferral delays ``t_forward``; collisions only occur when
    two deferred senders pick overlapping slots (rare, controlled by
    ``slot_time`` granularity).

The engine consults the MAC once per transmission (not per receiver):
``admit()`` returns when the frame may start and whether it collided.
Per-channel state lives here so the engine stays MAC-agnostic.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.ids import ChannelId, NodeId
from ..errors import ConfigurationError

__all__ = ["MacDecision", "MacModel", "IdealMac", "AlohaMac",
           "CsmaCaMac", "SpatialAlohaMac"]


@dataclass(frozen=True, slots=True)
class MacDecision:
    """Outcome of one MAC admission.

    ``start`` is when the frame actually begins occupying the medium
    (>= the requested time under CSMA deferral); ``collided`` marks the
    frame corrupted (ALOHA overlap); ``collided_with`` names the other
    transmission's sender when known (for the packet log).
    """

    start: float
    collided: bool = False
    collided_with: Optional[NodeId] = None


@dataclass
class _Transmission:
    sender: NodeId
    start: float
    end: float
    collided: bool = False


class MacModel(ABC):
    """Per-channel medium-access arbitration."""

    @abstractmethod
    def admit(
        self,
        channel: ChannelId,
        sender: NodeId,
        t_request: float,
        airtime: float,
    ) -> MacDecision:
        """Arbitrate one transmission of ``airtime`` seconds."""

    def reset(self) -> None:
        """Clear all channel state (new emulation run)."""

    # Collision marking is cooperative: the engine asks after admit()
    # whether a previously admitted frame ended up collided (ALOHA marks
    # earlier frames retroactively when a later overlap arrives).
    def was_collided(self, channel: ChannelId, sender: NodeId,
                     start: float) -> bool:
        """Did the transmission admitted at ``start`` get corrupted later?"""
        return False

    def receiver_corrupted(
        self,
        channel: ChannelId,
        sender: NodeId,
        start: float,
        receiver: NodeId,
        scene,
    ) -> bool:
        """Spatial hook: is the frame corrupted *at this receiver*?

        Channel-wide models return False (their verdicts come from
        ``admit``/``was_collided``); :class:`SpatialAlohaMac` overrides.
        """
        return False


class IdealMac(MacModel):
    """No contention: every transmission starts on request, none collide.

    The default — matches the base paper's medium model.
    """

    def admit(self, channel, sender, t_request, airtime) -> MacDecision:
        return MacDecision(start=t_request)


class AlohaMac(MacModel):
    """Pure ALOHA: transmit immediately; overlapping frames all die.

    A frame is collided if its ``[start, end)`` interval intersects any
    other frame's interval on the same channel.  Because a *later* frame
    can corrupt an earlier one whose delivery was already scheduled, the
    engine re-checks with :meth:`was_collided` at delivery time.
    """

    def __init__(self, history_horizon: float = 5.0) -> None:
        if history_horizon <= 0:
            raise ConfigurationError("history_horizon must be positive")
        self.history_horizon = history_horizon
        self._active: dict[ChannelId, list[_Transmission]] = {}
        # A single radio serializes its own frames (it cannot transmit two
        # at once) — ALOHA just doesn't listen to *other* senders.
        self._own_busy: dict[tuple[ChannelId, NodeId], float] = {}

    def reset(self) -> None:
        self._active.clear()
        self._own_busy.clear()

    def admit(self, channel, sender, t_request, airtime) -> MacDecision:
        start = max(t_request, self._own_busy.get((channel, sender), 0.0))
        txs = self._active.setdefault(channel, [])
        # Garbage-collect transmissions that can no longer interact.
        horizon = start - self.history_horizon
        if txs and txs[0].end < horizon:
            self._active[channel] = txs = [
                t for t in txs if t.end >= horizon
            ]
        me = _Transmission(sender, start, start + airtime)
        self._own_busy[(channel, sender)] = me.end
        collided_with: Optional[NodeId] = None
        for other in txs:
            if other.sender == sender:
                continue  # own frames are serialized, never overlapping
            if other.start < me.end and me.start < other.end:
                me.collided = True
                other.collided = True  # retroactive: both frames die
                collided_with = other.sender
        txs.append(me)
        return MacDecision(
            start=start, collided=me.collided,
            collided_with=collided_with,
        )

    def was_collided(self, channel, sender, start) -> bool:
        for tx in self._active.get(channel, ()):
            if tx.sender == sender and tx.start == start:
                return tx.collided
        return False

    def utilization(self, channel: ChannelId) -> int:
        """Transmissions currently tracked on ``channel`` (diagnostics)."""
        return len(self._active.get(channel, ()))


class CsmaCaMac(MacModel):
    """Carrier sense with random backoff.

    A transmission requested while the channel is busy is deferred to the
    channel-idle instant plus ``U[0, cw) · slot_time``.  Two deferred
    senders can still pick the same landing window and collide (the
    classic residual collision probability); the collision check uses the
    post-backoff intervals.
    """

    def __init__(
        self,
        slot_time: float = 20e-6,
        cw: int = 16,
        seed: int = 0,
        history_horizon: float = 5.0,
    ) -> None:
        if slot_time <= 0 or cw < 1:
            raise ConfigurationError("slot_time must be > 0 and cw >= 1")
        self.slot_time = slot_time
        self.cw = cw
        self.history_horizon = history_horizon
        self._rng = np.random.default_rng(seed)
        self._busy_until: dict[ChannelId, float] = {}
        self._active: dict[ChannelId, list[_Transmission]] = {}

    def reset(self) -> None:
        self._busy_until.clear()
        self._active.clear()

    def admit(self, channel, sender, t_request, airtime) -> MacDecision:
        idle_at = self._busy_until.get(channel, 0.0)
        start = t_request
        if start < idle_at:
            # Defer to idle plus random backoff.
            backoff = float(self._rng.integers(self.cw)) * self.slot_time
            start = idle_at + backoff
        end = start + airtime
        txs = self._active.setdefault(channel, [])
        horizon = t_request - self.history_horizon
        if txs and txs[0].end < horizon:
            self._active[channel] = txs = [t for t in txs if t.end >= horizon]
        me = _Transmission(sender, start, end)
        collided_with: Optional[NodeId] = None
        for other in txs:
            if other.start < me.end and me.start < other.end:
                me.collided = True
                other.collided = True
                collided_with = other.sender
        txs.append(me)
        self._busy_until[channel] = max(idle_at, end)
        return MacDecision(start=start, collided=me.collided,
                           collided_with=collided_with)

    def was_collided(self, channel, sender, start) -> bool:
        for tx in self._active.get(channel, ()):
            if tx.sender == sender and tx.start == start:
                return tx.collided
        return False


class SpatialAlohaMac(MacModel):
    """Interference-aware ALOHA: collisions are per-*receiver*.

    The channel-wide models above treat a channel as one collision
    domain.  Real radio is spatial: two concurrent transmissions only
    destroy each other's frames at receivers that can hear **both** — the
    hidden-terminal problem — while far-apart pairs reuse the channel
    freely (spatial reuse).

    ``admit`` never rejects (pure ALOHA: senders don't listen); instead
    the engine asks :meth:`receiver_corrupted` at each delivery, and the
    answer depends on the receiver's position: the frame is corrupted iff
    some other transmission overlapped it in time on the same channel
    *and* that interferer's signal reaches the receiver
    (``distance <= interferer_range × interference_factor``).

    Positions are evaluated at adjudication time — an approximation valid
    while nodes move negligibly within one frame's airtime (µs–ms).
    """

    def __init__(
        self,
        interference_factor: float = 1.0,
        history_horizon: float = 5.0,
    ) -> None:
        if interference_factor <= 0:
            raise ConfigurationError("interference_factor must be positive")
        if history_horizon <= 0:
            raise ConfigurationError("history_horizon must be positive")
        self.interference_factor = interference_factor
        self.history_horizon = history_horizon
        self._active: dict[ChannelId, list[_Transmission]] = {}
        self._own_busy: dict[tuple[ChannelId, NodeId], float] = {}

    def reset(self) -> None:
        self._active.clear()
        self._own_busy.clear()

    def admit(self, channel, sender, t_request, airtime) -> MacDecision:
        start = max(t_request, self._own_busy.get((channel, sender), 0.0))
        txs = self._active.setdefault(channel, [])
        horizon = start - self.history_horizon
        if txs and txs[0].end < horizon:
            self._active[channel] = txs = [t for t in txs if t.end >= horizon]
        txs.append(_Transmission(sender, start, start + airtime))
        self._own_busy[(channel, sender)] = start + airtime
        return MacDecision(start=start)  # adjudicated per receiver later

    def receiver_corrupted(self, channel, sender, start, receiver,
                           scene) -> bool:
        """Did interference destroy this frame *at this receiver*?"""
        mine = None
        for tx in self._active.get(channel, ()):
            if tx.sender == sender and tx.start == start:
                mine = tx
                break
        if mine is None:
            return False
        for other in self._active.get(channel, ()):
            if other.sender == sender:
                continue
            if not (other.start < mine.end and mine.start < other.end):
                continue
            if other.sender not in scene or receiver not in scene:
                continue
            radio = scene.radio_on_channel(other.sender, channel)
            if radio is None:
                continue
            reach = radio.range * self.interference_factor
            if scene.distance_between(other.sender, receiver) <= reach:
                return True
        return False
