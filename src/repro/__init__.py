"""PoEm — a Portable real-time Emulator for testing multi-radio MANETs.

A from-scratch Python reproduction of Jiang & Zhang, *"A Portable
Real-time Emulator for Testing Multi-Radio MANETs"* (IPPS 2006).

Quickstart::

    from repro import InProcessEmulator, RadioConfig, Vec2, HybridProtocol

    emu = InProcessEmulator(seed=42)
    a = emu.add_node(Vec2(0, 0),   RadioConfig.single(1, 200), protocol=HybridProtocol())
    b = emu.add_node(Vec2(120, 0), RadioConfig.single(1, 200), protocol=HybridProtocol())
    emu.run_until(5.0)
    a.protocol.send_data(b.node_id, b"hello")
    emu.run_for(1.0)
    print(b.app_received)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from .core.clock import RealTimeClock, SynchronizedClock, VirtualClock
from .core.engine import ForwardingEngine
from .core.geometry import Vec2
from .core.ids import BROADCAST_NODE, ChannelId, NodeId, RadioIndex
from .core.neighbor import ChannelIndexedNeighborTables, SingleTableNeighbors
from .core.packet import Packet, PacketRecord
from .core.recording import MemoryRecorder, SqliteRecorder
from .core.replay import ReplayEngine
from .core.scene import Scene, SceneEvent
from .core.server import InProcessEmulator, VirtualNodeHost
from .core.client import PoEmClient
from .core.supervision import HealthRegistry, RestartPolicy, SupervisedThread
from .core.tcpserver import PoEmServer
from .net.faults import FaultSpec, FaultyTransport, LinkFaultInjector
from .models.energy import EnergyModel, EnergyTracker
from .models.group_mobility import (
    GaussMarkovMobility,
    RandomDirectionMobility,
    ReferencePointGroupModel,
)
from .models.link import BandwidthModel, DelayModel, LinkModel, PacketLossModel
from .models.mac import AlohaMac, CsmaCaMac, IdealMac, SpatialAlohaMac
from .models.mobility import (
    Bounds,
    ConstantVelocity,
    GeneralizedMobility,
    RandomWalk,
    RandomWaypoint,
    Stationary,
)
from .models.radio import Radio, RadioConfig
from .protocols.aodv import AodvProtocol
from .protocols.dsdv import DsdvProtocol
from .protocols.flooding import FloodingProtocol
from .protocols.hybrid import HybridProtocol

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "InProcessEmulator",
    "VirtualNodeHost",
    "PoEmServer",
    "PoEmClient",
    "ForwardingEngine",
    "Scene",
    "SceneEvent",
    "Packet",
    "PacketRecord",
    "MemoryRecorder",
    "SqliteRecorder",
    "ReplayEngine",
    "VirtualClock",
    "RealTimeClock",
    "SynchronizedClock",
    "ChannelIndexedNeighborTables",
    "SingleTableNeighbors",
    "Vec2",
    "NodeId",
    "ChannelId",
    "RadioIndex",
    "BROADCAST_NODE",
    # fault tolerance
    "SupervisedThread",
    "HealthRegistry",
    "RestartPolicy",
    "FaultSpec",
    "FaultyTransport",
    "LinkFaultInjector",
    # models
    "LinkModel",
    "PacketLossModel",
    "BandwidthModel",
    "DelayModel",
    "Radio",
    "RadioConfig",
    "Bounds",
    "GeneralizedMobility",
    "RandomWalk",
    "RandomWaypoint",
    "ConstantVelocity",
    "Stationary",
    "ReferencePointGroupModel",
    "GaussMarkovMobility",
    "RandomDirectionMobility",
    "EnergyModel",
    "EnergyTracker",
    "IdealMac",
    "AlohaMac",
    "CsmaCaMac",
    "SpatialAlohaMac",
    # protocols
    "HybridProtocol",
    "AodvProtocol",
    "DsdvProtocol",
    "FloodingProtocol",
]
