"""Orchestration for ``poem lint --deep``.

Runs the three interprocedural passes over one whole-program model:

* POEM008 — shared-state races (:mod:`repro.lint.racecheck`);
* POEM009 — static lock-order cycles and, when a runtime report is
  available, runtime-vs-static consistency
  (:mod:`repro.lint.staticlocks`);
* POEM010 — cluster-protocol exhaustiveness
  (:mod:`repro.lint.protocheck`).

Findings then flow through two filters:

1. the inline suppression protocol (``# poem: ignore[RULE]`` on the
   flagged line, the line above, or the field-definition scope line);
2. the **baseline** — a committed JSON file of *fingerprinted* accepted
   findings, each with a written justification.  Fingerprints are
   line-number-free (``race:Class.attr:context``, ``cycle:<sorted lock
   labels>``, ``proto:op:direction``) so refactors that move code do
   not churn the baseline; CI therefore gates on **new** findings only.
   Baseline entries that no longer match anything are reported as stale
   so the file cannot silently rot.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .callgraph import Project, build_project
from .protocheck import protocol_findings
from .racecheck import race_findings
from .rules import Finding, is_suppressed
from .staticlocks import (
    StaticLockModel,
    build_lock_model,
    check_runtime_consistency,
    static_lock_findings,
)

__all__ = [
    "DeepResult",
    "run_deep",
    "load_baseline",
    "DEFAULT_BASELINE_NAME",
]

#: Default baseline file, looked up upward from the first linted path.
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass
class DeepResult:
    """Outcome of one deep run."""

    #: actionable findings with their fingerprints (not suppressed,
    #: not baselined)
    findings: List[Tuple[Finding, str]]
    #: findings matched by a baseline entry: (finding, fp, justification)
    baselined: List[Tuple[Finding, str, str]]
    #: baseline fingerprints that matched nothing this run
    stale: List[str]
    #: inline-suppressed finding count
    suppressed: int
    model: StaticLockModel
    project: Project
    duration: float

    @property
    def clean(self) -> bool:
        return not self.findings

    def as_dict(self) -> dict:
        return {
            "clean": self.clean,
            "duration_seconds": round(self.duration, 3),
            "functions": len(self.project.functions),
            "thread_roots": sorted(
                {r.func.qualname for r in self.project.roots}
            ),
            "static_lock_edges": len(self.model.edges),
            "suppressed": self.suppressed,
            "baselined": [
                {
                    "rule": f.rule,
                    "fingerprint": fp,
                    "justification": just,
                }
                for f, fp, just in self.baselined
            ],
            "stale_baseline_entries": list(self.stale),
            "findings": [
                dict(f.as_dict(), fingerprint=fp)
                for f, fp in self.findings
            ],
        }


def load_baseline(path: Path) -> Dict[str, str]:
    """fingerprint -> justification.  Raises ValueError on a malformed
    file (a broken baseline must not silently disable the gate)."""
    doc = json.loads(path.read_text())
    if not isinstance(doc, dict) or not isinstance(
        doc.get("entries"), list
    ):
        raise ValueError(
            f"{path}: baseline must be "
            '{"version": 1, "entries": [...]}'
        )
    out: Dict[str, str] = {}
    for entry in doc["entries"]:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise ValueError(
                f"{path}: every baseline entry needs a 'fingerprint'"
            )
        if not str(entry.get("justification", "")).strip():
            raise ValueError(
                f"{path}: entry {entry['fingerprint']!r} has no "
                "justification — baselines document *why*, or the "
                "finding gets fixed instead"
            )
        out[str(entry["fingerprint"])] = str(entry["justification"])
    return out


def discover_baseline(paths: Sequence[Union[str, Path]]) -> Optional[Path]:
    """Walk upward from the first linted path looking for the default
    baseline file (the repo root holds the committed one)."""
    if not paths:
        return None
    start = Path(paths[0]).resolve()
    if start.is_file():
        start = start.parent
    for candidate in [start] + list(start.parents):
        p = candidate / DEFAULT_BASELINE_NAME
        if p.is_file():
            return p
    return None


def _suppression_filter(
    pairs: List[Tuple[Finding, str]]
) -> Tuple[List[Tuple[Finding, str]], int]:
    kept: List[Tuple[Finding, str]] = []
    dropped = 0
    lines_cache: Dict[str, List[str]] = {}
    for finding, fp in pairs:
        lines = lines_cache.get(finding.path)
        if lines is None:
            try:
                lines = Path(finding.path).read_text().splitlines()
            except OSError:
                lines = []
            lines_cache[finding.path] = lines
        if is_suppressed(
            finding.rule, lines, finding.line, finding.scope_line
        ):
            dropped += 1
        else:
            kept.append((finding, fp))
    return kept, dropped


def run_deep(
    paths: Sequence[Union[str, Path]],
    *,
    baseline: Optional[Path] = None,
    runtime_edges: Optional[Sequence[Tuple[str, str]]] = None,
) -> DeepResult:
    """Build the model, run all three passes, filter, gate."""
    t0 = time.monotonic()
    project = build_project(paths)
    model = build_lock_model(project)

    pairs: List[Tuple[Finding, str]] = []
    pairs.extend(race_findings(project))
    pairs.extend(static_lock_findings(project, model))
    if runtime_edges is not None:
        pairs.extend(
            check_runtime_consistency(project, model, runtime_edges)
        )
    pairs.extend(protocol_findings(project))

    pairs, suppressed = _suppression_filter(pairs)

    if baseline is None:
        baseline = discover_baseline(paths)
    accepted: Dict[str, str] = {}
    if baseline is not None:
        accepted = load_baseline(Path(baseline))

    actionable: List[Tuple[Finding, str]] = []
    baselined: List[Tuple[Finding, str, str]] = []
    matched: set = set()
    for finding, fp in pairs:
        if fp in accepted:
            matched.add(fp)
            baselined.append((finding, fp, accepted[fp]))
        else:
            actionable.append((finding, fp))
    stale = sorted(set(accepted) - matched)

    actionable.sort(key=lambda p: (p[0].path, p[0].line, p[0].rule))
    return DeepResult(
        findings=actionable,
        baselined=baselined,
        stale=stale,
        suppressed=suppressed,
        model=model,
        project=project,
        duration=time.monotonic() - t0,
    )
