"""POEM010: cluster-protocol exhaustiveness.

The parent (:mod:`repro.cluster.sharded`) and the worker
(:mod:`repro.cluster.worker`) speak a JSON-control protocol whose op
vocabulary is minted by the ``make_*`` helpers in
:mod:`repro.net.messages` (every helper returns a dict literal with an
``"op"`` key).  Nothing ties a send site to a dispatch arm — the two
halves can silently drift apart across refactors, and the failure shows
up as an "unexpected reply" at a distance.

This pass re-derives both halves from the AST:

* **send sites** — calls to a ``make_*`` helper (resolved to its op
  constant) or inline ``{"op": ...}`` dict literals, attributed to the
  side of the file they appear in (``sharded.py`` = parent,
  ``worker.py`` = worker);
* **dispatch sites** — string constants compared against an expression
  that reads the ``"op"`` key (``msg["op"]``, ``msg.get("op")``, or a
  variable assigned from one).

An op one side sends that the *other* side never dispatches is a
finding, and so is a dispatch arm for an op nobody sends (dead
protocol).  Ping/pong and other net-level ops outside the two cluster
endpoints are out of scope.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .callgraph import ModuleInfo, Project
from .rules import Finding

__all__ = ["protocol_findings", "ProtocolModel", "build_protocol_model"]

_PARENT_MODULES = ("cluster.sharded",)
_WORKER_MODULES = ("cluster.worker",)
_VOCAB_MODULES = ("net.messages",)


@dataclass
class ProtocolModel:
    #: make_* helper name -> op string
    vocabulary: Dict[str, str]
    #: side -> {op -> first (path, line) send site}
    sends: Dict[str, Dict[str, Tuple[str, int]]]
    #: side -> {op -> first (path, line) dispatch site}
    dispatches: Dict[str, Dict[str, Tuple[str, int]]]


def _op_of_dict_literal(node: ast.Dict) -> Optional[str]:
    for key, value in zip(node.keys, node.values):
        if (
            isinstance(key, ast.Constant) and key.value == "op"
            and isinstance(value, ast.Constant)
            and isinstance(value.value, str)
        ):
            return value.value
    return None


def _collect_vocabulary(mi: ModuleInfo) -> Dict[str, str]:
    """``make_*`` helper -> the op its returned dict literal carries."""
    vocab: Dict[str, str] = {}
    for node in ast.walk(mi.tree):
        if not isinstance(node, ast.FunctionDef):
            continue
        if not node.name.startswith("make_"):
            continue
        for sub in ast.walk(node):
            if isinstance(sub, ast.Dict):
                op = _op_of_dict_literal(sub)
                if op is not None:
                    vocab[node.name] = op
                    break
    return vocab


def _is_op_read(expr: ast.expr) -> bool:
    """Does ``expr`` read the ``"op"`` key of a message?"""
    if isinstance(expr, ast.Subscript):
        s = expr.slice
        return isinstance(s, ast.Constant) and s.value == "op"
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        if expr.func.attr == "get" and expr.args:
            a = expr.args[0]
            return isinstance(a, ast.Constant) and a.value == "op"
    return False


def _scan_side(
    mi: ModuleInfo, vocab: Dict[str, str]
) -> Tuple[Dict[str, Tuple[str, int]], Dict[str, Tuple[str, int]]]:
    sends: Dict[str, Tuple[str, int]] = {}
    dispatches: Dict[str, Tuple[str, int]] = {}
    op_vars: Set[str] = set()
    path = str(mi.path)

    # First sweep: find variables assigned from an op read
    # (``op = msg["op"]``).
    for node in ast.walk(mi.tree):
        if isinstance(node, ast.Assign) and _is_op_read(node.value):
            for t in node.targets:
                if isinstance(t, ast.Name):
                    op_vars.add(t.id)

    def reads_op(expr: ast.expr) -> bool:
        if _is_op_read(expr):
            return True
        return isinstance(expr, ast.Name) and expr.id in op_vars

    for node in ast.walk(mi.tree):
        if isinstance(node, ast.Call):
            fname = ""
            if isinstance(node.func, ast.Name):
                fname = node.func.id
            elif isinstance(node.func, ast.Attribute):
                fname = node.func.attr
            if fname in vocab:
                sends.setdefault(vocab[fname], (path, node.lineno))
        elif isinstance(node, ast.Dict):
            op = _op_of_dict_literal(node)
            if op is not None:
                sends.setdefault(op, (path, node.lineno))
        elif isinstance(node, ast.Compare):
            sides = [node.left] + list(node.comparators)
            if any(reads_op(s) for s in sides):
                for s in sides:
                    if isinstance(s, ast.Constant) and isinstance(
                        s.value, str
                    ):
                        dispatches.setdefault(s.value, (path, node.lineno))
    return sends, dispatches


def build_protocol_model(project: Project) -> Optional[ProtocolModel]:
    """Returns None when the cluster endpoints are outside the linted
    paths (e.g. ``poem lint --deep src/repro/core``)."""
    vocab: Dict[str, str] = {}
    for rel in _VOCAB_MODULES:
        mi = project.modules.get(rel)
        if mi is not None:
            vocab.update(_collect_vocabulary(mi))
    sides = {"parent": _PARENT_MODULES, "worker": _WORKER_MODULES}
    sends: Dict[str, Dict[str, Tuple[str, int]]] = {}
    dispatches: Dict[str, Dict[str, Tuple[str, int]]] = {}
    present = 0
    for side, rels in sides.items():
        s: Dict[str, Tuple[str, int]] = {}
        d: Dict[str, Tuple[str, int]] = {}
        for rel in rels:
            mi = project.modules.get(rel)
            if mi is None:
                continue
            present += 1
            ms, md = _scan_side(mi, vocab)
            for op, loc in ms.items():
                s.setdefault(op, loc)
            for op, loc in md.items():
                d.setdefault(op, loc)
        sends[side] = s
        dispatches[side] = d
    if present < 2:
        return None
    return ProtocolModel(vocabulary=vocab, sends=sends, dispatches=dispatches)


def protocol_findings(project: Project) -> List[Tuple[Finding, str]]:
    """POEM010 findings: (finding, fingerprint ``op:direction``)."""
    model = build_protocol_model(project)
    if model is None:
        return []
    out: List[Tuple[Finding, str]] = []
    peer = {"parent": "worker", "worker": "parent"}
    for side in ("parent", "worker"):
        other = peer[side]
        for op, (path, line) in sorted(model.sends[side].items()):
            if op not in model.dispatches[other]:
                out.append(
                    (
                        Finding(
                            rule="POEM010",
                            path=path,
                            line=line,
                            col=0,
                            message=(
                                f"control op '{op}' is sent by the "
                                f"{side} but never dispatched by the "
                                f"{other}"
                            ),
                        ),
                        f"proto:{op}:{side}->{other}:undispatched",
                    )
                )
        for op, (path, line) in sorted(model.dispatches[side].items()):
            if (
                op not in model.sends[other]
                and op in model.vocabulary.values()
            ):
                out.append(
                    (
                        Finding(
                            rule="POEM010",
                            path=path,
                            line=line,
                            col=0,
                            message=(
                                f"control op '{op}' has a dispatch arm "
                                f"in the {side} but the {other} never "
                                f"sends it (dead protocol)"
                            ),
                        ),
                        f"proto:{op}:{other}->{side}:unsent",
                    )
                )
    return out
