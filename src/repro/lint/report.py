"""Rendering for ``poem lint`` output — text for humans, JSON for CI.

The JSON document is the artifact the CI ``lint`` job uploads; its
shape is stable: ``findings`` (list of :meth:`Finding.as_dict` rows),
``summary`` (per-rule counts), ``checked_files``, ``clean``, and —
when ``--runtime`` ran — a ``runtime`` object produced by
:meth:`repro.lint.runtime.RuntimeReport.as_dict`, plus — when
``--deep`` ran — a ``deep`` object produced by
:meth:`repro.lint.deep.DeepResult.as_dict`.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional, Sequence

from .rules import RULES, Finding

__all__ = ["summarize", "render_text", "render_json"]


def summarize(findings: Sequence[Finding]) -> dict[str, int]:
    """Per-rule finding counts, keyed by rule code, sorted by code."""
    counts: dict[str, int] = {}
    for f in findings:
        counts[f.rule] = counts.get(f.rule, 0) + 1
    return dict(sorted(counts.items()))


def render_text(
    findings: Sequence[Finding],
    checked_files: int,
    runtime: Optional[Mapping[str, object]] = None,
    deep: Optional[Mapping[str, object]] = None,
) -> str:
    """Human-readable report: one line per finding plus a hint line."""
    out: list[str] = []
    for f in findings:
        rule = RULES[f.rule]
        out.append(
            f"{f.path}:{f.line}:{f.col + 1}: {f.rule} "
            f"[{rule.name}] {f.message}"
        )
        out.append(f"    hint: {rule.hint}")
    if runtime is not None:
        out.extend(_render_runtime_text(runtime))
    if deep is not None:
        out.extend(_render_deep_text(deep))
    if findings:
        parts = ", ".join(
            f"{code}×{n}" for code, n in summarize(findings).items()
        )
        out.append(
            f"{len(findings)} finding(s) in {checked_files} file(s): "
            f"{parts}"
        )
    else:
        out.append(f"clean: {checked_files} file(s), 0 findings")
    return "\n".join(out)


def _render_runtime_text(runtime: Mapping[str, object]) -> list[str]:
    out = ["", "runtime lock-order check:"]
    out.append(
        "  locks={locks} edges={edges} acquisitions={acquisitions}".format(
            locks=runtime.get("locks", 0),
            edges=runtime.get("edges", 0),
            acquisitions=runtime.get("acquisitions", 0),
        )
    )
    cycles = runtime.get("cycles") or []
    if isinstance(cycles, Sequence):
        for cyc in cycles:
            if isinstance(cyc, Mapping):
                chain = " -> ".join(str(n) for n in cyc.get("locks", []))
                out.append(f"  CYCLE (potential deadlock): {chain}")
    contentions = runtime.get("contentions") or []
    if isinstance(contentions, Sequence):
        for ev in contentions:
            if isinstance(ev, Mapping):
                out.append(
                    "  diagnostic: contended acquire of {want!r} while "
                    "holding {held}".format(
                        want=ev.get("wanted"),
                        held=ev.get("held"),
                    )
                )
    if not cycles:
        out.append("  clean: no lock-order cycles")
    return out


def _render_deep_text(deep: Mapping[str, object]) -> list[str]:
    out = ["", "deep whole-program analysis:"]
    out.append(
        "  functions={functions} thread_roots={roots} "
        "static_lock_edges={edges} ({dur}s)".format(
            functions=deep.get("functions", 0),
            roots=len(_seq(deep.get("thread_roots"))),
            edges=deep.get("static_lock_edges", 0),
            dur=deep.get("duration_seconds", 0),
        )
    )
    suppressed = deep.get("suppressed", 0)
    if suppressed:
        out.append(f"  {suppressed} finding(s) inline-suppressed")
    baselined = _seq(deep.get("baselined"))
    if baselined:
        out.append(f"  {len(baselined)} finding(s) baselined:")
        for entry in baselined:
            if isinstance(entry, Mapping):
                out.append(
                    "    {fp}: {just}".format(
                        fp=entry.get("fingerprint"),
                        just=entry.get("justification"),
                    )
                )
    stale = _seq(deep.get("stale_baseline_entries"))
    for fp in stale:
        out.append(
            f"  STALE baseline entry (matched nothing — remove it): {fp}"
        )
    if deep.get("clean", False) and not stale:
        out.append("  clean: no new findings")
    return out


def _seq(value: object) -> Sequence[object]:
    if isinstance(value, Sequence) and not isinstance(value, (str, bytes)):
        return value
    return []


def render_json(
    findings: Sequence[Finding],
    checked_files: int,
    runtime: Optional[Mapping[str, object]] = None,
    deep: Optional[Mapping[str, object]] = None,
) -> str:
    """Machine-readable report (the CI artifact)."""
    doc: dict[str, object] = {
        "findings": [f.as_dict() for f in findings],
        "summary": summarize(findings),
        "checked_files": checked_files,
        "clean": not findings
        and (runtime is None or bool(runtime.get("clean", True)))
        and (deep is None or bool(deep.get("clean", False))),
    }
    if runtime is not None:
        doc["runtime"] = dict(runtime)
    if deep is not None:
        doc["deep"] = dict(deep)
    return json.dumps(doc, indent=2, sort_keys=True)
