"""Whole-program model for the deep concurrency passes (``poem lint --deep``).

The lexical rules (POEM001-007) judge one function at a time; the deep
passes need to know *who calls whom with which locks held*.  This module
builds that model from the AST alone — nothing under analysis is ever
imported:

:class:`Project`
    Every module under the linted roots, indexed: classes (with resolved
    base classes and per-field type/lock info), functions (including
    nested ``def``\\ s and lambdas), and module imports.

Lock identity
    A lock is named by its construction site, ``"basename.py:lineno"`` —
    exactly the name the runtime detector's
    :func:`~repro.lint.lockgraph.instrument_module_locks` assigns, so the
    static POEM009 graph and the runtime graph share a vocabulary.
    ``threading.Condition(self._lock)`` aliases to the wrapped lock's
    site.  Three families of stdlib-internal locks are modelled
    abstractly: every ``numpy`` ``default_rng`` generator guards its bit
    generator with one internal lock (node ``<rng>``), ``queue.Queue``
    internals collapse to ``<ext:queue.py>``, and a ``threading.Thread``
    /``Timer``'s startup event is attributed to the construction site
    (matching the runtime namer, which skips ``threading.py`` frames).

Function summaries
    One AST walk per function produces position-sensitive events —
    lock acquisitions (``with`` nesting), calls (with the locks held at
    the call site), and attribute accesses (read/write + held locks) —
    that :mod:`.staticlocks` and :mod:`.racecheck` consume.

Callback slots
    Indirect calls are resolved context-insensitively through *slots*: a
    parameter that a function invokes, or a field/registry callables are
    stored into (``scene.add_listener(fn)`` → ``Scene._listeners``;
    ``clock.call_at(t, fn)`` → the clock heap).  Every callable that
    flows into a slot anywhere in the program is a possible target of
    every call through it.

Soundness caveats are documented in docs/static-analysis.md: the model
is deliberately an over-approximation for call targets (extra edges are
cheap; a missed edge is a hole the runtime cross-check exists to catch).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field as dc_field
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from .analyzer import iter_python_files

__all__ = [
    "RNG_SITE",
    "QUEUE_SITE",
    "FieldInfo",
    "FuncInfo",
    "ClassInfo",
    "ModuleInfo",
    "RootInfo",
    "AcquireEvent",
    "CallEvent",
    "AccessEvent",
    "Project",
    "build_project",
]

#: Abstract node for every numpy ``default_rng`` generator's internal lock.
RNG_SITE = "<rng>"
#: Abstract node for ``queue.Queue``-family internal locks.
QUEUE_SITE = "<ext:queue.py>"

_LOCK_FACTORIES = {"Lock": False, "RLock": True}
_QUEUE_CLASSES = frozenset(
    {"Queue", "LifoQueue", "PriorityQueue", "SimpleQueue", "JoinableQueue"}
)
_THREAD_CLASSES = frozenset({"Thread", "Timer"})
_SYNC_CLASSES = frozenset({"Semaphore", "BoundedSemaphore", "Barrier"})

#: Methods of each modelled external type that take its internal lock.
_EVENT_ACQUIRING = frozenset({"set", "clear", "wait"})
_QUEUE_ACQUIRING = frozenset(
    {"put", "get", "put_nowait", "get_nowait", "qsize", "empty", "full",
     "join", "task_done"}
)
_THREAD_ACQUIRING = frozenset({"start", "join"})
_SYNC_ACQUIRING = frozenset({"acquire", "release", "wait"})

#: Container methods that mutate the receiver (a write to the field).
_MUTATORS = frozenset(
    {"append", "extend", "add", "discard", "remove", "pop", "popitem",
     "clear", "update", "setdefault", "appendleft", "insert", "popleft"}
)
#: Container/introspection method names never resolved by the unique-name
#: fallback (too generic to identify a project class).
_FALLBACK_STOPLIST = frozenset(
    {"get", "items", "keys", "values", "copy", "sort", "split", "strip",
     "join", "read", "write", "encode", "decode", "format", "count",
     "index", "startswith", "endswith", "as_dict", "close", "send",
     "recv", "fileno", "flush", "poll", "acquire", "release", "locked",
     # stdlib look-alikes: sqlite3/socket/subprocess method names that
     # would otherwise resolve to same-named project methods
     "connect", "disconnect", "execute", "commit", "cursor", "bind",
     "listen", "accept", "sendall", "settimeout", "setsockopt",
     "shutdown", "cancel", "terminate", "set", "clear", "wait"}
)
#: Max distinct defining classes for the unique-method-name fallback.
#: Deliberately tight: the fallback exists for genuinely distinctive
#: names (``labels``, ``observe``, ``add_listener``); letting common
#: verbs like ``step``/``stop`` resolve to every definer poisons the
#: race pass's held-lock contexts with phantom call edges.
_FALLBACK_LIMIT = 2


# ---------------------------------------------------------------------------
# model dataclasses
# ---------------------------------------------------------------------------


@dataclass
class FieldInfo:
    """One instance attribute of a class (or one module-level global)."""

    name: str
    kind: str = "plain"  # plain|lock|event|queue|thread|rng|sem|object
    site: Optional[str] = None  # lock-ish kinds: "file.py:NN" or special
    reentrant: bool = False
    types: set = dc_field(default_factory=set)  # project class qualnames
    line: int = 0
    #: name of the field this Condition wraps (resolved post-pass)
    alias_of: Optional[str] = None
    #: writes seen only in ``__init__``/class body (pre-publication)
    init_only_writes: bool = True


@dataclass
class FuncInfo:
    """One function: module-level, method, nested ``def``, or lambda."""

    qualname: str
    name: str
    module: "ModuleInfo"
    cls: Optional[str]  # owning class qualname (methods only)
    node: ast.AST
    line: int
    params: list = dc_field(default_factory=list)
    annotations: dict = dc_field(default_factory=dict)  # param/return -> raw
    parent: Optional["FuncInfo"] = None
    closure_env: dict = dc_field(default_factory=dict)
    events: list = dc_field(default_factory=list)
    summarized: bool = False

    def __hash__(self) -> int:
        return hash(self.qualname)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FuncInfo) and other.qualname == self.qualname


@dataclass
class ClassInfo:
    qualname: str
    name: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: list = dc_field(default_factory=list)  # raw base name strings
    base_quals: list = dc_field(default_factory=list)
    methods: dict = dc_field(default_factory=dict)  # name -> FuncInfo
    fields: dict = dc_field(default_factory=dict)  # name -> FieldInfo
    frozen: bool = False


@dataclass
class ModuleInfo:
    path: Path
    relname: str  # "core.engine"
    basename: str  # "engine.py"
    tree: ast.Module
    source_lines: list
    imports: dict = dc_field(default_factory=dict)  # alias -> dotted target
    classes: dict = dc_field(default_factory=dict)
    functions: dict = dc_field(default_factory=dict)  # module-level only
    globals: dict = dc_field(default_factory=dict)  # name -> FieldInfo


@dataclass
class RootInfo:
    """A thread entrypoint: where concurrent execution can begin."""

    func: FuncInfo
    kind: str  # supervised|thread|timer|httpd|worker-main|cli-main|registry
    spawn_func: Optional[str]  # qualname of the function doing the spawn
    line: int

    @property
    def name(self) -> str:
        return self.func.qualname


# -- summary events ----------------------------------------------------------


@dataclass(frozen=True)
class AcquireEvent:
    """A lock acquisition (``with`` entry, or a modelled external op)."""

    site: str
    held: frozenset  # sites held just before this acquisition
    line: int


@dataclass
class CallEvent:
    """A call site with the locks held around it."""

    callees: list  # FuncInfo (resolved; slots already expanded)
    held: frozenset
    line: int


@dataclass(frozen=True)
class AccessEvent:
    """An instance-attribute access, attributed to the owning class."""

    cls: str  # class qualname
    attr: str
    kind: str  # "r" | "w"
    held: frozenset
    line: int


# ---------------------------------------------------------------------------
# the project model
# ---------------------------------------------------------------------------


class Project:
    """The indexed whole-program model; built by :func:`build_project`."""

    def __init__(self) -> None:
        self.modules: dict = {}  # relname -> ModuleInfo
        self.classes: dict = {}  # qualname -> ClassInfo
        self.functions: dict = {}  # qualname -> FuncInfo (all, incl nested)
        self.classes_by_name: dict = {}  # simple name -> [ClassInfo]
        self.methods_by_name: dict = {}  # name -> [FuncInfo]
        self.subclasses: dict = {}  # class qualname -> set of qualnames
        #: slot key -> {"members": set[FuncInfo], "edges": set[slotkey]}
        self.slots: dict = {}
        self.roots: list = []  # RootInfo
        self.rng_sites: set = set()  # "file.py:NN" of default_rng() calls
        self.lock_labels: dict = {}  # site -> "module.Class.field"
        self.basenames: set = set()  # project file basenames
        self._slot_cache: dict = {}

    # -- resolution helpers --------------------------------------------------

    def resolve_class_name(
        self, name: str, module: Optional[ModuleInfo]
    ) -> Optional[ClassInfo]:
        if module is not None:
            ci = module.classes.get(name)
            if ci is not None:
                return ci
            target = module.imports.get(name)
            if target is not None:
                ci = self.classes.get(target)
                if ci is not None:
                    return ci
                # "pkg.mod.Class" import: try trailing segment lookup
                tail = target.rsplit(".", 1)[-1]
                hits = self.classes_by_name.get(tail, [])
                if len(hits) == 1:
                    return hits[0]
        hits = self.classes_by_name.get(name, [])
        if len(hits) == 1:
            return hits[0]
        return None

    def mro(self, qualname: str) -> list:
        """Approximate linearization: the class, then bases depth-first."""
        out, seen, work = [], set(), [qualname]
        while work:
            q = work.pop(0)
            if q in seen:
                continue
            seen.add(q)
            ci = self.classes.get(q)
            if ci is None:
                continue
            out.append(ci)
            work.extend(ci.base_quals)
        return out

    def resolve_method(self, class_qual: str, name: str) -> list:
        """Implementations of ``name`` callable on a ``class_qual`` value:
        the inherited definition plus every subclass override."""
        out: list = []
        for ci in self.mro(class_qual):
            fi = ci.methods.get(name)
            if fi is not None:
                out.append(fi)
                break
        work = [class_qual]
        seen = set()
        while work:
            q = work.pop()
            if q in seen:
                continue
            seen.add(q)
            for sub in self.subclasses.get(q, ()):
                ci = self.classes.get(sub)
                if ci is not None and name in ci.methods:
                    out.append(ci.methods[name])
                work.append(sub)
        # dedupe, stable order
        uniq: dict = {}
        for fi in out:
            uniq[fi.qualname] = fi
        return list(uniq.values())

    def fallback_methods(self, name: str) -> list:
        """Unknown-receiver resolution: every project method named
        ``name``, when the name is distinctive enough to mean something."""
        if name.startswith("__") or name in _FALLBACK_STOPLIST:
            return []
        cands = self.methods_by_name.get(name, [])
        owners = {fi.cls for fi in cands}
        if not cands or len(owners) > _FALLBACK_LIMIT:
            return []
        return list(cands)

    def slot(self, key: tuple) -> dict:
        s = self.slots.get(key)
        if s is None:
            s = {"members": set(), "edges": set()}
            self.slots[key] = s
        return s

    def slot_members(self, key: tuple) -> set:
        """Transitive concrete callables reachable through a slot."""
        cached = self._slot_cache.get(key)
        if cached is not None:
            return cached
        out: set = set()
        self._slot_cache[key] = out  # break cycles
        seen, work = set(), [key]
        while work:
            k = work.pop()
            if k in seen:
                continue
            seen.add(k)
            s = self.slots.get(k)
            if s is None:
                continue
            out.update(s["members"])
            work.extend(s["edges"])
        return out

    def field(self, class_qual: str, attr: str) -> Optional[FieldInfo]:
        for ci in self.mro(class_qual):
            fi = ci.fields.get(attr)
            if fi is not None:
                return fi
        return None

    def is_project_site(self, site: str) -> bool:
        """True when a runtime lock name points into the linted tree."""
        base = site.rsplit(":", 1)[0]
        return base in self.basenames

    def canonical_site(self, site: str) -> str:
        """Map a runtime lock name onto the static vocabulary."""
        if site in self.rng_sites:
            return RNG_SITE
        if not self.is_project_site(site):
            base = site.rsplit(":", 1)[0].rsplit("/", 1)[-1]
            return f"<ext:{base}>"
        return site


# ---------------------------------------------------------------------------
# pass 1: index modules, classes, functions
# ---------------------------------------------------------------------------


def _module_relname(path: Path, roots: Sequence[Path]) -> str:
    for root in roots:
        try:
            rel = path.resolve().relative_to(root.resolve())
        except ValueError:
            continue
        return ".".join(rel.with_suffix("").parts)
    return path.stem


def _collect_imports(tree: ast.Module) -> dict:
    imports: dict = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom):
            mod = node.module or ""
            for alias in node.names:
                imports[alias.asname or alias.name] = (
                    f"{mod}.{alias.name}" if mod else alias.name
                )
    return imports


def _is_frozen_dataclass(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            name = dec.func.attr if isinstance(dec.func, ast.Attribute) else (
                dec.func.id if isinstance(dec.func, ast.Name) else ""
            )
            if name == "dataclass":
                for kw in dec.keywords:
                    if kw.arg == "frozen" and isinstance(
                        kw.value, ast.Constant
                    ):
                        return bool(kw.value.value)
    return False


def _base_name(expr: ast.expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return ""


def _index_module(project: Project, mi: ModuleInfo) -> None:
    def index_func(
        node: Union[ast.FunctionDef, ast.AsyncFunctionDef],
        qual: str,
        cls: Optional[str],
        parent: Optional[FuncInfo],
    ) -> FuncInfo:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        if args.vararg:
            params.append(args.vararg.arg)
        params.extend(a.arg for a in args.kwonlyargs)
        if args.kwarg:
            params.append(args.kwarg.arg)
        annotations = {}
        for a in args.posonlyargs + args.args + args.kwonlyargs:
            if a.annotation is not None:
                annotations[a.arg] = ast.unparse(a.annotation)
        if node.returns is not None:
            annotations["return"] = ast.unparse(node.returns)
        fi = FuncInfo(
            qualname=qual, name=node.name, module=mi, cls=cls, node=node,
            line=node.lineno, params=params, annotations=annotations,
            parent=parent,
        )
        project.functions[qual] = fi
        if cls is not None and parent is None:
            project.methods_by_name.setdefault(node.name, []).append(fi)
        for child in ast.iter_child_nodes(node):
            index_body(child, qual, None, fi)
        return fi

    def index_body(
        node: ast.AST, prefix: str, cls: Optional[str],
        parent: Optional[FuncInfo],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fi = index_func(node, f"{prefix}.{node.name}", cls, parent)
            if cls is not None and parent is None:
                project.classes[cls].methods[node.name] = fi
            elif parent is None:
                mi.functions[node.name] = fi
        elif isinstance(node, ast.ClassDef) and parent is None:
            qual = f"{prefix}.{node.name}"
            ci = ClassInfo(
                qualname=qual, name=node.name, module=mi, node=node,
                bases=[_base_name(b) for b in node.bases if _base_name(b)],
                frozen=_is_frozen_dataclass(node),
            )
            project.classes[qual] = ci
            project.classes_by_name.setdefault(node.name, []).append(ci)
            for child in ast.iter_child_nodes(node):
                index_body(child, qual, qual, None)
        else:
            for child in ast.iter_child_nodes(node):
                index_body(child, prefix, cls, parent)

    for node in mi.tree.body:
        index_body(node, mi.relname, None, None)


# ---------------------------------------------------------------------------
# pass 2: field typing (construction-site lock identity)
# ---------------------------------------------------------------------------


def _dotted(expr: ast.expr) -> str:
    parts: list = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        parts.append(expr.id)
        return ".".join(reversed(parts))
    return ""


def _construct_kind(call: ast.Call, mi: ModuleInfo) -> Optional[tuple]:
    """Classify a constructor call: (kind, reentrant) for modelled types.

    Returns None for ordinary calls.  ``kind`` is one of lock/event/
    queue/thread/sem/rng/condition.
    """
    dotted = _dotted(call.func)
    if not dotted:
        return None
    head, _, tail = dotted.rpartition(".")
    name = tail or dotted
    origin = mi.imports.get(dotted.split(".")[0], dotted.split(".")[0])
    if name in _LOCK_FACTORIES and (
        head in ("threading", "") or origin.startswith("threading")
    ):
        imported = mi.imports.get(dotted, "")
        if head == "threading" or imported.startswith("threading."):
            return ("lock", _LOCK_FACTORIES[name])
    if head == "threading" or mi.imports.get(dotted, "").startswith(
        "threading."
    ):
        if name == "Event":
            return ("event", True)
        if name == "Condition":
            return ("condition", True)
        if name in _QUEUE_CLASSES:
            return ("queue", True)
        if name in _THREAD_CLASSES:
            return ("thread", True)
        if name in _SYNC_CLASSES:
            return ("sem", True)
    if name in _QUEUE_CLASSES and (
        head == "queue" or mi.imports.get(dotted, "").startswith("queue.")
    ):
        return ("queue", True)
    if name == "default_rng":
        return ("rng", True)
    return None


def _site_of(call: ast.AST, mi: ModuleInfo) -> str:
    return f"{mi.basename}:{call.lineno}"


def _field_types_from_annotation(
    project: Project, mi: ModuleInfo, raw: Optional[str]
) -> set:
    return set(_resolve_annotation(project, mi, raw))


def _resolve_annotation(
    project: Project, mi: ModuleInfo, raw: Optional[str]
) -> list:
    """Resolve an annotation string to project class qualnames."""
    if not raw:
        return []
    raw = raw.strip().strip("'\"")
    for wrapper in ("Optional[", "Type[", "type["):
        if raw.startswith(wrapper) and raw.endswith("]"):
            raw = raw[len(wrapper):-1]
            if wrapper != "Optional[":
                return []  # a class object, not an instance
    if raw.startswith("Union[") and raw.endswith("]"):
        parts = _split_args(raw[len("Union["):-1])
    elif "|" in raw:
        parts = [p.strip() for p in raw.split("|")]
    else:
        parts = [raw]
    out: list = []
    for part in parts:
        part = part.strip().strip("'\"")
        if part in ("None", "", "object", "Any"):
            continue
        if part.startswith(("Callable", "list[", "dict[", "tuple[",
                            "set[", "frozenset[", "Sequence[",
                            "Iterable[", "Mapping[")):
            continue
        base = part.split("[", 1)[0]
        name = base.rsplit(".", 1)[-1]
        ci = project.resolve_class_name(name, mi)
        if ci is not None:
            out.append(ci.qualname)
    return out


def _split_args(s: str) -> list:
    parts, depth, cur = [], 0, ""
    for ch in s:
        if ch == "," and depth == 0:
            parts.append(cur)
            cur = ""
            continue
        if ch in "[(":
            depth += 1
        elif ch in "])":
            depth -= 1
        cur += ch
    if cur.strip():
        parts.append(cur)
    return parts


def _collect_fields(project: Project) -> None:
    """Scan every assignment for field definitions — ``self.x = ...`` in
    methods, cross-object ``expr.attr = ...``, module-level globals."""
    pending_aliases: list = []  # (ClassInfo, field name, wrapped attr name)

    def classify_value(
        mi: ModuleInfo, fi: FieldInfo, value: ast.expr,
        owner: Optional[ClassInfo],
    ) -> None:
        if isinstance(value, ast.IfExp):
            classify_value(mi, fi, value.body, owner)
            classify_value(mi, fi, value.orelse, owner)
            return
        if isinstance(value, ast.BoolOp):
            for v in value.values:
                classify_value(mi, fi, v, owner)
            return
        if not isinstance(value, ast.Call):
            return
        kind = _construct_kind(value, mi)
        if kind is not None:
            k, reentrant = kind
            site = _site_of(value, mi)
            if k == "rng":
                project.rng_sites.add(site)
                fi.kind, fi.site = "rng", RNG_SITE
            elif k == "queue":
                fi.kind, fi.site = "queue", QUEUE_SITE
            elif k == "condition":
                args = value.args
                if args and isinstance(args[0], ast.Attribute) and (
                    isinstance(args[0].value, ast.Name)
                    and args[0].value.id == "self"
                    and owner is not None
                ):
                    fi.kind = "lock"
                    fi.reentrant = True
                    fi.alias_of = args[0].attr
                    pending_aliases.append((owner, fi.name, args[0].attr))
                else:
                    fi.kind, fi.site, fi.reentrant = "lock", site, True
            else:
                fi.kind, fi.site, fi.reentrant = k, site, reentrant
            if fi.kind == "lock" and fi.site:
                label = (
                    f"{owner.qualname}.{fi.name}" if owner else
                    f"{mi.relname}.{fi.name}"
                )
                project.lock_labels.setdefault(fi.site, label)
            return
        # Ordinary constructor: ClassName(...)
        dotted = _dotted(value.func)
        if dotted:
            name = dotted.rsplit(".", 1)[-1]
            ci = project.resolve_class_name(name, mi)
            if ci is not None:
                fi.types.add(ci.qualname)

    for mi in project.modules.values():
        # module-level globals
        for node in mi.tree.body:
            if isinstance(node, ast.Assign) and len(node.targets) == 1 and (
                isinstance(node.targets[0], ast.Name)
            ):
                name = node.targets[0].id
                fi = mi.globals.setdefault(
                    name, FieldInfo(name=name, line=node.lineno)
                )
                classify_value(mi, fi, node.value, None)

    for func in list(project.functions.values()):
        mi = func.module
        owner = project.classes.get(func.cls) if func.cls else None
        in_init = func.name in ("__init__", "__post_init__")
        for node in ast.walk(func.node):
            targets: list = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, ast.AnnAssign):
                targets, value = [node.target], None
            else:
                continue
            for target in targets:
                if not isinstance(target, ast.Attribute):
                    continue
                base = target.value
                tcls: Optional[ClassInfo] = None
                if isinstance(base, ast.Name) and base.id == "self" and (
                    owner is not None
                ):
                    tcls = owner
                if tcls is None:
                    continue
                fi = tcls.fields.setdefault(
                    target.attr,
                    FieldInfo(name=target.attr, line=target.lineno),
                )
                if not in_init:
                    fi.init_only_writes = False
                if isinstance(node, ast.AnnAssign) and node.annotation:
                    fi.types |= _field_types_from_annotation(
                        project, mi, ast.unparse(node.annotation)
                    )
                if value is None:
                    continue
                classify_value(mi, fi, value, tcls)
                if isinstance(value, ast.Name) and value.id in func.params:
                    fi.types |= _field_types_from_annotation(
                        project, mi, func.annotations.get(value.id)
                    )
                if isinstance(value, ast.IfExp):
                    for branch in (value.body, value.orelse):
                        if isinstance(branch, ast.Name) and (
                            branch.id in func.params
                        ):
                            fi.types |= _field_types_from_annotation(
                                project, mi,
                                func.annotations.get(branch.id),
                            )

    # Resolve Condition(self._lock) aliases now that all fields exist.
    for owner, fname, wrapped in pending_aliases:
        wrapped_fi = owner.fields.get(wrapped)
        fi = owner.fields.get(fname)
        if fi is not None and wrapped_fi is not None and wrapped_fi.site:
            fi.site = wrapped_fi.site
            fi.reentrant = wrapped_fi.reentrant


def _link_hierarchy(project: Project) -> None:
    for ci in project.classes.values():
        for base in ci.bases:
            resolved = project.resolve_class_name(base, ci.module)
            if resolved is not None and resolved is not ci:
                ci.base_quals.append(resolved.qualname)
                project.subclasses.setdefault(
                    resolved.qualname, set()
                ).add(ci.qualname)


# ---------------------------------------------------------------------------
# pass 3: per-function summaries (the held-locks abstract walk)
# ---------------------------------------------------------------------------

#: env value tokens:  class qualname | "@cb:<slotrepr>" | "@<kind>:<site>"
def _cb_token(key: tuple) -> str:
    return "@cb:" + "|".join(str(k) for k in key)


def _cb_key(token: str) -> tuple:
    return tuple(token[len("@cb:"):].split("|"))


class _SummaryBuilder:
    """Walks one function body, emitting Acquire/Call/Access events."""

    def __init__(self, project: Project, func: FuncInfo) -> None:
        self.p = project
        self.f = func
        self.mi = func.module
        self.owner: Optional[ClassInfo] = (
            project.classes.get(func.cls) if func.cls else None
        )
        self.env: dict = dict(func.closure_env)
        for p in func.params:
            types = set(
                _resolve_annotation(
                    project, self.mi, func.annotations.get(p)
                )
            )
            types.add(_cb_token(("param", func.qualname, p)))
            self.env[p] = types
        if func.params and func.params[0] == "self" and func.cls:
            self.env["self"] = {func.cls}

    # -- entry ---------------------------------------------------------------

    def run(self) -> None:
        node = self.f.node
        if isinstance(node, ast.Lambda):
            self.eval_expr(node.body, frozenset())
        else:
            self.walk_stmts(node.body, frozenset())
        self.f.summarized = True

    # -- statements ----------------------------------------------------------

    def walk_stmts(self, stmts: Sequence[ast.stmt], held: frozenset) -> None:
        for stmt in stmts:
            self.walk_stmt(stmt, held)

    def walk_stmt(self, stmt: ast.stmt, held: frozenset) -> None:
        if isinstance(stmt, ast.With) or isinstance(stmt, ast.AsyncWith):
            new_held = held
            for item in stmt.items:
                sites = self.lock_sites_of(item.context_expr)
                if sites:
                    for site in sites:
                        if site not in new_held:
                            self.f.events.append(
                                AcquireEvent(
                                    site=site, held=new_held,
                                    line=item.context_expr.lineno,
                                )
                            )
                            new_held = new_held | {site}
                else:
                    self.eval_expr(item.context_expr, held)
                if item.optional_vars is not None and isinstance(
                    item.optional_vars, ast.Name
                ):
                    self.env[item.optional_vars.id] = set(sites)
            self.walk_stmts(stmt.body, new_held)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            nested = self.p.functions.get(
                f"{self.f.qualname}.{stmt.name}"
            )
            if nested is not None:
                nested.closure_env = dict(self.env)
                self.env[stmt.name] = {
                    _cb_token(("func", nested.qualname))
                }
        elif isinstance(stmt, ast.Assign):
            vtypes = self.eval_expr(stmt.value, held)
            for target in stmt.targets:
                self.bind_target(target, stmt.value, vtypes, held)
        elif isinstance(stmt, ast.AnnAssign):
            vtypes = (
                self.eval_expr(stmt.value, held) if stmt.value else set()
            )
            if stmt.annotation is not None:
                vtypes = vtypes | set(
                    _resolve_annotation(
                        self.p, self.mi, ast.unparse(stmt.annotation)
                    )
                )
            self.bind_target(stmt.target, stmt.value, vtypes, held)
        elif isinstance(stmt, ast.AugAssign):
            self.eval_expr(stmt.value, held)
            self.record_access(stmt.target, "w", held, aug=True)
        elif isinstance(stmt, ast.For):
            itypes = self.eval_expr(stmt.iter, held)
            self.bind_loop_target(stmt.target, stmt.iter, itypes)
            self.walk_stmts(stmt.body, held)
            self.walk_stmts(stmt.orelse, held)
        elif isinstance(stmt, ast.While):
            self.eval_expr(stmt.test, held)
            self.walk_stmts(stmt.body, held)
            self.walk_stmts(stmt.orelse, held)
        elif isinstance(stmt, ast.If):
            self.eval_expr(stmt.test, held)
            self.walk_stmts(stmt.body, held)
            self.walk_stmts(stmt.orelse, held)
        elif isinstance(stmt, ast.Try):
            self.walk_stmts(stmt.body, held)
            for handler in stmt.handlers:
                self.walk_stmts(handler.body, held)
            self.walk_stmts(stmt.orelse, held)
            self.walk_stmts(stmt.finalbody, held)
        elif isinstance(stmt, (ast.Return, ast.Expr)):
            if stmt.value is not None:
                self.eval_expr(stmt.value, held)
        elif isinstance(stmt, (ast.Raise,)):
            if stmt.exc is not None:
                self.eval_expr(stmt.exc, held)
        elif isinstance(stmt, ast.Delete):
            for t in stmt.targets:
                self.record_access(t, "w", held)
        elif isinstance(stmt, ast.Assert):
            self.eval_expr(stmt.test, held)
        # pass/break/continue/import/global: nothing to do

    # -- binding helpers ----------------------------------------------------

    def bind_target(
        self,
        target: ast.expr,
        value: Optional[ast.expr],
        vtypes: set,
        held: frozenset,
    ) -> None:
        if isinstance(target, ast.Name):
            self.env[target.id] = set(vtypes)
        elif isinstance(target, ast.Attribute):
            self.record_access(target, "w", held)
            # Callable flowing into a field slot (engine.deliver = fn).
            if value is not None:
                self.feed_field_slot(target, value)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                # Tuple unpack: propagate callback tokens (heappop rows).
                self.bind_target(
                    elt, None,
                    {t for t in vtypes if t.startswith("@cb:")},
                    held,
                )
        elif isinstance(target, ast.Subscript):
            self.record_access(target.value, "w", held)
            if value is not None and isinstance(target.value, ast.Attribute):
                self.feed_field_slot(target.value, value)
            self.eval_expr(target.slice, held)

    def bind_loop_target(
        self, target: ast.expr, iter_expr: ast.expr, itypes: set
    ) -> None:
        tokens = {t for t in itypes if t.startswith("@cb:")}
        if isinstance(target, ast.Name):
            self.env[target.id] = set(tokens)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                if isinstance(elt, ast.Name):
                    self.env[elt.id] = set(tokens)

    def module_ref(self, name: str) -> Optional[ModuleInfo]:
        """Resolve a bare name to a project module (import alias or
        direct relname) so ``scale.run_cluster_scaling()`` resolves."""
        if name in self.env:
            return None
        cands = []
        target = self.mi.imports.get(name)
        if target is not None:
            cands.append(target)
        cands.append(name)
        for t in cands:
            mi = self.p.modules.get(t)
            if mi is not None:
                return mi
            suffix = "." + t
            hits = [
                m for rel, m in self.p.modules.items()
                if rel.endswith(suffix)
            ]
            if len(hits) == 1:
                return hits[0]
        return None

    def owner_field_slot(self, attr_expr: ast.Attribute) -> Optional[tuple]:
        """Slot key for ``<typed expr>.attr`` (a callable-bearing field)."""
        for cls_q in self.class_types_of(attr_expr.value):
            return ("field", cls_q, attr_expr.attr)
        return None

    def feed_field_slot(
        self, target: ast.Attribute, value: ast.expr
    ) -> None:
        key = self.owner_field_slot(target)
        if key is None:
            return
        self.feed_slot(key, value)

    def feed_slot(self, key: tuple, value: ast.expr) -> None:
        """Record every callable that may flow into ``key``."""
        for member in self.callables_of(value):
            if isinstance(member, FuncInfo):
                self.p.slot(key)["members"].add(member)
            else:
                self.p.slot(key)["edges"].add(member)

    # -- expression evaluation ----------------------------------------------

    def class_types_of(self, expr: ast.expr) -> list:
        return [
            t for t in self.eval_expr(expr, frozenset(), quiet=True)
            if not t.startswith("@")
        ]

    def callables_of(self, expr: ast.expr) -> list:
        """Concrete FuncInfos / slot keys a callable expression denotes."""
        out: list = []
        if isinstance(expr, ast.Lambda):
            out.append(self.make_lambda(expr))
        elif isinstance(expr, ast.Name):
            for tok in self.env.get(expr.id, set()):
                if tok.startswith("@cb:"):
                    key = _cb_key(tok)
                    if key[0] == "func":
                        fi = self.p.functions.get(key[1])
                        if fi is not None:
                            out.append(fi)
                    else:
                        out.append(key)
            mod_fn = self.mi.functions.get(expr.id)
            if mod_fn is not None:
                out.append(mod_fn)
            imported = self.mi.imports.get(expr.id)
            if imported is not None:
                fi = self.p.functions.get(imported)
                if fi is None:
                    tail = imported.rsplit(".", 1)[-1]
                    for m in self.p.modules.values():
                        if tail in m.functions:
                            out.append(m.functions[tail])
                            break
                else:
                    out.append(fi)
        elif isinstance(expr, ast.Attribute):
            if isinstance(expr.value, ast.Name):
                mod = self.module_ref(expr.value.id)
                if mod is not None:
                    fn = mod.functions.get(expr.attr)
                    if fn is not None:
                        return [fn]
            base_types = self.class_types_of(expr.value)
            resolved = False
            for cls_q in base_types:
                fis = self.p.resolve_method(cls_q, expr.attr)
                if fis:
                    out.extend(fis)
                    resolved = True
                fld = self.p.field(cls_q, expr.attr)
                if fld is not None:
                    out.append(("field", cls_q, expr.attr))
                    resolved = True
            if not resolved:
                out.extend(self.p.fallback_methods(expr.attr))
        return out

    def make_lambda(self, node: ast.Lambda) -> FuncInfo:
        qual = f"{self.f.qualname}.<lambda:{node.lineno}:{node.col_offset}>"
        existing = self.p.functions.get(qual)
        if existing is not None:
            return existing
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args]
        fi = FuncInfo(
            qualname=qual, name="<lambda>", module=self.mi, cls=self.f.cls,
            node=node, line=node.lineno, params=params,
            parent=self.f, closure_env=dict(self.env),
        )
        self.p.functions[qual] = fi
        _SummaryBuilder(self.p, fi).run()
        return fi

    def lock_sites_of(self, expr: ast.expr) -> list:
        """Lock sites a ``with`` context expression denotes (if any)."""
        out: list = []
        if isinstance(expr, ast.Attribute):
            for cls_q in self.class_types_of(expr.value):
                fld = self.p.field(cls_q, expr.attr)
                if fld is not None and fld.kind in ("lock", "sem") and (
                    fld.site
                ):
                    out.append(fld.site)
            if not out and isinstance(expr.value, ast.Name):
                g = self.mi.globals.get(_dotted(expr))
                if g is not None and g.kind == "lock" and g.site:
                    out.append(g.site)
        elif isinstance(expr, ast.Name):
            g = self.mi.globals.get(expr.id)
            if g is not None and g.kind == "lock" and g.site:
                out.append(g.site)
            for tok in self.env.get(expr.id, set()):
                if tok.startswith("@lock:"):
                    out.append(tok[len("@lock:"):])
        return out

    def record_access(
        self,
        expr: ast.expr,
        kind: str,
        held: frozenset,
        aug: bool = False,
    ) -> None:
        if not isinstance(expr, ast.Attribute):
            return
        # Accesses through a locally-constructed object are thread-
        # confined until the object escapes; attributing them to the
        # enclosing thread root would be object-insensitive noise
        # (``tr = Trace(...); tr.channel = ch`` is not a shared write).
        if isinstance(expr.value, ast.Name) and "@fresh" in self.env.get(
            expr.value.id, ()
        ):
            return
        for cls_q in self.class_types_of(expr.value):
            if cls_q in self.p.classes:
                self.f.events.append(
                    AccessEvent(
                        cls=cls_q, attr=expr.attr, kind=kind,
                        held=held, line=expr.lineno,
                    )
                )
                if aug:
                    self.f.events.append(
                        AccessEvent(
                            cls=cls_q, attr=expr.attr, kind="r",
                            held=held, line=expr.lineno,
                        )
                    )

    def eval_expr(
        self, expr: ast.expr, held: frozenset, quiet: bool = False
    ) -> set:
        """Emit events for ``expr`` and return its type token set."""
        if isinstance(expr, ast.Name):
            tokens = set(self.env.get(expr.id, set()))
            ci = self.p.resolve_class_name(expr.id, self.mi)
            if ci is not None:
                tokens.add(f"@class:{ci.qualname}")
            mod_fn = self.mi.functions.get(expr.id)
            if mod_fn is not None:
                tokens.add(_cb_token(("func", mod_fn.qualname)))
            else:
                imported = self.mi.imports.get(expr.id)
                if imported is not None and imported in self.p.functions:
                    tokens.add(_cb_token(("func", imported)))
            return tokens
        if isinstance(expr, ast.Attribute):
            if not quiet:
                self.record_access(expr, "r", held)
            out: set = set()
            for cls_q in self.class_types_of(expr.value):
                fld = self.p.field(cls_q, expr.attr)
                if fld is not None:
                    out |= set(fld.types)
                    if fld.kind != "plain":
                        out.add(f"@{fld.kind}:{fld.site or ''}")
                    out.add(_cb_token(("field", cls_q, expr.attr)))
                for m in self.p.resolve_method(cls_q, expr.attr):
                    out.add(_cb_token(("func", m.qualname)))
            return out
        if isinstance(expr, ast.Call):
            return self.eval_call(expr, held, quiet=quiet)
        if isinstance(expr, ast.Lambda):
            return {_cb_token(("func", self.make_lambda(expr).qualname))}
        if isinstance(expr, ast.IfExp):
            self.eval_expr(expr.test, held, quiet=quiet)
            return self.eval_expr(expr.body, held, quiet=quiet) | (
                self.eval_expr(expr.orelse, held, quiet=quiet)
            )
        if isinstance(expr, ast.BoolOp):
            out = set()
            for v in expr.values:
                out |= self.eval_expr(v, held, quiet=quiet)
            return out
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for elt in expr.elts:
                out |= self.eval_expr(elt, held, quiet=quiet)
            return out
        if isinstance(expr, ast.Dict):
            # A dict is a callable container too (CLI handler tables):
            # keep the values' callback tokens so ``handlers[cmd](...)``
            # still resolves.
            out = set()
            for k in expr.keys:
                if k is not None:
                    self.eval_expr(k, held, quiet=quiet)
            for v in expr.values:
                out |= self.eval_expr(v, held, quiet=quiet)
            return {t for t in out if t.startswith("@cb:")}
        if isinstance(expr, ast.Subscript):
            base = self.eval_expr(expr.value, held, quiet=quiet)
            self.eval_expr(expr.slice, held, quiet=True)
            return {t for t in base if t.startswith("@cb:")}
        if isinstance(expr, ast.Compare):
            self.eval_expr(expr.left, held, quiet=quiet)
            for c in expr.comparators:
                self.eval_expr(c, held, quiet=quiet)
            return set()
        if isinstance(expr, ast.BinOp):
            self.eval_expr(expr.left, held, quiet=quiet)
            self.eval_expr(expr.right, held, quiet=quiet)
            return set()
        if isinstance(expr, ast.UnaryOp):
            return self.eval_expr(expr.operand, held, quiet=quiet)
        if isinstance(expr, (ast.ListComp, ast.SetComp, ast.GeneratorExp,
                             ast.DictComp)):
            for gen in expr.generators:
                self.eval_expr(gen.iter, held, quiet=quiet)
                for cond in gen.ifs:
                    self.eval_expr(cond, held, quiet=quiet)
            if isinstance(expr, ast.DictComp):
                self.eval_expr(expr.key, held, quiet=quiet)
                self.eval_expr(expr.value, held, quiet=quiet)
            else:
                self.eval_expr(expr.elt, held, quiet=quiet)
            return set()
        if isinstance(expr, ast.JoinedStr):
            for v in expr.values:
                if isinstance(v, ast.FormattedValue):
                    self.eval_expr(v.value, held, quiet=quiet)
            return set()
        if isinstance(expr, ast.Starred):
            return self.eval_expr(expr.value, held, quiet=quiet)
        if isinstance(expr, ast.NamedExpr):
            vtypes = self.eval_expr(expr.value, held, quiet=quiet)
            if isinstance(expr.target, ast.Name):
                self.env[expr.target.id] = set(vtypes)
            return vtypes
        return set()

    # -- calls ----------------------------------------------------------------

    def eval_call(
        self, call: ast.Call, held: frozenset, quiet: bool = False
    ) -> set:
        # Evaluate arguments first (their own accesses/calls count).
        for arg in call.args:
            self.eval_expr(arg, held, quiet=quiet)
        for kw in call.keywords:
            self.eval_expr(kw.value, held, quiet=quiet)

        callees: list = []
        result_types: set = set()

        kind = _construct_kind(call, self.mi)
        if kind is not None:
            k, reentrant = kind
            site = _site_of(call, self.mi)
            if k == "rng":
                self.p.rng_sites.add(site)
                return {"@rng:" + RNG_SITE}
            if k == "queue":
                return {"@queue:" + QUEUE_SITE}
            if k == "thread":
                self._detect_spawn(call, kind="thread")
                return {"@thread:" + site}
            if k in ("lock", "condition", "sem"):
                tok = "@lock:" + site
                return {tok}
            if k == "event":
                return {"@event:" + site}

        func = call.func
        fname = (
            func.attr if isinstance(func, ast.Attribute)
            else func.id if isinstance(func, ast.Name) else ""
        )
        # heapq flows: heappush feeds the heap's registry slot, heappop
        # yields its contents (the deferred-callback stores, e.g. the
        # virtual clock's event heap).
        if fname == "heappush" and call.args and isinstance(
            call.args[0], ast.Attribute
        ):
            key = self.owner_field_slot(call.args[0])
            if key is not None:
                for extra in call.args[1:]:
                    self.feed_slot(key, extra)
                    if isinstance(extra, (ast.Tuple, ast.List)):
                        for elt in extra.elts:
                            self.feed_slot(key, elt)
        if fname in ("heappop", "heapreplace") and call.args and isinstance(
            call.args[0], ast.Attribute
        ):
            base_tokens = self.eval_expr(call.args[0], held, quiet=True)
            return {t for t in base_tokens if t.startswith("@cb:")}
        # Builtin pass-throughs keep callback tokens flowing through
        # ``list(self._listeners)``-style defensive copies.
        if isinstance(func, ast.Name) and fname in (
            "list", "tuple", "set", "sorted", "iter", "reversed", "frozenset"
        ) and len(call.args) == 1:
            inner = self.eval_expr(call.args[0], held, quiet=True)
            return {t for t in inner if t.startswith("@cb:")}

        if isinstance(func, ast.Attribute):
            meth = func.attr
            # module-qualified call: scale.run_cluster_scaling(...)
            if isinstance(func.value, ast.Name):
                mod = self.module_ref(func.value.id)
                if mod is not None:
                    target = mod.functions.get(meth)
                    if target is not None:
                        callees.append(target)
                    tci = mod.classes.get(meth)
                    if tci is not None:
                        callees.extend(
                            self.p.resolve_method(tci.qualname, "__init__")
                        )
                        result_types |= {tci.qualname, "@fresh"}
                        if tci.name.endswith("SupervisedThread"):
                            self._detect_spawn(call, kind="supervised")
                    if target is not None or tci is not None:
                        for fi in [
                            c for c in callees if isinstance(c, FuncInfo)
                        ]:
                            self._feed_params(fi, call)
                            ret = fi.annotations.get("return")
                            result_types |= set(
                                _resolve_annotation(self.p, fi.module, ret)
                            )
                        if any(
                            isinstance(c, FuncInfo) for c in callees
                        ):
                            self.f.events.append(
                                CallEvent(
                                    callees=[
                                        c for c in callees
                                        if isinstance(c, FuncInfo)
                                    ],
                                    held=held,
                                    line=call.lineno,
                                )
                            )
                        return result_types
            base_types = self.eval_expr(func.value, held, quiet=True)
            if meth in ("values", "copy", "items"):
                return {t for t in base_types if t.startswith("@cb:")}
            resolved = False
            for tok in base_types:
                if tok.startswith("@"):
                    self._special_op(tok, meth, held, call.lineno)
                    if tok.startswith("@cb:"):
                        key = _cb_key(tok)
                        if key[0] == "field" and meth in _MUTATORS:
                            # self.F.append(fn): feed the registry slot.
                            for arg in call.args:
                                self.feed_slot(
                                    (key[0], key[1], key[2]), arg
                                )
                            self._mark_mutation(func.value, held)
                    continue
                fis = self.p.resolve_method(tok, meth)
                if fis:
                    callees.extend(fis)
                    resolved = True
                if tok.startswith("@class:"):
                    cls_q = tok[len("@class:"):]
                    init = self.p.resolve_method(cls_q, "__init__")
                    callees.extend(init)
                    result_types.add(cls_q)
                    result_types.add("@fresh")
                    resolved = True
            if not resolved and not callees:
                callees.extend(self.p.fallback_methods(meth))
            if meth in _MUTATORS and isinstance(func.value, ast.Attribute):
                self._mark_mutation(func.value, held)
        elif isinstance(func, ast.Name):
            # constructor of a project class?
            ci = self.p.resolve_class_name(func.id, self.mi)
            if ci is not None:
                callees.extend(self.p.resolve_method(ci.qualname, "__init__"))
                result_types.add(ci.qualname)
                result_types.add("@fresh")
                if ci.name.endswith("SupervisedThread"):
                    self._detect_spawn(call, kind="supervised")
            else:
                if func.id in ("heappush",) and call.args:
                    # heappush(self._heap, (..., fn)) feeds the registry.
                    target = call.args[0]
                    if isinstance(target, ast.Attribute):
                        key = self.owner_field_slot(target)
                        if key is not None:
                            for extra in call.args[1:]:
                                self.feed_slot(key, extra)
                                if isinstance(extra, (ast.Tuple, ast.List)):
                                    for elt in extra.elts:
                                        self.feed_slot(key, elt)
                for member in self.callables_of(func):
                    if isinstance(member, FuncInfo):
                        callees.append(member)
                    else:
                        callees.extend(self.p.slot_members_late(member))
        elif isinstance(func, ast.Lambda):
            callees.append(self.make_lambda(func))
        else:
            # Calls through arbitrary expressions — ``handlers[cmd](args)``
            # dispatch tables, ``(a or b)()`` — resolve via whatever
            # callback tokens the expression evaluates to.
            for tok in self.eval_expr(func, held, quiet=True):
                if tok.startswith("@cb:"):
                    key = _cb_key(tok)
                    if key[0] == "func":
                        fi = self.p.functions.get(key[1])
                        if fi is not None:
                            callees.append(fi)
                    else:
                        callees.append(key)

        # spawn detection on resolved callees (HealthRegistry.spawn etc.)
        names = {fi.name for fi in callees}
        if "spawn" in names:
            self._detect_spawn(call, kind="supervised", skip_first=True)

        # feed parameter slots of every resolved callee
        concrete = [c for c in callees if isinstance(c, FuncInfo)]
        for fi in concrete:
            self._feed_params(fi, call)
            ret = fi.annotations.get("return")
            result_types |= set(_resolve_annotation(self.p, fi.module, ret))

        slot_refs = [c for c in callees if not isinstance(c, FuncInfo)]
        if isinstance(func, ast.Name) or isinstance(func, ast.Attribute):
            # calls through callback tokens bound to a bare name
            target_name = func.id if isinstance(func, ast.Name) else None
            if target_name is not None:
                for tok in self.env.get(target_name, set()):
                    if tok.startswith("@cb:"):
                        slot_refs.append(_cb_key(tok))
            elif isinstance(func, ast.Attribute):
                key = self.owner_field_slot(func)
                if key is not None:
                    slot_refs.append(key)

        if concrete or slot_refs:
            self.f.events.append(
                CallEvent(
                    callees=concrete + slot_refs, held=held,
                    line=call.lineno,
                )
            )
        return result_types

    def _mark_mutation(self, target: ast.expr, held: frozenset) -> None:
        if isinstance(target, ast.Attribute):
            self.record_access(target, "w", held)

    def _special_op(
        self, token: str, meth: str, held: frozenset, line: int
    ) -> None:
        """Model a method call on an external synchronized type."""
        kind, _, site = token[1:].partition(":")
        acquiring = {
            "event": _EVENT_ACQUIRING,
            "queue": _QUEUE_ACQUIRING,
            "thread": _THREAD_ACQUIRING,
            "sem": _SYNC_ACQUIRING,
        }.get(kind)
        if kind == "rng":
            acquiring = None  # every Generator method takes the lock
            if not meth.startswith("__"):
                self._acquire(RNG_SITE, held, line)
            return
        if acquiring is not None and meth in acquiring and site:
            self._acquire(site, held, line)
        if kind == "lock" and meth == "acquire" and site:
            self._acquire(site, held, line)

    def _acquire(self, site: str, held: frozenset, line: int) -> None:
        if site in held:
            return
        self.f.events.append(AcquireEvent(site=site, held=held, line=line))

    def _feed_params(self, callee: FuncInfo, call: ast.Call) -> None:
        params = list(callee.params)
        if params and params[0] == "self":
            params = params[1:]
        for i, arg in enumerate(call.args):
            if i < len(params) and self._is_callable_expr(arg):
                self.feed_slot(("param", callee.qualname, params[i]), arg)
        for kw in call.keywords:
            if kw.arg and kw.arg in callee.params and (
                self._is_callable_expr(kw.value)
            ):
                self.feed_slot(("param", callee.qualname, kw.arg), kw.value)

    def _is_callable_expr(self, expr: ast.expr) -> bool:
        if isinstance(expr, (ast.Lambda,)):
            return True
        if isinstance(expr, ast.Attribute):
            return bool(self.callables_of(expr))
        if isinstance(expr, ast.Name):
            return bool(self.callables_of(expr))
        return False

    def _detect_spawn(
        self, call: ast.Call, kind: str, skip_first: bool = False
    ) -> None:
        """Register thread-root targets from a spawn-shaped call."""
        target_exprs: list = []
        for kw in call.keywords:
            if kw.arg == "target":
                target_exprs.append(kw.value)
        if not target_exprs:
            args = call.args
            if kind == "thread":
                # threading.Timer(delay, fn)
                if len(args) >= 2:
                    target_exprs.append(args[1])
            else:
                # SupervisedThread(name, target) / spawn(name, target)
                idx = 1
                if len(args) > idx:
                    target_exprs.append(args[idx])
        for expr in target_exprs:
            for member in self.callables_of(expr):
                self.p.roots.append(
                    RootInfo(
                        func=member if isinstance(member, FuncInfo) else member,
                        kind=kind, spawn_func=self.f.qualname,
                        line=call.lineno,
                    )
                )


# Late slot expansion used while summaries are still being built: the
# slot tables fill up as functions are walked, so CallEvents keep the
# slot *keys* and expand them at analysis time (Project.slot_members).
def _slot_members_late(self: Project, key: tuple) -> list:
    return []


Project.slot_members_late = _slot_members_late  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# root discovery (beyond spawn sites)
# ---------------------------------------------------------------------------

_HTTPD_BASES = frozenset(
    {"BaseHTTPRequestHandler", "SimpleHTTPRequestHandler"}
)


def _discover_static_roots(project: Project) -> None:
    for ci in project.classes.values():
        if any(b in _HTTPD_BASES for b in ci.bases):
            for name, fi in ci.methods.items():
                if name.startswith("do_"):
                    project.roots.append(
                        RootInfo(
                            func=fi, kind="httpd",
                            spawn_func=None, line=fi.line,
                        )
                    )
    for qual, kind in (
        ("cluster.worker.worker_main", "worker-main"),
        ("cli.main", "cli-main"),
    ):
        fi = project.functions.get(qual)
        if fi is not None:
            project.roots.append(
                RootInfo(func=fi, kind=kind, spawn_func=None, line=fi.line)
            )


def _finalize_roots(project: Project) -> None:
    """Expand slot-key roots to concrete functions and dedupe."""
    out: dict = {}
    for root in project.roots:
        targets = (
            [root.func]
            if isinstance(root.func, FuncInfo)
            else sorted(
                project.slot_members(tuple(root.func)),
                key=lambda f: f.qualname,
            )
        )
        for fi in targets:
            # The supervision nursery's trampoline is not a user
            # entrypoint: every target it invokes is rooted at its own
            # spawn site, so rooting ``_run`` too would double-count
            # each thread (one thread, two "roots" → phantom races).
            if fi.name == "_run" and fi.cls and fi.cls.endswith(
                "SupervisedThread"
            ):
                continue
            key = (fi.qualname, root.kind)
            if key not in out:
                out[key] = RootInfo(
                    func=fi, kind=root.kind,
                    spawn_func=root.spawn_func, line=root.line,
                )
    project.roots = list(out.values())


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def build_project(paths: Sequence[Union[str, Path]]) -> Project:
    """Parse and index every Python file under ``paths``."""
    files = iter_python_files(paths)
    project = Project()
    roots = []
    for f in files:
        p = Path(f)
        for anc in [p] + list(p.parents):
            if anc.name == "repro":
                roots.append(anc)
                break
    if not roots:
        # Outside an installed ``repro`` tree (test fixtures, ad-hoc
        # trees) the given directories themselves are the package
        # roots, so ``cluster/worker.py`` still names ``cluster.worker``.
        roots = [Path(p).resolve() for p in paths if Path(p).is_dir()]
    root_dirs = sorted({r for r in roots}, key=lambda p: len(str(p)))

    for f in files:
        path = Path(f)
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            continue
        relname = _module_relname(path, root_dirs or [path.parent])
        mi = ModuleInfo(
            path=path, relname=relname, basename=path.name, tree=tree,
            source_lines=source.splitlines(),
            imports=_collect_imports(tree),
        )
        project.modules[relname] = mi
        project.basenames.add(path.name)

    for mi in project.modules.values():
        _index_module(project, mi)
    _link_hierarchy(project)
    _collect_fields(project)

    # Summaries: walk outer functions before their nested children so
    # closures see the enclosing environment.
    ordered = sorted(
        project.functions.values(), key=lambda fi: fi.qualname.count(".")
    )
    for fi in ordered:
        if not fi.summarized and not isinstance(fi.node, ast.Lambda):
            _SummaryBuilder(project, fi).run()

    _discover_static_roots(project)
    _finalize_roots(project)
    return project
