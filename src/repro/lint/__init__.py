"""Concurrency-correctness toolkit for the PoEm codebase.

PoEm's real-time guarantees (§3.2 Steps 1-7, §4.1 clock sync) rest on a
hundred-plus lock-guarded critical sections spread across the engine,
scheduler, TCP server, recorder, supervision and obs layers.  Nothing in
the runtime *proves* those layers keep obeying the invariants the
fault-tolerance / hot-path / observability PRs introduced — an emulator's
fidelity dies silently from scheduler stalls and lock inversions long
before anything crashes.  This package is the correctness backstop:

Two planes
----------

:mod:`repro.lint.analyzer` — ``poem lint``
    A dependency-free :mod:`ast` pass over ``src/`` enforcing the
    project-specific rules POEM001-POEM006 (raw threads, blocking calls
    under locks, Scene version-bump contract, per-packet recording on
    the hot path, swallowed exceptions, non-monotonic clocks).  Each
    finding carries a fix hint; ``# poem: ignore[RULE]`` suppresses a
    deliberate violation (always pair it with a justification comment).

:mod:`repro.lint.lockgraph` — the runtime lock-order detector
    :class:`InstrumentedLock` wraps real locks and records per-thread
    acquisition order into a global :class:`LockGraph`; cycles in that
    graph are *potential deadlocks* even if no run has hung yet, and
    contended acquires while already holding a lock are flagged as
    held-lock blocking waits.  :func:`instrument_module_locks` patches
    ``threading.Lock``/``RLock`` so a whole deployment built inside the
    context manager is instrumented transparently;
    :func:`repro.lint.runtime.run_runtime_check` runs a short
    virtual-transport emulation under it (``poem lint --runtime``).

:mod:`repro.lint.deep` — ``poem lint --deep``
    The whole-program plane: :mod:`repro.lint.callgraph` builds an
    interprocedural model (call graph, thread entrypoints, per-function
    lock/field summaries) and three passes run over it — POEM008 static
    shared-state races (:mod:`repro.lint.racecheck`), POEM009 static
    lock-order cycles cross-checked against the runtime graph
    (:mod:`repro.lint.staticlocks`), POEM010 cluster-protocol drift
    (:mod:`repro.lint.protocheck`).  Accepted findings live in the
    committed ``lint-baseline.json`` with per-entry justifications, so
    CI gates on *new* findings only.

Both are wired into CI (the ``lint`` job) and the operator console
(``lint`` command).  See ``docs/static-analysis.md`` for the rule
catalog, the runtime-detector guide and the deep-analysis guide.
"""

from __future__ import annotations

from .analyzer import lint_file, lint_paths, lint_source
from .callgraph import Project, build_project
from .deep import DEFAULT_BASELINE_NAME, DeepResult, load_baseline, run_deep
from .lockgraph import (
    ContentionEvent,
    InstrumentedLock,
    LockCycle,
    LockGraph,
    instrument_module_locks,
)
from .report import render_json, render_text, summarize
from .rules import RULES, Finding, Rule
from .runtime import RuntimeReport, run_runtime_check
from .sarif import render_sarif
from .staticlocks import StaticLockModel, build_lock_model

__all__ = [
    "RULES",
    "Rule",
    "Finding",
    "lint_source",
    "lint_file",
    "lint_paths",
    "render_text",
    "render_json",
    "render_sarif",
    "summarize",
    "LockGraph",
    "LockCycle",
    "ContentionEvent",
    "InstrumentedLock",
    "instrument_module_locks",
    "RuntimeReport",
    "run_runtime_check",
    "Project",
    "build_project",
    "StaticLockModel",
    "build_lock_model",
    "DeepResult",
    "run_deep",
    "load_baseline",
    "DEFAULT_BASELINE_NAME",
]
