"""Runtime lock-order detector: the dynamic half of ``poem lint``.

Static rules can prove a *call* never blocks under a lock, but only the
runtime can observe the *order* locks are taken in.  A deadlock needs
two ingredients — a cycle in the lock-order graph and concurrent
contention — and the first is detectable even on runs that never hang:
if thread 1 ever acquires B while holding A, and thread 2 ever acquires
A while holding B, the AB/BA cycle exists whether or not the timing
lined up this run.  That is the classic lock-order-graph technique
(Goodstein et al.; also how ``helgrind`` and Go's runtime lock ranking
work), reduced to the stdlib.

Three pieces:

:class:`InstrumentedLock`
    A drop-in for ``threading.Lock``/``RLock`` that reports every
    acquisition to a :class:`LockGraph`.  Reentrant acquisitions of an
    RLock do not create self-edges; a failed fast-path ``acquire(False)``
    while the thread already holds another lock is recorded as a
    :class:`ContentionEvent` (a held-lock blocking wait — the runtime
    analogue of POEM002).

:class:`LockGraph`
    The global order graph.  Nodes are lock names, edges ``A -> B``
    mean "some thread acquired B while holding A", each edge carries a
    witness (thread name + abbreviated stack captured the first time
    the edge appeared).  :meth:`LockGraph.cycles` runs Tarjan's SCC
    over the edge set — any SCC with more than one node (or a
    self-loop) is a potential deadlock, reported with the witness
    stacks for each edge of the cycle.

:func:`instrument_module_locks`
    A context manager that patches ``threading.Lock``/``threading.RLock``
    so everything *constructed* inside the ``with`` block is
    instrumented transparently.  Names are derived from the caller's
    file/line, so a cycle report reads ``scene.py:62 -> scheduler.py:41``.
    Used by the opt-in test fixture and ``poem lint --runtime``.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from types import TracebackType
from typing import Iterator, Optional, Type

from contextlib import contextmanager

__all__ = [
    "ContentionEvent",
    "InstrumentedLock",
    "LockCycle",
    "LockGraph",
    "instrument_module_locks",
]

#: Frames of witness stack kept per edge (innermost, minus our own).
_WITNESS_DEPTH = 6

#: The real factories, captured before any patching — the detector's own
#: internals must build native locks even while the patch is active
#: (otherwise InstrumentedLock.__init__ would recurse into the factory).
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


def _witness_stack() -> list[str]:
    """Abbreviated caller stack, innermost last, our own frames dropped."""
    frames = traceback.extract_stack()
    trimmed = [
        f"{fr.filename.rsplit('/', 1)[-1]}:{fr.lineno} in {fr.name}"
        for fr in frames
        if "lint/lockgraph" not in fr.filename.replace("\\", "/")
    ]
    return trimmed[-_WITNESS_DEPTH:]


@dataclass(frozen=True)
class ContentionEvent:
    """A blocking wait observed while the thread already held a lock."""

    thread: str
    wanted: str
    held: tuple[str, ...]
    stack: tuple[str, ...]

    def as_dict(self) -> dict[str, object]:
        return {
            "thread": self.thread,
            "wanted": self.wanted,
            "held": list(self.held),
            "stack": list(self.stack),
        }


@dataclass(frozen=True)
class LockCycle:
    """A cycle in the lock-order graph: a potential deadlock.

    ``locks`` is the cycle's node sequence (first node repeated last is
    implied); ``witnesses`` maps each ``"A -> B"`` edge of the cycle to
    the (thread, stack) that first created it.
    """

    locks: tuple[str, ...]
    witnesses: dict[str, dict[str, object]] = field(compare=False)

    def as_dict(self) -> dict[str, object]:
        return {"locks": list(self.locks), "witnesses": self.witnesses}


class LockGraph:
    """Global lock-order graph fed by :class:`InstrumentedLock`.

    Thread-safe; its own internal lock is a plain ``threading.Lock``
    (never instrumented — the detector must not observe itself).
    """

    def __init__(self) -> None:
        self._mu = _REAL_LOCK()
        #: edge -> witness: {"thread": ..., "stack": [...]}
        self._edges: dict[tuple[str, str], dict[str, object]] = {}
        self._locks: set[str] = set()
        self._acquisitions = 0
        self._contentions: list[ContentionEvent] = []
        self._tls = threading.local()

    # -- per-thread held-stack bookkeeping -------------------------------

    def _held(self) -> list[str]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def note_acquired(self, name: str) -> None:
        """Record that the current thread now holds ``name``."""
        held = self._held()
        new_edges = [(h, name) for h in held if h != name]
        held.append(name)
        with self._mu:
            self._locks.add(name)
            self._acquisitions += 1
            missing = [e for e in new_edges if e not in self._edges]
        if missing:
            # Capture the (expensive) witness stack only for new edges.
            witness = {
                "thread": threading.current_thread().name,
                "stack": _witness_stack(),
            }
            with self._mu:
                for e in missing:
                    self._edges.setdefault(e, witness)

    def note_released(self, name: str) -> None:
        """Record that the current thread dropped ``name``."""
        held = self._held()
        # Locks are usually released LIFO, but don't require it.
        for i in range(len(held) - 1, -1, -1):
            if held[i] == name:
                del held[i]
                break

    def note_contention(self, name: str) -> None:
        """A blocking wait on ``name`` while this thread holds others."""
        held = tuple(self._held())
        if not held:
            return
        ev = ContentionEvent(
            thread=threading.current_thread().name,
            wanted=name,
            held=held,
            stack=tuple(_witness_stack()),
        )
        with self._mu:
            self._contentions.append(ev)

    def currently_held(self) -> tuple[str, ...]:
        """Locks the calling thread holds right now (for tests)."""
        return tuple(self._held())

    # -- read side ---------------------------------------------------------

    @property
    def acquisitions(self) -> int:
        with self._mu:
            return self._acquisitions

    def lock_names(self) -> frozenset[str]:
        with self._mu:
            return frozenset(self._locks)

    def edges(self) -> dict[tuple[str, str], dict[str, object]]:
        with self._mu:
            return dict(self._edges)

    def edge_count(self) -> int:
        with self._mu:
            return len(self._edges)

    def contentions(self) -> list[ContentionEvent]:
        with self._mu:
            return list(self._contentions)

    def cycles(self) -> list[LockCycle]:
        """All elementary lock-order cycles (Tarjan SCC + closure).

        Every SCC with >1 node — or a self-loop — is reported once, as
        the SCC's node list in discovery order with the witnesses of
        the intra-SCC edges.
        """
        with self._mu:
            edges = dict(self._edges)
        adj: dict[str, list[str]] = {}
        for (a, b) in edges:
            adj.setdefault(a, []).append(b)
            adj.setdefault(b, [])

        # Iterative Tarjan (no recursion limit surprises).
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        counter = 0
        sccs: list[list[str]] = []

        for root in adj:
            if root in index:
                continue
            work: list[tuple[str, int]] = [(root, 0)]
            while work:
                node, pi = work[-1]
                if pi == 0:
                    index[node] = low[node] = counter
                    counter += 1
                    stack.append(node)
                    on_stack.add(node)
                recurse = False
                succs = adj[node]
                for i in range(pi, len(succs)):
                    nxt = succs[i]
                    if nxt not in index:
                        work[-1] = (node, i + 1)
                        work.append((nxt, 0))
                        recurse = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if recurse:
                    continue
                if low[node] == index[node]:
                    scc: list[str] = []
                    while True:
                        w = stack.pop()
                        on_stack.discard(w)
                        scc.append(w)
                        if w == node:
                            break
                    sccs.append(scc)
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])

        out: list[LockCycle] = []
        for scc in sccs:
            members = set(scc)
            cyclic = len(scc) > 1 or (scc[0], scc[0]) in edges
            if not cyclic:
                continue
            witnesses = {
                f"{a} -> {b}": w
                for (a, b), w in edges.items()
                if a in members and b in members
            }
            out.append(
                LockCycle(locks=tuple(reversed(scc)), witnesses=witnesses)
            )
        out.sort(key=lambda c: c.locks)
        return out

    def bind_telemetry(self, registry: object) -> None:
        """Expose ``poem_lockgraph_edges`` on an obs MetricsRegistry.

        Accepts any object with the registry's ``gauge_fn(name, fn,
        help=...)`` signature; does nothing (quietly) when the registry
        lacks it, so lint never hard-depends on obs.
        """
        gauge_fn = getattr(registry, "gauge_fn", None)
        if gauge_fn is None:
            return
        gauge_fn(
            "poem_lockgraph_edges",
            "Observed lock-order edges (runtime lint instrumentation)",
            lambda: float(self.edge_count()),
        )
        gauge_fn(
            "poem_lockgraph_cycles",
            "Lock-order cycles observed (potential deadlocks)",
            lambda: float(len(self.cycles())),
        )

    def as_dict(self) -> dict[str, object]:
        cycles = self.cycles()
        contentions = self.contentions()
        return {
            "locks": len(self.lock_names()),
            "edges": self.edge_count(),
            "acquisitions": self.acquisitions,
            "cycles": [c.as_dict() for c in cycles],
            "contentions": [e.as_dict() for e in contentions],
            # The gate is cycles-only: a cycle is deterministic evidence
            # of a bad ordering regardless of this run's timing, while a
            # contended acquire depends on how two threads happened to
            # interleave.  Contentions stay in the report as diagnostics.
            "clean": not cycles,
        }


class InstrumentedLock:
    """Drop-in ``Lock``/``RLock`` that reports into a :class:`LockGraph`.

    Supports the full lock protocol (``acquire(blocking, timeout)``,
    ``release``, context manager, ``locked``) plus the private
    ``_is_owned``/``_acquire_restore``/``_release_save`` hooks
    ``threading.Condition`` uses, so a Condition built over an
    instrumented RLock keeps working.
    """

    def __init__(
        self,
        name: str,
        graph: LockGraph,
        *,
        reentrant: bool = False,
    ) -> None:
        self.name = name
        self._graph = graph
        self._reentrant = reentrant
        self._inner = _REAL_RLOCK() if reentrant else _REAL_LOCK()
        self._owner: Optional[int] = None
        self._depth = 0

    # -- core protocol ----------------------------------------------------

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        me = threading.get_ident()
        if self._reentrant and self._owner == me:
            # Reentrant re-acquire: no edge, no contention.
            self._inner.acquire()
            self._depth += 1
            return True
        # Fast path probe: an uncontended acquire stays cheap and a
        # contended one while holding other locks is itself a finding.
        got = self._inner.acquire(False)
        if not got:
            if not blocking:
                return False
            self._graph.note_contention(self.name)
            got = self._inner.acquire(True, timeout)
            if not got:
                return False
        self._owner = me
        self._depth = 1
        self._graph.note_acquired(self.name)
        return True

    def release(self) -> None:
        me = threading.get_ident()
        if self._owner != me:
            # Let the inner lock raise the canonical error.
            self._inner.release()
            return
        self._depth -= 1
        if self._depth == 0:
            self._owner = None
            self._graph.note_released(self.name)
        self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(
        self,
        exc_type: Optional[Type[BaseException]],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self.release()

    def locked(self) -> bool:
        locked = getattr(self._inner, "locked", None)
        if locked is not None:
            return bool(locked())
        return self._owner is not None

    # -- threading.Condition compatibility --------------------------------

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self) -> tuple[int, int]:
        """Condition.wait(): drop the lock entirely, remember the depth."""
        depth, owner = self._depth, self._owner or 0
        self._depth = 0
        self._owner = None
        self._graph.note_released(self.name)
        for _ in range(depth):
            self._inner.release()
        return (depth, owner)

    def _acquire_restore(self, state: tuple[int, int]) -> None:
        depth, owner = state
        for _ in range(depth):
            self._inner.acquire()
        self._depth = depth
        self._owner = owner or threading.get_ident()
        # Waking from Condition.wait() re-takes the lock; record it so
        # held-stacks stay accurate (it cannot create a *new* ordering
        # relative to locks taken before wait() — wait() dropped this
        # one — but it can relative to locks taken while waiting).
        self._graph.note_acquired(self.name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "RLock" if self._reentrant else "Lock"
        return f"<InstrumentedLock {kind} {self.name!r}>"


def _caller_site() -> str:
    """``file.py:line`` of the frame that called threading.Lock()."""
    for fr in reversed(traceback.extract_stack()):
        fname = fr.filename.replace("\\", "/")
        if "lint/lockgraph" in fname or fname.endswith("threading.py"):
            continue
        return f"{fname.rsplit('/', 1)[-1]}:{fr.lineno}"
    return "<unknown>"


@contextmanager
def instrument_module_locks(
    graph: Optional[LockGraph] = None,
) -> Iterator[LockGraph]:
    """Patch ``threading.Lock``/``RLock`` so locks constructed inside the
    block report into ``graph`` (a fresh one by default).

    Only locks *created* under the context manager are instrumented;
    pre-existing locks keep their native type.  The patch is
    process-global while active — build the deployment inside the
    ``with`` block, then run it (the instrumented locks keep reporting
    after the block exits; the graph outlives the patch).
    """
    g = graph if graph is not None else LockGraph()
    orig_lock = threading.Lock
    orig_rlock = threading.RLock

    def make_lock() -> InstrumentedLock:
        return InstrumentedLock(_caller_site(), g, reentrant=False)

    def make_rlock() -> InstrumentedLock:
        return InstrumentedLock(_caller_site(), g, reentrant=True)

    threading.Lock = make_lock  # type: ignore[assignment]
    threading.RLock = make_rlock  # type: ignore[assignment]
    try:
        yield g
    finally:
        threading.Lock = orig_lock  # type: ignore[assignment]
        threading.RLock = orig_rlock  # type: ignore[assignment]
