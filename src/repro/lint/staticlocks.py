"""POEM009: static lock-order graph + runtime cross-check.

Builds the *potential* lock-order graph from the whole-program model:
an edge ``A -> B`` means some interprocedural path acquires ``B`` while
``A`` is held.  Cycles (through the same iterative Tarjan the runtime
:class:`~repro.lint.lockgraph.LockGraph` uses) are potential deadlocks
even if no run has interleaved them yet — that is the point of doing it
statically: the runtime graph only sees orders that were *exercised*.

The two graphs share a vocabulary (locks are named by construction
site), so they can be diffed.  ``check_runtime_consistency`` flags any
runtime edge the static graph missed — by construction the static graph
over-approximates, so a missing edge means the model is unsound
somewhere (an unresolved callback, an unmodelled lock) and is itself a
POEM009 finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from .callgraph import (
    AcquireEvent,
    CallEvent,
    FuncInfo,
    Project,
    RNG_SITE,
)
from .lockgraph import LockGraph
from .rules import Finding

__all__ = [
    "StaticLockModel",
    "build_lock_model",
    "static_lock_findings",
    "check_runtime_consistency",
]


@dataclass
class StaticLockModel:
    """The computed interprocedural lock model."""

    #: function qualname -> every site it may (transitively) acquire
    may_acquire: Dict[str, FrozenSet[str]]
    #: (held, acquired) -> witness {"function": ..., "file": ..., "line": ...}
    edges: Dict[Tuple[str, str], dict]
    project: Project

    def edge_set(self) -> set:
        return set(self.edges)

    def as_dict(self) -> dict:
        return {
            "locks": sorted({s for e in self.edges for s in e}),
            "edges": [
                {"from": a, "to": b, "witness": w}
                for (a, b), w in sorted(self.edges.items())
            ],
        }


def _expand_callees(project: Project, callees: Iterable) -> List[FuncInfo]:
    out: List[FuncInfo] = []
    for c in callees:
        if isinstance(c, FuncInfo):
            out.append(c)
        else:
            out.extend(project.slot_members(tuple(c)))
    return out


def build_lock_model(project: Project) -> StaticLockModel:
    """Compute ``may_acquire`` by fixpoint, then the static edge set."""
    funcs = list(project.functions.values())
    may: Dict[str, set] = {f.qualname: set() for f in funcs}

    # Seed with each function's direct acquisitions.
    for f in funcs:
        for ev in f.events:
            if isinstance(ev, AcquireEvent):
                may[f.qualname].add(ev.site)

    # Resolve call targets once (slot expansion is the expensive part).
    resolved_calls: Dict[str, List[Tuple[CallEvent, List[FuncInfo]]]] = {}
    for f in funcs:
        calls = []
        for ev in f.events:
            if isinstance(ev, CallEvent):
                calls.append((ev, _expand_callees(project, ev.callees)))
        resolved_calls[f.qualname] = calls

    changed = True
    while changed:
        changed = False
        for f in funcs:
            acc = may[f.qualname]
            before = len(acc)
            for _ev, targets in resolved_calls[f.qualname]:
                for t in targets:
                    acc |= may.get(t.qualname, set())
            if len(acc) != before:
                changed = True

    # Edge generation: local nesting + call-site composition.
    edges: Dict[Tuple[str, str], dict] = {}

    def add_edge(a: str, b: str, func: FuncInfo, line: int) -> None:
        if a == b or a == RNG_SITE:
            return
        edges.setdefault(
            (a, b),
            {
                "function": func.qualname,
                "file": func.module.basename,
                "line": line,
                "thread": "static",
            },
        )

    for f in funcs:
        for ev in f.events:
            if isinstance(ev, AcquireEvent):
                for h in ev.held:
                    add_edge(h, ev.site, f, ev.line)
        for ev, targets in resolved_calls[f.qualname]:
            if not ev.held:
                continue
            for t in targets:
                for site in may.get(t.qualname, ()):
                    for h in ev.held:
                        add_edge(h, site, f, ev.line)

    frozen = {q: frozenset(s) for q, s in may.items()}
    return StaticLockModel(may_acquire=frozen, edges=edges, project=project)


def _lock_label(project: Project, site: str) -> str:
    label = project.lock_labels.get(site)
    return f"{label} ({site})" if label else site


def static_lock_findings(
    project: Project, model: StaticLockModel
) -> List[Tuple[Finding, str]]:
    """POEM009 findings for static cycles: (finding, fingerprint)."""
    graph = LockGraph()
    # Inject the static edges; witnesses already carry the static shape.
    graph._edges.update(  # noqa: SLF001 - deliberate reuse of the Tarjan
        {e: dict(w) for e, w in model.edges.items()}
    )
    out: List[Tuple[Finding, str]] = []
    for cycle in graph.cycles():
        labels = [_lock_label(project, s) for s in cycle.locks]
        witness = next(iter(cycle.witnesses.values()), {})
        path, line = _witness_location(project, witness)
        finding = Finding(
            rule="POEM009",
            path=path,
            line=line,
            col=0,
            message=(
                "potential deadlock: static lock-order cycle "
                + " -> ".join(labels + [labels[0]])
            ),
        )
        fingerprint = "cycle:" + "|".join(
            sorted(project.lock_labels.get(s, s) for s in cycle.locks)
        )
        out.append((finding, fingerprint))
    return out


def _witness_location(project: Project, witness: dict) -> Tuple[str, int]:
    basename = str(witness.get("file", ""))
    line = int(witness.get("line", 1) or 1)
    for mi in project.modules.values():
        if mi.basename == basename:
            return str(mi.path), line
    first = next(iter(project.modules.values()), None)
    return (str(first.path) if first else basename or "<static>", line)


def check_runtime_consistency(
    project: Project,
    model: StaticLockModel,
    runtime_edges: Iterable[Tuple[str, str]],
) -> List[Tuple[Finding, str]]:
    """Flag runtime lock edges the static graph failed to predict.

    Both endpoints are canonicalized into the static vocabulary first
    (``default_rng`` internals collapse to ``<rng>``, external stdlib
    sites to ``<ext:basename>``).  Edges that involve an external lock
    the model does not even claim to cover (anything ``<ext:...>`` that
    never appears statically — e.g. importlib's bootstrap lock) are
    exempt; that limitation is documented, not silent.
    """
    static = model.edge_set()
    static_nodes = {s for e in static for s in e}
    out: List[Tuple[Finding, str]] = []
    seen = set()
    for a, b in runtime_edges:
        ca, cb = project.canonical_site(a), project.canonical_site(b)
        if ca == cb or (ca, cb) in static or (ca, cb) in seen:
            continue
        if ca == RNG_SITE:
            continue  # numpy internals: no static edges originate there
        exempt = False
        for c in (ca, cb):
            if c.startswith("<ext:") and c not in static_nodes:
                exempt = True
        if exempt:
            continue
        seen.add((ca, cb))
        path, line = _site_location(project, ca)
        finding = Finding(
            rule="POEM009",
            path=path,
            line=line,
            col=0,
            message=(
                f"runtime lock edge {a} -> {b} is missing from the "
                f"static graph (as {ca} -> {cb}): the static model is "
                "unsound here"
            ),
        )
        out.append((finding, f"runtime-miss:{ca}->{cb}"))
    return out


def _site_location(project: Project, site: str) -> Tuple[str, int]:
    base, _, line = site.partition(":")
    for mi in project.modules.values():
        if mi.basename == base:
            try:
                return str(mi.path), int(line)
            except ValueError:
                return str(mi.path), 1
    first = next(iter(project.modules.values()), None)
    return (str(first.path) if first else site, 1)
