"""SARIF 2.1.0 rendering for ``poem lint --format sarif``.

One run, one driver ("poem-lint"), the full POEM rule catalog as
``reportingDescriptor``\\ s, and one ``result`` per finding with a
physical location.  The output validates against the SARIF 2.1.0
schema consumed by GitHub code scanning, which is the whole point:
CI uploads it so findings annotate the PR diff.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Optional

from .rules import RULES, Finding

__all__ = ["render_sarif"]

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _relative_uri(path: str, root: Optional[Path]) -> str:
    p = Path(path)
    if root is not None:
        try:
            return p.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            pass
    return p.as_posix()


def render_sarif(
    findings: Iterable[Finding],
    *,
    src_root: Optional[Path] = None,
    tool_version: str = "1.0.0",
) -> str:
    """Serialize ``findings`` as a SARIF 2.1.0 log (a JSON string)."""
    rules = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "help": {"text": rule.hint},
            "defaultConfiguration": {"level": "warning"},
        }
        for rule in RULES.values()
    ]
    results = [
        {
            "ruleId": f.rule,
            "level": "warning",
            "message": {"text": f"{f.message} (hint: {f.hint})"},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": _relative_uri(f.path, src_root),
                        },
                        "region": {
                            "startLine": max(f.line, 1),
                            "startColumn": f.col + 1,
                        },
                    }
                }
            ],
        }
        for f in findings
    ]
    doc = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "poem-lint",
                        "informationUri": (
                            "https://example.invalid/poem/docs/"
                            "static-analysis"
                        ),
                        "version": tool_version,
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(doc, indent=2, sort_keys=False)
