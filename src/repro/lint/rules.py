"""The POEM rule catalog, findings, and the suppression protocol.

Every rule encodes a project invariant introduced by an earlier PR and
relied on by the real-time pipeline.  A rule is *lexical*: it inspects
the AST (plus file paths), never runtime state — the runtime half of the
toolkit lives in :mod:`repro.lint.lockgraph`.

Suppression protocol
--------------------
A deliberate violation is silenced with a ``# poem: ignore[RULE]``
comment on the flagged line, on the line directly above it, or on the
line of the enclosing scope the finding reports (e.g. the ``with``
statement owning a lock-guarded block, or the ``def`` line of the
function a whole-function rule flags).  ``# poem: ignore`` without a
rule list suppresses every rule on that line.  Always pair a suppression
with a justification — the linter cannot check *why*, reviewers can.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional

__all__ = ["Rule", "RULES", "Finding", "suppressed_rules"]


@dataclass(frozen=True)
class Rule:
    """One entry of the catalog (see docs/static-analysis.md)."""

    code: str
    name: str
    summary: str
    hint: str


RULES: dict[str, Rule] = {
    r.code: r
    for r in (
        Rule(
            "POEM001",
            "raw-thread",
            "raw threading.Thread() outside core/supervision.py",
            "spawn through SupervisedThread / HealthRegistry.spawn() so "
            "crashes are recorded and restartable loops restart with "
            "backoff instead of dying silently",
        ),
        Rule(
            "POEM002",
            "blocking-under-lock",
            "blocking call lexically inside a `with <lock>` block",
            "move the blocking call outside the critical section, or use "
            "a timeout-bearing variant; a sleep/recv/IO under a lock "
            "stalls every thread contending for it (scheduler-lag spikes)",
        ),
        Rule(
            "POEM003",
            "scene-version-bump",
            "Scene mutation emits an event without bumping a version",
            "call self._bump(channels) after self._emit(...) so the "
            "version-keyed neighbor/fan-out caches invalidate; a missed "
            "bump serves stale topology forever",
        ),
        Rule(
            "POEM004",
            "per-packet-record",
            "per-packet Recorder.record_packet() inside a loop on a "
            "hot-path module",
            "batch with reserve_record_ids(n) + record_many([...]) — one "
            "lock acquisition per fan-out, not per packet (PR 2's "
            "hot-path contract)",
        ),
        Rule(
            "POEM005",
            "swallowed-exception",
            "bare `except:` or a broad exception handler that swallows "
            "silently",
            "narrow the exception type, or record the failure (log_event "
            "/ HealthRegistry.note_failure) — threaded loops that swallow "
            "are how emulations freeze without diagnosis",
        ),
        Rule(
            "POEM006",
            "non-monotonic-clock",
            "wall clock time.time() in delay/scheduling code",
            "use time.monotonic() (or the deployment's EmulationClock); "
            "time.time() jumps under NTP and corrupts forward-time "
            "arithmetic",
        ),
        Rule(
            "POEM007",
            "unbounded-queue",
            "unbounded deque/Queue construction or looped instance-"
            "attribute append on a hot-path module",
            "give the container an explicit bound (deque(maxlen=...), "
            "Queue(maxsize)) or make the growth loop-local — an "
            "unbounded hot-path buffer is how an overloaded server "
            "exhausts memory instead of shedding load",
        ),
        # -- deep (interprocedural) rules: ``poem lint --deep`` -------------
        Rule(
            "POEM008",
            "shared-state-race",
            "instance attribute written from ≥2 thread entrypoints with "
            "no common lock",
            "guard every write with one lock (document which), confine "
            "the field to a single thread, or — for a deliberate "
            "GIL-atomic design — add `# poem: ignore[POEM008]` with a "
            "justification on the field's definition",
        ),
        Rule(
            "POEM009",
            "static-lock-cycle",
            "potential deadlock: cycle in the static lock-order graph "
            "(or a runtime edge the static model missed)",
            "impose a global acquisition order (acquire the cycle's "
            "locks in one fixed order everywhere), or collapse the "
            "locks; for a runtime-miss finding, teach the static model "
            "the callback/lock it failed to resolve",
        ),
        Rule(
            "POEM010",
            "protocol-drift",
            "cluster control op sent but never dispatched by the peer "
            "(or dispatched but never sent)",
            "add the missing dispatch arm (or delete the dead op); the "
            "parent/worker control protocol must stay exhaustive or "
            "frames fail as 'unexpected reply' at a distance",
        ),
    )
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Extra line whose suppression comment also silences this finding
    #: (the enclosing ``with``/``def`` line for scope-level rules).
    scope_line: Optional[int] = field(default=None, compare=False)

    @property
    def hint(self) -> str:
        return RULES[self.rule].hint

    def as_dict(self) -> dict[str, object]:
        return {
            "rule": self.rule,
            "name": RULES[self.rule].name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
        }


_IGNORE_RE = re.compile(
    r"#\s*poem:\s*ignore(?:\[([A-Za-z0-9_,\s]+)\])?"
)


def suppressed_rules(line_text: str) -> Optional[frozenset[str]]:
    """Parse a source line's suppression comment.

    Returns ``None`` when the line carries no ``poem: ignore`` marker,
    an empty frozenset for a bare ``# poem: ignore`` (suppress all
    rules), or the set of rule codes listed in the brackets.
    """
    m = _IGNORE_RE.search(line_text)
    if m is None:
        return None
    raw = m.group(1)
    if raw is None:
        return frozenset()
    return frozenset(
        code.strip().upper() for code in raw.split(",") if code.strip()
    )


def is_suppressed(
    rule: str, lines: list[str], *candidates: Optional[int]
) -> bool:
    """True when any candidate line (1-based) or the line directly above
    it carries a suppression covering ``rule``."""
    seen: set[int] = set()
    for lineno in candidates:
        if lineno is None:
            continue
        for ln in (lineno, lineno - 1):
            if ln < 1 or ln > len(lines) or ln in seen:
                continue
            seen.add(ln)
            rules = suppressed_rules(lines[ln - 1])
            if rules is not None and (not rules or rule in rules):
                return True
    return False
