"""``poem lint --runtime`` — run a short emulation under lock instrumentation.

The static analyzer proves code *shape*; this module observes the code
*run*.  :func:`run_runtime_check` builds the seed virtual-transport
scenario (a hybrid-protocol chain — hellos, route discovery, data
forwarding, mobility, scene churn) with every ``threading.Lock``/
``RLock`` replaced by :class:`repro.lint.lockgraph.InstrumentedLock`,
then reports the lock-order graph: cycles are potential deadlocks,
contended acquires while holding another lock are held-lock blocking
waits.  A cycle-free run is the acceptance gate CI enforces; a cycle
fails the ``lint`` job with witness stacks for every edge, while
contentions (timing-dependent by nature) are reported as diagnostics.

The heavy repro imports happen inside the function so that the purely
lexical half of the package (``repro.lint.analyzer``) stays importable
with nothing but the stdlib.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .lockgraph import LockGraph, instrument_module_locks

__all__ = ["RuntimeReport", "run_runtime_check"]


@dataclass(frozen=True)
class RuntimeReport:
    """Outcome of one instrumented scenario run."""

    graph: LockGraph
    deliveries: int
    drops: int

    @property
    def clean(self) -> bool:
        # Cycles-only: a cycle convicts the ordering on any run, while
        # a contended acquire is a property of this run's interleaving
        # (the poller thread may or may not overlap a critical section).
        # Gating on contentions would make the check flaky by design;
        # they are reported as diagnostics instead.
        return not self.graph.cycles()

    def as_dict(self) -> dict[str, object]:
        doc = self.graph.as_dict()
        doc["deliveries"] = self.deliveries
        doc["drops"] = self.drops
        return doc


def run_runtime_check(
    *,
    nodes: int = 4,
    duration: float = 6.0,
    seed: int = 7,
) -> RuntimeReport:
    """The seed scenario under lock instrumentation.

    A chain of ``nodes`` hybrid-protocol VMNs converges, sends unicast
    data end-to-end (multi-hop, exercising route discovery and the
    scheduler), then suffers scene churn — a node moves, one is
    quarantined and restored — while a second OS thread polls health
    and stats concurrently so cross-thread lock orders appear in the
    graph, not just the virtual-clock thread's.
    """
    with instrument_module_locks() as graph:
        # Imports deferred: modules constructing locks at import time
        # (none today, but cheap insurance) and heavy deps stay out of
        # the analyzer's import graph.
        from ..core.geometry import Vec2
        from ..core.server import InProcessEmulator
        from ..models.radio import RadioConfig
        from ..protocols.common import ProtocolTuning
        from ..protocols.hybrid import HybridProtocol

        tuning = ProtocolTuning(
            hello_interval=0.5,
            neighbor_timeout=1.6,
            route_lifetime=3.0,
            rreq_timeout=1.0,
            rreq_retries=2,
        )
        emu = InProcessEmulator(seed=seed)
        hosts = []
        for i in range(nodes):
            hosts.append(
                emu.add_node(
                    Vec2(120.0 * i, 0.0),
                    RadioConfig.single(1, 200.0),
                    protocol=HybridProtocol(tuning),
                    label=f"VMN{i + 1}",
                )
            )
        emu.enable_mobility_tick(0.25)
        # Obs hook: while instrumentation is active the deployment's
        # registry exposes the live lock-order graph size.
        if emu.telemetry is not None and emu.telemetry.enabled:
            graph.bind_telemetry(emu.telemetry.registry)

    # The patch is lifted; the locks built above keep reporting.
    stop = threading.Event()

    def poll_loop() -> None:
        # A real deployment reads health/stats from other threads
        # (console, obs httpd); emulate that contention surface.
        while not stop.is_set():
            emu.health()
            emu.scene.node_ids()
            stop.wait(0.002)

    # The lint harness itself, not production code: a short-lived probe
    # thread joined below; supervision would only obscure the report.
    poller = threading.Thread(  # poem: ignore[POEM001]
        target=poll_loop, name="poem-lint-poller", daemon=True
    )
    poller.start()
    try:
        # Phase 1: converge.
        emu.run_until(duration * 0.5)
        # Multi-hop unicast end to end.
        first, last = hosts[0], hosts[-1]
        proto = first.protocol
        if proto is not None:
            proto.send_data(last.node_id, b"lint-probe")
        emu.run_for(duration * 0.15)
        # Phase 2: scene churn under traffic.
        mid = hosts[len(hosts) // 2]
        emu.scene.move_node(mid.node_id, Vec2(120.0, 40.0))
        emu.scene.quarantine_node(last.node_id)
        emu.run_for(duration * 0.1)
        emu.scene.restore_node(last.node_id)
        emu.run_until(duration)
    finally:
        stop.set()
        poller.join(timeout=2.0)

    return RuntimeReport(
        graph=graph,
        deliveries=int(emu.engine.forwarded),
        drops=int(emu.engine.dropped),
    )
