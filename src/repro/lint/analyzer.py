"""``poem lint`` — the AST pass enforcing POEM001-POEM007.

The analyzer is deliberately *lexical*: it never imports the code under
analysis, needs nothing outside the stdlib, and errs on the side of
precision (each rule is scoped so the codebase at HEAD is clean without
blanket waivers).  Scope decisions worth knowing:

* **POEM002** recognizes a critical section as a ``with`` statement
  whose context expression's dotted name contains ``lock`` or ``mutex``
  (``self._lock``, ``self._clients_lock``, ...).  ``Condition.wait()``
  is *not* in the blocking set — it releases the lock it guards, which
  is the one blocking-under-lock pattern that is correct by design.
* **POEM003** applies inside classes whose name contains ``Scene``: any
  method that emits a mutation event (``self._emit``) must also advance
  a version counter (``self._bump``) — the cache-invalidation contract
  of the hot-path overhaul.
* **POEM004**, **POEM006** and **POEM007** are scoped by module basename
  (the hot-path trio ``engine.py``/``scheduler.py``/``tcpserver.py``;
  the delay/scheduling set adds ``clock.py``/``server.py``/
  ``virtual.py``/``faults.py``) so rules stay sharp instead of drowning
  the tree in suppressions.
* **POEM007** flags three unbounded-growth shapes on hot-path modules:
  ``deque()`` without ``maxlen``, a ``queue.Queue``-family construction
  with no size bound, and ``self.<attr>.append`` inside a loop.
  Loop-local list appends stay legal — batch buffers are the idiom.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Optional, Sequence, Union

from ..errors import PoEmError
from .rules import Finding, is_suppressed

__all__ = ["lint_source", "lint_file", "lint_paths", "iter_python_files"]

#: Module basenames allowed to construct raw ``threading.Thread`` objects.
_THREAD_NURSERIES = frozenset({"supervision.py"})

#: Hot-path modules where per-packet recording in a loop is a finding.
#: ``worker.py`` is the shard worker's ingest loop — per-packet
#: recording there would multiply by the cluster size.  ``profiler.py``
#: runs ~100×/s inside every process being measured: an unbounded
#: container or a recorder call in its sampling loop would make the
#: observer the overload.
_HOT_PATH_MODULES = frozenset(
    {"engine.py", "scheduler.py", "tcpserver.py", "worker.py",
     "profiler.py"}
)

#: Delay/scheduling modules where ``time.time()`` is a finding.
_MONOTONIC_MODULES = frozenset(
    {
        "clock.py",
        "scheduler.py",
        "engine.py",
        "server.py",
        "tcpserver.py",
        "virtual.py",
        "faults.py",
    }
)

#: Attribute names that block on sockets.
_SOCKET_BLOCKING = frozenset(
    {"recv", "recv_into", "recvfrom", "send", "sendall", "sendto",
     "accept", "connect"}
)

#: Project-known blocking helpers (net/framing.py does raw socket I/O).
_FRAMING_BLOCKING = frozenset({"send_frame", "send_frames", "recv_frame"})

#: sqlite / DB-API calls that hit the disk.
_DB_BLOCKING = frozenset({"execute", "executemany", "executescript", "commit"})

#: Names of the wall-clock ``time`` module (the codebase aliases it).
_TIME_MODULE_NAMES = frozenset({"time", "_time", "_time_mod"})


def _dotted(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain; None for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _is_broad_exception(node: Optional[ast.expr]) -> bool:
    """Does this ``except`` clause catch Exception/BaseException?"""
    if node is None:
        return True  # bare except (handled separately, but be safe)
    if isinstance(node, ast.Tuple):
        return any(_is_broad_exception(el) for el in node.elts)
    name = _dotted(node)
    return name is not None and name.rsplit(".", 1)[-1] in (
        "Exception",
        "BaseException",
    )


class _Analyzer(ast.NodeVisitor):
    """One file's rule pass; collects raw findings (pre-suppression)."""

    def __init__(self, path_label: str, basename: str) -> None:
        self.path = path_label
        self.basename = basename
        self.findings: list[Finding] = []
        self._with_locks: list[tuple[str, int]] = []
        self._loop_depth = 0
        self._class_stack: list[str] = []

    # -- helpers ------------------------------------------------------------

    def _add(
        self,
        rule: str,
        node: ast.AST,
        message: str,
        scope_line: Optional[int] = None,
    ) -> None:
        self.findings.append(
            Finding(
                rule=rule,
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                message=message,
                scope_line=scope_line,
            )
        )

    # -- structure tracking ---------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._class_stack.append(node.name)
        self.generic_visit(node)
        self._class_stack.pop()

    def _visit_function(
        self, node: Union[ast.FunctionDef, ast.AsyncFunctionDef]
    ) -> None:
        # POEM003: Scene mutators must bump a version counter after
        # emitting the mutation event (the cache-invalidation contract).
        if self._class_stack and "Scene" in self._class_stack[-1]:
            emit_call: Optional[ast.Call] = None
            bumps = False
            for sub in ast.walk(node):
                if isinstance(sub, ast.Call):
                    name = _dotted(sub.func)
                    if name is not None and name.endswith("._emit"):
                        if emit_call is None:
                            emit_call = sub
                    elif name is not None and name.endswith("._bump"):
                        bumps = True
            if emit_call is not None and not bumps:
                self._add(
                    "POEM003",
                    emit_call,
                    f"Scene.{node.name} emits a mutation event but never "
                    "bumps a version counter (stale neighbor caches)",
                    scope_line=node.lineno,
                )
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    def visit_With(self, node: ast.With) -> None:
        self._enter_with(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._enter_with(node)

    def _enter_with(
        self, node: Union[ast.With, ast.AsyncWith]
    ) -> None:
        pushed = 0
        for item in node.items:
            expr = item.context_expr
            if isinstance(expr, ast.Call):
                expr = expr.func
            name = _dotted(expr)
            if name is None:
                continue
            leaf = name.rsplit(".", 1)[-1].lower()
            if "lock" in leaf or "mutex" in leaf:
                self._with_locks.append((name, node.lineno))
                pushed += 1
        self.generic_visit(node)
        for _ in range(pushed):
            self._with_locks.pop()

    def visit_For(self, node: ast.For) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    # -- POEM005 ----------------------------------------------------------------

    def visit_ExceptHandler(self, node: ast.ExceptHandler) -> None:
        if node.type is None:
            self._add(
                "POEM005",
                node,
                "bare `except:` swallows every error, including "
                "KeyboardInterrupt and supervision crashes",
            )
        elif _is_broad_exception(node.type):
            swallows = not any(
                isinstance(sub, (ast.Call, ast.Raise))
                for stmt in node.body
                for sub in ast.walk(stmt)
            )
            if swallows:
                self._add(
                    "POEM005",
                    node,
                    "broad exception handler swallows silently (no log "
                    "event, no re-raise)",
                )
        self.generic_visit(node)

    # -- call-level rules ----------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        name = _dotted(node.func)
        leaf = name.rsplit(".", 1)[-1] if name else None

        # POEM001: raw thread construction outside the supervision layer.
        if (
            leaf == "Thread"
            and name in ("Thread", "threading.Thread")
            and self.basename not in _THREAD_NURSERIES
        ):
            self._add(
                "POEM001",
                node,
                "raw threading.Thread() — crashes in this thread die "
                "silently instead of reaching the supervision layer",
            )

        # POEM006: wall clock in delay/scheduling code.
        if (
            leaf == "time"
            and name is not None
            and "." in name
            and name.rsplit(".", 1)[0] in _TIME_MODULE_NAMES
            and self.basename in _MONOTONIC_MODULES
        ):
            self._add(
                "POEM006",
                node,
                "time.time() is not monotonic; forward-time arithmetic "
                "here must use time.monotonic()/the emulation clock",
            )

        # POEM004: per-packet recording in a hot-path loop.
        if (
            leaf in ("record_packet", "record")
            and name is not None
            and "." in name
            and self.basename in _HOT_PATH_MODULES
            and self._loop_depth > 0
        ):
            self._add(
                "POEM004",
                node,
                f"{leaf}() inside a loop on a hot-path module — one "
                "recorder lock acquisition per packet",
            )

        # POEM007: unbounded hot-path containers.  Three shapes: a
        # deque without maxlen, a queue.Queue family construction with
        # neither a positional maxsize nor the keyword, and an append
        # onto an instance attribute from inside a loop (per-iteration
        # growth that outlives the function).  Loop-local lists stay
        # legal — batching buffers are the hot-path idiom.
        if self.basename in _HOT_PATH_MODULES and name is not None:
            kwargs = {kw.arg for kw in node.keywords if kw.arg}
            if (
                leaf == "deque"
                and name.rsplit(".", 1)[0] in ("deque", "collections")
                and "maxlen" not in kwargs
            ):
                self._add(
                    "POEM007",
                    node,
                    "deque() without maxlen on a hot-path module — "
                    "grows without bound under overload",
                )
            elif (
                leaf in ("Queue", "LifoQueue", "PriorityQueue", "SimpleQueue")
                and (name == leaf or name.rsplit(".", 1)[0] == "queue")
                and not node.args
                and "maxsize" not in kwargs
            ):
                self._add(
                    "POEM007",
                    node,
                    f"{leaf}() without a maxsize bound on a hot-path "
                    "module — backpressure never reaches the producer",
                )
            elif (
                leaf == "append"
                and self._loop_depth > 0
                and name.startswith("self.")
                and name.count(".") >= 2
            ):
                self._add(
                    "POEM007",
                    node,
                    f"{name}() inside a loop — unbounded growth of an "
                    "instance attribute on the hot path",
                )

        # POEM002: blocking call inside a lock-guarded with-block.
        if self._with_locks:
            blocking = self._blocking_reason(node, name, leaf)
            if blocking is not None:
                lock_name, with_line = self._with_locks[-1]
                self._add(
                    "POEM002",
                    node,
                    f"{blocking} while holding {lock_name!r}",
                    scope_line=with_line,
                )
        self.generic_visit(node)

    def _blocking_reason(
        self,
        node: ast.Call,
        name: Optional[str],
        leaf: Optional[str],
    ) -> Optional[str]:
        """Why this call is considered blocking (None when it isn't)."""
        if leaf is None:
            return None
        if leaf == "sleep":
            return "time.sleep()"
        if name == "open" or leaf in ("read_text", "write_text",
                                      "read_bytes", "write_bytes"):
            return "file I/O"
        if leaf in _FRAMING_BLOCKING:
            return f"socket framing call {leaf}()"
        if leaf in _DB_BLOCKING and name is not None and "." in name:
            return f"database call .{leaf}()"
        if leaf in _SOCKET_BLOCKING and name is not None and "." in name:
            return f"socket call .{leaf}()"
        has_kw = {kw.arg for kw in node.keywords if kw.arg}
        if name is not None and "." in name:
            if leaf == "get" and not node.args and not node.keywords:
                return "Queue.get() without a timeout"
            if (
                leaf == "put"
                and len(node.args) == 1
                and not has_kw & {"block", "timeout"}
            ):
                return "Queue.put() without a timeout"
            if leaf == "join" and not node.args and not has_kw:
                return ".join() without a timeout"
        return None


def lint_source(
    source: str, path_label: str = "<string>"
) -> list[Finding]:
    """Lint one source string; returns suppression-filtered findings."""
    basename = Path(path_label).name
    try:
        tree = ast.parse(source, filename=path_label)
    except SyntaxError as exc:
        raise PoEmError(
            f"cannot lint {path_label}: {exc.msg} (line {exc.lineno})"
        ) from exc
    analyzer = _Analyzer(path_label, basename)
    analyzer.visit(tree)
    lines = source.splitlines()
    return [
        f
        for f in analyzer.findings
        if not is_suppressed(f.rule, lines, f.line, f.scope_line)
    ]


def lint_file(path: Union[str, Path]) -> list[Finding]:
    """Lint one file on disk."""
    p = Path(path)
    try:
        source = p.read_text(encoding="utf-8")
    except OSError as exc:
        raise PoEmError(f"cannot read {p}: {exc}") from exc
    return lint_source(source, str(p))


def iter_python_files(paths: Iterable[Union[str, Path]]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: set[Path] = set()
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            out.update(
                f
                for f in p.rglob("*.py")
                if "__pycache__" not in f.parts
            )
        elif p.suffix == ".py":
            out.add(p)
        else:
            raise PoEmError(f"not a Python file or directory: {p}")
    return sorted(out)


def lint_paths(
    paths: Sequence[Union[str, Path]],
) -> tuple[list[Finding], int]:
    """Lint files/directories; returns ``(findings, files_checked)``.

    Findings are ordered by (path, line, col, rule) for stable output.
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for f in files:
        findings.extend(lint_file(f))
    findings.sort(key=lambda x: (x.path, x.line, x.col, x.rule))
    return findings, len(files)
