"""POEM008: the shared-state race pass.

For every thread entrypoint the call graph discovered (supervised
threads, timer callbacks, httpd handlers, ``worker_main``, the CLI
main), walk its reachable code with a *held-locks abstract state* and
build, per class field, the map

    field -> { (entrypoint, held locks, read|write, location), ... }

An attribute is flagged when it is **written from two or more distinct
entrypoints in the same process** and the intersection of the held-lock
sets over all those writes is empty — i.e. no single lock consistently
guards the writes, so two threads can interleave them.

Held-lock propagation is a meet-over-call-edges fixpoint: a function
invoked from several sites is analysed under the *intersection* of the
callers' held sets (the locks guaranteed on every path).  That is the
sound direction for race detection — it may report a race on a helper
that every caller happens to guard differently, never miss one because
a single caller was guarded.

Deliberate exemptions (documented in docs/static-analysis.md):

* writes only in ``__init__``/``__post_init__`` (pre-publication);
* fields holding ``threading`` primitives, queues, threads, or RNGs
  (internally synchronized — they *are* the synchronization);
* frozen dataclasses;
* unlocked *reads* are not flagged (GIL-atomic snapshot reads of
  counters are idiomatic here); the write/write rule is the load-
  bearing one;
* ``# poem: ignore[POEM008]`` on a flagged write or on the field's
  definition line.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from .callgraph import (
    AccessEvent,
    CallEvent,
    FuncInfo,
    Project,
    RootInfo,
)
from .rules import Finding

__all__ = ["FieldAccess", "race_findings", "compute_field_accesses"]

_CTOR_NAMES = frozenset({"__init__", "__post_init__", "__new__"})
_EXEMPT_KINDS = frozenset({"lock", "event", "queue", "thread", "rng", "sem"})


@dataclass(frozen=True)
class FieldAccess:
    """One access to ``cls.attr`` attributed to a thread entrypoint."""

    root: str  # entrypoint qualname
    context: str  # "parent" | "worker"
    func: str  # accessing function qualname
    path: str
    line: int
    kind: str  # "r" | "w"
    held: FrozenSet[str]


def _reachable(project: Project, start: FuncInfo) -> Set[str]:
    seen: Set[str] = set()
    work = [start]
    while work:
        f = work.pop()
        if f.qualname in seen:
            continue
        seen.add(f.qualname)
        for ev in f.events:
            if isinstance(ev, CallEvent):
                for c in ev.callees:
                    targets = (
                        [c] if isinstance(c, FuncInfo)
                        else project.slot_members(tuple(c))
                    )
                    for t in targets:
                        if t.qualname not in seen:
                            work.append(t)
    return seen


def _root_contexts(project: Project) -> Dict[str, str]:
    """Map each root to its process: functions reachable from
    ``worker_main`` execute in the worker process."""
    worker_set: Set[str] = set()
    for root in project.roots:
        if root.kind == "worker-main":
            worker_set = _reachable(project, root.func)
    contexts: Dict[str, str] = {}
    for root in project.roots:
        in_worker = root.func.qualname in worker_set or (
            root.spawn_func is not None and root.spawn_func in worker_set
        )
        contexts[root.func.qualname] = "worker" if in_worker else "parent"
    return contexts


def compute_field_accesses(
    project: Project,
) -> Dict[Tuple[str, str], List[FieldAccess]]:
    """The full field -> accesses map, keyed by (class qualname, attr)."""
    contexts = _root_contexts(project)
    out: Dict[Tuple[str, str], List[FieldAccess]] = {}
    for root in project.roots:
        context = contexts.get(root.func.qualname, "parent")
        for key, acc in _walk_root_keyed(project, root, context):
            out.setdefault(key, []).append(acc)
    return out


def _walk_root_keyed(
    project: Project, root: RootInfo, context: str
) -> List[Tuple[Tuple[str, str], FieldAccess]]:
    state: Dict[str, FrozenSet[str]] = {root.func.qualname: frozenset()}
    work: List[str] = [root.func.qualname]
    while work:
        qual = work.pop()
        func = project.functions.get(qual)
        if func is None:
            continue
        ctx = state[qual]
        for ev in func.events:
            if not isinstance(ev, CallEvent):
                continue
            call_ctx = ctx | ev.held
            for c in ev.callees:
                targets = (
                    [c] if isinstance(c, FuncInfo)
                    else project.slot_members(tuple(c))
                )
                for t in targets:
                    prev = state.get(t.qualname)
                    merged = call_ctx if prev is None else prev & call_ctx
                    if prev is None or merged != prev:
                        state[t.qualname] = frozenset(merged)
                        work.append(t.qualname)
    out: List[Tuple[Tuple[str, str], FieldAccess]] = []
    for qual, ctx in state.items():
        func = project.functions.get(qual)
        if func is None or func.name in _CTOR_NAMES:
            continue
        for ev in func.events:
            if isinstance(ev, AccessEvent):
                out.append(
                    (
                        (ev.cls, ev.attr),
                        FieldAccess(
                            root=root.func.qualname,
                            context=context,
                            func=qual,
                            path=str(func.module.path),
                            line=ev.line,
                            kind=ev.kind,
                            held=frozenset(ctx | ev.held),
                        ),
                    )
                )
    return out


def race_findings(project: Project) -> List[Tuple[Finding, str]]:
    """POEM008 findings: (finding, fingerprint ``Class.attr``)."""
    accesses = compute_field_accesses(project)
    out: List[Tuple[Finding, str]] = []
    for (cls_q, attr), accs in sorted(accesses.items()):
        ci = project.classes.get(cls_q)
        if ci is None or ci.frozen:
            continue
        fld = project.field(cls_q, attr)
        if fld is None:
            continue  # not an instance field of this class (or inherited
            # helper attribute the field pass never saw defined)
        if fld.kind in _EXEMPT_KINDS or fld.init_only_writes:
            continue
        for context in ("parent", "worker"):
            writes = [
                a for a in accs if a.kind == "w" and a.context == context
            ]
            writers = {a.root for a in writes}
            if len(writers) < 2:
                continue
            common = None
            for a in writes:
                common = a.held if common is None else (common & a.held)
            if common:
                continue
            unlocked = [a for a in writes if not a.held] or writes
            site = min(unlocked, key=lambda a: (a.path, a.line))
            roots = sorted(writers)
            shown = ", ".join(_short_root(r) for r in roots[:4])
            if len(roots) > 4:
                shown += f", +{len(roots) - 4} more"
            finding = Finding(
                rule="POEM008",
                path=site.path,
                line=site.line,
                col=0,
                message=(
                    f"{_short_cls(cls_q)}.{attr} is written from "
                    f"{len(roots)} {context}-process entrypoints "
                    f"({shown}) with no common lock"
                ),
                scope_line=fld.line or None,
            )
            out.append((finding, f"race:{cls_q}.{attr}:{context}"))
    return out


def _short_cls(qualname: str) -> str:
    return qualname.rsplit(".", 1)[-1]


def _short_root(qualname: str) -> str:
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname
