"""Experiment drivers: one module per reproduced table/figure (DESIGN.md §4)."""

from . import (
    ablation,
    fig2,
    fig3,
    fig5,
    fig6,
    fig10,
    scale,
    sensitivity,
    table1,
    table2,
)

__all__ = ["table1", "table2", "fig2", "fig3", "fig5", "fig6", "fig10", "scale", "ablation", "sensitivity"]
