"""Fig 6 ablation — channel-indexed vs single channel-tagged neighbor table.

§4.2: "In contrast to the scheme that keeps one unique neighbor table
with multiple channel-ID marked units, our scheme reduces the cost to
update the neighbor table when the emulation scene has changed ... This
scheme improves the update efficiency and relieves the server processor
of heavy load especially when emulating dynamic large-scale multi-radio
MANETs."

Experiment: random multi-radio scenes (each node carries 1–2 radios over
``n_channels`` channels) under a mobility-churn event stream (random node
moves plus occasional retunes).  Both schemes subscribe to the *same*
scene and process the *same* events; we count the table units each one
touches (:class:`~repro.core.neighbor.UpdateStats`) and wall-time the
update processing.  The claim holds when the indexed scheme touches a
fraction of the flat table's units — and the fraction should *improve*
with more channels, because channel partitioning is exactly what the
index exploits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from ..core.geometry import Vec2
from ..core.ids import ChannelId, NodeId, RadioIndex
from ..core.neighbor import ChannelIndexedNeighborTables, SingleTableNeighbors
from ..core.scene import Scene
from ..models.radio import Radio, RadioConfig

__all__ = ["Fig6Row", "run_fig6", "build_random_scene", "churn"]


@dataclass(frozen=True)
class Fig6Row:
    """Update-cost comparison at one (nodes, channels) operating point."""

    n_nodes: int
    n_channels: int
    n_events: int
    indexed_units: int
    single_units: int
    indexed_seconds: float
    single_seconds: float

    @property
    def unit_ratio(self) -> float:
        """single / indexed — how many times cheaper the indexed scheme is."""
        return self.single_units / max(self.indexed_units, 1)


def build_random_scene(
    n_nodes: int,
    n_channels: int,
    *,
    area: float = 1000.0,
    radio_range: float = 200.0,
    seed: int = 0,
) -> Scene:
    """A random multi-radio scene: each node gets 1–2 distinct channels."""
    rng = np.random.default_rng(seed)
    scene = Scene(seed=seed)
    for i in range(1, n_nodes + 1):
        n_radios = 1 + int(rng.integers(0, 2)) if n_channels > 1 else 1
        channels = rng.choice(n_channels, size=min(n_radios, n_channels),
                              replace=False)
        radios = RadioConfig.of(
            [Radio(ChannelId(int(c) + 1), radio_range) for c in channels]
        )
        scene.add_node(
            NodeId(i),
            Vec2(float(rng.uniform(0, area)), float(rng.uniform(0, area))),
            radios,
        )
    return scene


def churn(
    scene: Scene,
    n_events: int,
    *,
    n_channels: int,
    area: float = 1000.0,
    retune_fraction: float = 0.1,
    seed: int = 1,
) -> None:
    """Apply a random event stream: mostly moves, some channel retunes."""
    rng = np.random.default_rng(seed)
    nodes = scene.node_ids()
    for _ in range(n_events):
        node = nodes[int(rng.integers(len(nodes)))]
        if rng.random() < retune_fraction and n_channels > 1:
            radios = scene.radios(node)
            idx = RadioIndex(int(rng.integers(len(radios))))
            scene.set_radio_channel(
                node, idx, ChannelId(int(rng.integers(n_channels)) + 1)
            )
        else:
            scene.move_node(
                node,
                Vec2(float(rng.uniform(0, area)), float(rng.uniform(0, area))),
            )


def run_fig6(
    node_counts: tuple[int, ...] = (20, 50, 100),
    channel_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    n_events: int = 200,
    seed: int = 2,
) -> list[Fig6Row]:
    """Sweep scene size and channel count; compare both schemes."""
    rows = []
    for n_nodes in node_counts:
        for n_channels in channel_counts:
            # Two identical scenes so listeners don't double-fire.
            results = {}
            for name, scheme_cls in (
                ("indexed", ChannelIndexedNeighborTables),
                ("single", SingleTableNeighbors),
            ):
                scene = build_random_scene(
                    n_nodes, n_channels, seed=seed + n_nodes + n_channels
                )
                scheme = scheme_cls(scene)
                scheme.stats.reset()  # don't count the initial build
                t0 = time.perf_counter()
                churn(
                    scene,
                    n_events,
                    n_channels=n_channels,
                    seed=seed + 17,
                )
                elapsed = time.perf_counter() - t0
                results[name] = (scheme.stats.units_touched, elapsed)
                scheme.detach()
            rows.append(
                Fig6Row(
                    n_nodes=n_nodes,
                    n_channels=n_channels,
                    n_events=n_events,
                    indexed_units=results["indexed"][0],
                    single_units=results["single"][0],
                    indexed_seconds=results["indexed"][1],
                    single_seconds=results["single"][1],
                )
            )
    return rows


def format_rows(rows: list[Fig6Row]) -> str:
    lines = [
        f"{'nodes':>6} {'channels':>9} {'indexed units':>14} "
        f"{'single units':>13} {'ratio':>7} {'indexed s':>10} {'single s':>9}",
        "-" * 75,
    ]
    for r in rows:
        lines.append(
            f"{r.n_nodes:>6} {r.n_channels:>9} {r.indexed_units:>14} "
            f"{r.single_units:>13} {r.unit_ratio:>7.2f} "
            f"{r.indexed_seconds:>10.4f} {r.single_seconds:>9.4f}"
        )
    return "\n".join(lines)
