"""Table 2 — the proof-of-concept test (§6.1, Fig 8).

The paper constructs the emulated network of Fig 8, embeds the hybrid
protocol in every client, performs three operator actions on the GUI and
inspects VMN1's routing table after each:

====== ================================================= =====================
Step   Operation                                          Expected VMN1 table
====== ================================================= =====================
1      Construct the network scene (all on channel 1)     ``1 -> 2``, ``1 -> 3``
2      Shrink VMN1's radio range to exclude VMN3          ``1 -> 2``, ``1 -> 2 -> 3``
3      Set different channels for VMN1's and VMN2's radio ``(no entries)``
====== ================================================= =====================

Geometry (distances chosen to satisfy Fig 8's adjacency): VMN1 at the
origin, VMN2 at (100, 0), VMN3 at (160, 0); everyone's initial range is
200, so all three are mutual neighbors at Step 1.  Shrinking VMN1's range
to 120 cuts the (asymmetric — hence the bidirectional HELLO check)
VMN1↔VMN3 link while keeping VMN1↔VMN2, so VMN3 becomes reachable only
through VMN2.  Retuning VMN1's radio to channel 2 leaves it with no
common channel with anyone: zero routes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.geometry import Vec2
from ..core.ids import ChannelId, RadioIndex
from ..core.server import InProcessEmulator
from ..models.radio import RadioConfig
from ..protocols.common import ProtocolTuning
from ..protocols.hybrid import HybridProtocol

__all__ = ["Table2Row", "run_table2", "EXPECTED"]


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2: the operation and VMN1's routing table after it."""

    step: int
    operation: str
    entries: tuple[str, ...]

    @property
    def n_entries(self) -> int:
        return len(self.entries)


EXPECTED = (
    Table2Row(1, "Construct the network scene", ("1 -> 2", "1 -> 3")),
    Table2Row(2, "Shrink the radio range of VMN1 to exclude VMN3",
              ("1 -> 2", "1 -> 2 -> 3")),
    Table2Row(3, "Set different channels for the radios on VMN1 and VMN2",
              ()),
)
"""The paper's expected routing tables (reconstructed; see module docs)."""


def run_table2(
    *,
    seed: int = 7,
    hello_interval: float = 0.5,
    settle: float = 6.0,
) -> list[Table2Row]:
    """Execute the three operator steps; return the measured rows.

    ``settle`` is how long the protocol gets to converge after each scene
    operation (it must exceed the neighbor timeout so stale links die).
    """
    tuning = ProtocolTuning(
        hello_interval=hello_interval,
        neighbor_timeout=3.0 * hello_interval + 0.1,
        route_lifetime=6.0 * hello_interval,
    )
    emu = InProcessEmulator(seed=seed)
    vmn1 = emu.add_node(
        Vec2(0, 0), RadioConfig.single(1, 200.0),
        protocol=HybridProtocol(tuning), label="VMN1",
    )
    emu.add_node(
        Vec2(100, 0), RadioConfig.single(1, 200.0),
        protocol=HybridProtocol(tuning), label="VMN2",
    )
    emu.add_node(
        Vec2(160, 0), RadioConfig.single(1, 200.0),
        protocol=HybridProtocol(tuning), label="VMN3",
    )

    rows: list[Table2Row] = []

    # Step 1: scene constructed; let the periodic broadcasting converge.
    emu.run_for(settle)
    rows.append(
        Table2Row(1, EXPECTED[0].operation,
                  tuple(vmn1.protocol.route_summary()))
    )

    # Step 2: shrink VMN1's range so VMN3 (at 160) is out but VMN2 (100) in.
    emu.scene.set_radio_range(vmn1.node_id, RadioIndex(0), 120.0)
    emu.run_for(settle)
    rows.append(
        Table2Row(2, EXPECTED[1].operation,
                  tuple(vmn1.protocol.route_summary()))
    )

    # Step 3: VMN1's radio to channel 2 — no common channel with anyone.
    emu.scene.set_radio_channel(vmn1.node_id, RadioIndex(0), ChannelId(2))
    emu.run_for(settle)
    rows.append(
        Table2Row(3, EXPECTED[2].operation,
                  tuple(vmn1.protocol.route_summary()))
    )
    return rows


def format_table(rows: list[Table2Row]) -> str:
    """Render measured rows next to the paper's expected ones."""
    lines = [
        f"{'Step':<5} {'Operation':<55} {'Routing Table in VMN1'}",
        "-" * 110,
    ]
    for row, expected in zip(rows, EXPECTED):
        got = "; ".join(row.entries) or "(none)"
        want = "; ".join(expected.entries) or "(none)"
        mark = "OK " if row.entries == expected.entries else "DIFF"
        lines.append(
            f"{row.step:<5} {row.operation:<55} "
            f"# of entries: {row.n_entries}  [{got}]  "
            f"expected: {expected.n_entries} [{want}]  {mark}"
        )
    return "\n".join(lines)
