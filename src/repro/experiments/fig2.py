"""Fig 2 phenomenon — serialized time-stamping error, quantified.

§2.1: "Several emulation clients generate packets simultaneously but in
the view of the server these packets are sent at different time due to
the serial reception and subsequent processing."

Experiment: ``n`` clients each transmit a burst of frames at the *same*
emulation instant.  We run the identical workload on

* **PoEm** — clients stamp in parallel with synchronized clocks; the
  recorded receipt anchor is the client stamp, and
* **JEmu baseline** — the server stamps on serial reception, one
  ``service_time`` apart.

The metric is the time-stamping error ``t_receipt − t_origin`` per
recorded packet.  For PoEm it is zero by construction; for the serial
baseline the worst error grows linearly with the burst size — the
scalability wall the paper's parallel stamping removes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.jemu import JEmuEmulator
from ..core.geometry import Vec2
from ..core.ids import BROADCAST_NODE
from ..core.server import InProcessEmulator
from ..models.radio import RadioConfig
from ..stats.metrics import stamp_errors

__all__ = ["Fig2Row", "run_fig2"]


@dataclass(frozen=True)
class Fig2Row:
    """Stamp-error statistics at one client count."""

    n_clients: int
    burst: int
    poem_max_error: float
    poem_mean_error: float
    jemu_max_error: float
    jemu_mean_error: float


def _simultaneous_burst(emu, hosts, burst: int) -> None:
    """Every client transmits ``burst`` broadcast frames at t=now."""
    for host in hosts:
        for _ in range(burst):
            host.transmit(BROADCAST_NODE, b"burst-probe", channel=1,
                          size_bits=1024)


def run_fig2(
    client_counts: tuple[int, ...] = (2, 4, 8, 16, 32),
    *,
    burst: int = 4,
    service_time: float = 0.001,
    seed: int = 3,
) -> list[Fig2Row]:
    """Measure stamp error vs client count on both architectures."""
    rows = []
    for n in client_counts:
        # --- PoEm: parallel client stamping -------------------------------
        poem = InProcessEmulator(seed=seed)
        hosts = [
            poem.add_node(
                Vec2(float(10 * i), 0.0), RadioConfig.single(1, 10_000.0)
            )
            for i in range(n)
        ]
        _simultaneous_burst(poem, hosts, burst)
        poem.run_for(5.0)
        poem_err = stamp_errors(poem.recorder.packets())

        # --- JEmu: serial server stamping ----------------------------------
        jemu = JEmuEmulator(seed=seed, service_time=service_time)
        jhosts = [
            jemu.add_node(
                Vec2(float(10 * i), 0.0), RadioConfig.single(1, 10_000.0)
            )
            for i in range(n)
        ]
        _simultaneous_burst(jemu, jhosts, burst)
        jemu.run_for(5.0)
        jemu_err = stamp_errors(jemu.recorder.packets())

        rows.append(
            Fig2Row(
                n_clients=n,
                burst=burst,
                poem_max_error=float(np.max(np.abs(poem_err)))
                if poem_err.size else 0.0,
                poem_mean_error=float(np.mean(np.abs(poem_err)))
                if poem_err.size else 0.0,
                jemu_max_error=float(np.max(np.abs(jemu_err)))
                if jemu_err.size else 0.0,
                jemu_mean_error=float(np.mean(np.abs(jemu_err)))
                if jemu_err.size else 0.0,
            )
        )
    return rows


def format_rows(rows: list[Fig2Row]) -> str:
    lines = [
        f"{'clients':>8} {'PoEm max err':>13} {'PoEm mean':>10} "
        f"{'JEmu max err':>13} {'JEmu mean':>10}",
        "-" * 60,
    ]
    for r in rows:
        lines.append(
            f"{r.n_clients:>8} {r.poem_max_error:13.6f} "
            f"{r.poem_mean_error:10.6f} {r.jemu_max_error:13.6f} "
            f"{r.jemu_mean_error:10.6f}"
        )
    return "\n".join(lines)
