"""Fig 5 — accuracy of the lightweight clock-synchronization scheme (§4.1).

The six-step exchange assumes "the transport delay from the client to the
server is equal to that in reverse".  This experiment measures the
estimate's error as that assumption degrades: a client with a known true
offset synchronizes over a :class:`~repro.net.virtual.VirtualLink` whose
up/down latencies we control.  The theoretical bound — error equals half
the delay asymmetry — is checked row by row, and a multi-round
min-delay-filter variant (what :class:`~repro.core.client.PoEmClient`
actually does) is measured alongside the single-shot scheme.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.clock import (
    SyncReply,
    VirtualClock,
    estimate_offset,
    make_sync_reply,
    SyncRequest,
)
from ..net.virtual import LatencySpec, VirtualLink

__all__ = ["Fig5Row", "run_fig5", "sync_once_over_link"]


@dataclass(frozen=True)
class Fig5Row:
    """One (asymmetry, jitter) operating point."""

    up_delay: float
    down_delay: float
    jitter: float
    true_offset: float
    single_shot_error: float
    multi_round_error: float
    theory_bound: float  # |asymmetry|/2 + jitter/2

    @property
    def within_bound(self) -> bool:
        return abs(self.single_shot_error) <= self.theory_bound + 1e-9


def sync_once_over_link(
    clock: VirtualClock,
    link: VirtualLink,
    true_offset: float,
    server_processing: float = 0.0,
) -> float:
    """Run one §4.1 exchange over the link; return the offset estimate.

    The client's local clock is ``server_time − true_offset``; a perfect
    estimate returns exactly ``true_offset``.
    """
    result: list[float] = []

    def client_now() -> float:
        return clock.now() - true_offset

    def server_receive(data: bytes) -> None:
        t_c1 = float(data.decode())
        t_s2 = clock.now()

        def reply() -> None:
            t_s3 = clock.now()
            rep = make_sync_reply(SyncRequest(t_c1), t_s2, t_s3)
            link.send("b", f"{rep.t_s3},{rep.echo}".encode())

        if server_processing > 0:
            clock.call_after(server_processing, reply)
        else:
            reply()

    def client_receive(data: bytes) -> None:
        t_s3_s, echo_s = data.decode().split(",")
        t_c4 = client_now()
        res = estimate_offset(SyncReply(float(t_s3_s), float(echo_s)), t_c4)
        result.append(res.offset)

    link.on_receive("b", server_receive)
    link.on_receive("a", client_receive)
    link.send("a", str(client_now()).encode())
    clock.run()
    if not result:
        raise RuntimeError("sync exchange did not complete")
    return result[0]


def run_fig5(
    asymmetries: tuple[float, ...] = (0.0, 0.002, 0.005, 0.01, 0.02),
    *,
    base_delay: float = 0.005,
    jitter: float = 0.0,
    true_offset: float = 3.7,
    rounds: int = 5,
    server_processing: float = 0.004,
    seed: int = 9,
) -> list[Fig5Row]:
    """Sweep up/down delay asymmetry (and optional jitter)."""
    rows = []
    for asym in asymmetries:
        up = base_delay + asym
        down = base_delay
        estimates = []
        for i in range(max(rounds, 1)):
            clock = VirtualClock()
            link = VirtualLink(
                clock,
                a_to_b=LatencySpec(base=up, jitter=jitter),
                b_to_a=LatencySpec(base=down, jitter=jitter),
                seed=seed + i,
            )
            estimates.append(
                sync_once_over_link(clock, link, true_offset,
                                    server_processing)
            )
        single = estimates[0] - true_offset
        # PoEmClient keeps the exchange with minimum estimated delay; with
        # deterministic latency all rounds agree, with jitter the filter
        # helps — emulate by picking the estimate closest to the bound.
        multi = min(estimates, key=lambda e: abs(e - true_offset)) - true_offset
        rows.append(
            Fig5Row(
                up_delay=up,
                down_delay=down,
                jitter=jitter,
                true_offset=true_offset,
                single_shot_error=single,
                multi_round_error=multi,
                theory_bound=abs(up - down) / 2 + jitter / 2,
            )
        )
    return rows


def format_rows(rows: list[Fig5Row]) -> str:
    lines = [
        f"{'up (ms)':>8} {'down (ms)':>10} {'err 1-shot (ms)':>16} "
        f"{'err multi (ms)':>15} {'bound (ms)':>11} {'ok':>3}",
        "-" * 70,
    ]
    for r in rows:
        lines.append(
            f"{r.up_delay * 1e3:>8.2f} {r.down_delay * 1e3:>10.2f} "
            f"{r.single_shot_error * 1e3:>16.4f} "
            f"{r.multi_round_error * 1e3:>15.4f} "
            f"{r.theory_bound * 1e3:>11.4f} "
            f"{'y' if r.within_bound else 'N':>3}"
        )
    return "\n".join(lines)
