"""Sensitivity sweep: the Fig 10 agreement is not tuned to Table 3.

The headline reproduction claim — measured loss tracks the closed-form
expected real-time curve — is checked here across a grid of scenario
parameters (relay speed, loss ceiling ``P1``, knee distance ``D0``)
rather than only at Table 3's values.  For every grid point the driver

* predicts the link-breakage time ``sqrt(R² − d²)/v`` analytically,
* runs the full emulation,
* reports the mean absolute error between measured and expected curves.

If the emulator's loss pipeline, mobility evaluation, or stamping were
subtly wrong, the error would blow up somewhere on the grid; it staying
uniformly small is much stronger evidence than one matched figure.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .fig10 import Fig10Params, run_fig10

__all__ = ["SensitivityRow", "run_sensitivity"]


@dataclass(frozen=True)
class SensitivityRow:
    """One grid point's agreement outcome."""

    speed: float
    p1: float
    d0: float
    breakage_time: float
    mean_abs_error: float
    sent: int


def run_sensitivity(
    speeds: tuple[float, ...] = (5.0, 10.0, 20.0),
    p1s: tuple[float, ...] = (0.5, 0.9),
    d0s: tuple[float, ...] = (25.0, 50.0, 100.0),
    *,
    base: Fig10Params = Fig10Params(),
    seed: int = 19,
) -> list[SensitivityRow]:
    """Sweep the grid; duration adapts to cover each breakage time."""
    rows = []
    for speed in speeds:
        for p1 in p1s:
            for d0 in d0s:
                params = replace(
                    base,
                    speed=speed,
                    p1=p1,
                    d0=d0,
                    seed=seed,
                    duration=min(
                        ((base.radio_range**2 - base.hop_distance**2) ** 0.5
                         / speed) + 4.0,
                        40.0,
                    ),
                )
                result = run_fig10(params)
                rows.append(
                    SensitivityRow(
                        speed=speed,
                        p1=p1,
                        d0=d0,
                        breakage_time=result.breakage_time,
                        mean_abs_error=result.mean_abs_error_realtime(),
                        sent=result.sent,
                    )
                )
    return rows


def format_rows(rows: list[SensitivityRow]) -> str:
    lines = [
        f"{'speed':>6} {'P1':>5} {'D0':>6} {'breakage (s)':>13} "
        f"{'mean |err|':>11} {'frames':>7}",
        "-" * 55,
    ]
    for r in rows:
        lines.append(
            f"{r.speed:>6.1f} {r.p1:>5.2f} {r.d0:>6.1f} "
            f"{r.breakage_time:>13.2f} {r.mean_abs_error:>11.4f} "
            f"{r.sent:>7}"
        )
    worst = max(r.mean_abs_error for r in rows)
    lines.append("-" * 55)
    lines.append(f"worst grid-point error: {worst:.4f}")
    return "\n".join(lines)
