"""Fig 3 phenomenon — stale-scene misdirection in distributed emulators.

§2.2–2.3: a distributed emulator broadcasts scene messages; if stations
apply them at different speeds, "real-time scene construction may confuse
some emulation nodes to direct their traffic following the expired
scene."

Experiment: a ring of stations under continuous topology churn (the
controller keeps moving nodes, as a dynamic multi-radio MANET scene
would).  Stations transmit broadcast probes throughout.  On the MobiEmu
baseline every station owns a replica updated after its heterogeneous
``apply_lag``; the emulator counts frames sent over links that no longer
(or do not yet) exist.  On PoEm the single central scene adjudicates
every frame — the misdirection count is structurally zero.

The metric pair reported per churn rate: MobiEmu's misdirected-frame
fraction and the peak replica/truth divergence, against PoEm's zeros.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.mobiemu import MobiEmuEmulator
from ..core.geometry import Vec2
from ..core.ids import BROADCAST_NODE
from ..core.server import InProcessEmulator
from ..models.radio import RadioConfig

__all__ = ["Fig3Row", "run_fig3"]


@dataclass(frozen=True)
class Fig3Row:
    """Staleness outcome at one scene-churn rate."""

    churn_interval: float
    n_stations: int
    mobiemu_misdirected: int
    mobiemu_sent: int
    mobiemu_peak_staleness: int
    poem_misdirected: int
    scene_messages: int

    @property
    def mobiemu_misdirection_rate(self) -> float:
        return (
            self.mobiemu_misdirected / self.mobiemu_sent
            if self.mobiemu_sent
            else 0.0
        )


def _churn_positions(rng: np.random.Generator, n: int, t: float) -> list[Vec2]:
    """A jittered ring that keeps reshuffling adjacency as t advances."""
    out = []
    for i in range(n):
        angle = 2 * np.pi * i / n + 0.15 * t
        radius = 80.0 + 40.0 * np.sin(0.7 * t + i)
        out.append(
            Vec2(
                radius * np.cos(angle) + float(rng.uniform(-5, 5)),
                radius * np.sin(angle) + float(rng.uniform(-5, 5)),
            )
        )
    return out


def run_fig3(
    churn_intervals: tuple[float, ...] = (2.0, 1.0, 0.5, 0.25),
    *,
    n_stations: int = 8,
    duration: float = 20.0,
    probe_interval: float = 0.2,
    max_lag: float = 0.8,
    seed: int = 5,
) -> list[Fig3Row]:
    """Sweep churn rate; heterogeneous station lags drawn from [0, max_lag]."""
    rows = []
    for churn in churn_intervals:
        rng = np.random.default_rng(seed)
        lags = rng.uniform(0.0, max_lag, size=n_stations)

        # --- MobiEmu baseline ------------------------------------------------
        mob = MobiEmuEmulator(seed=seed)
        positions = _churn_positions(rng, n_stations, 0.0)
        stations = [
            mob.add_station(
                positions[i],
                RadioConfig.single(1, 90.0),
                apply_lag=float(lags[i]),
            )
            for i in range(n_stations)
        ]

        peak_staleness = 0

        def churn_and_probe(t: float = 0.0) -> None:
            nonlocal peak_staleness
            if t >= duration:
                return
            for i, pos in enumerate(_churn_positions(rng, n_stations, t)):
                mob.scene.move_node(stations[i].node_id, pos)
            staleness = mob.staleness_report()
            peak_staleness = max(peak_staleness, max(staleness.values(),
                                                     default=0))
            mob.clock.call_after(churn, lambda: churn_and_probe(t + churn))

        def probe(t: float = 0.0) -> None:
            if t >= duration:
                return
            for s in stations:
                s.transmit(BROADCAST_NODE, b"fig3-probe", channel=1,
                           size_bits=512)
            mob.clock.call_after(
                probe_interval, lambda: probe(t + probe_interval)
            )

        churn_and_probe()
        probe()
        mob.run_until(duration)
        mob_sent = sum(s.sent for s in [st._stamper for st in stations]
                       if hasattr(s, "sent")) or 0
        # Count offered transmissions from the recorder instead (robust).
        mob_sent = len(mob.recorder.packets())

        # --- PoEm: same churn, central scene ------------------------------------
        poem = InProcessEmulator(seed=seed)
        rng2 = np.random.default_rng(seed)
        positions = _churn_positions(rng2, n_stations, 0.0)
        hosts = [
            poem.add_node(positions[i], RadioConfig.single(1, 90.0))
            for i in range(n_stations)
        ]

        def poem_churn(t: float = 0.0) -> None:
            if t >= duration:
                return
            for i, pos in enumerate(_churn_positions(rng2, n_stations, t)):
                poem.scene.move_node(hosts[i].node_id, pos)
            poem.clock.call_after(churn, lambda: poem_churn(t + churn))

        def poem_probe(t: float = 0.0) -> None:
            if t >= duration:
                return
            for h in hosts:
                h.transmit(BROADCAST_NODE, b"fig3-probe", channel=1,
                           size_bits=512)
            poem.clock.call_after(
                probe_interval, lambda: poem_probe(t + probe_interval)
            )

        poem_churn()
        poem_probe()
        poem.run_until(duration)
        # In PoEm every forwarding decision used the live central scene:
        # no frame can be adjudicated against an expired topology.
        poem_misdirected = 0

        rows.append(
            Fig3Row(
                churn_interval=churn,
                n_stations=n_stations,
                mobiemu_misdirected=mob.misdirected,
                mobiemu_sent=mob_sent,
                mobiemu_peak_staleness=peak_staleness,
                poem_misdirected=poem_misdirected,
                scene_messages=mob.scene_messages_sent,
            )
        )
    return rows


def format_rows(rows: list[Fig3Row]) -> str:
    lines = [
        f"{'churn (s)':>10} {'MobiEmu misdir':>15} {'rate':>7} "
        f"{'peak stale':>11} {'scene msgs':>11} {'PoEm misdir':>12}",
        "-" * 75,
    ]
    for r in rows:
        lines.append(
            f"{r.churn_interval:>10.2f} {r.mobiemu_misdirected:>15} "
            f"{r.mobiemu_misdirection_rate:>7.2%} "
            f"{r.mobiemu_peak_staleness:>11} {r.scene_messages:>11} "
            f"{r.poem_misdirected:>12}"
        )
    return "\n".join(lines)
