"""Fig 9 / Fig 10 + Table 3 — the performance-evaluation experiment (§6.2).

Scenario (Fig 9, Table 3): VMN1 (radio on channel 1) streams 4 Mbps CBR
to VMN3 (radio on channel 2).  They are 240 units apart — outside the
200-unit radio range — so VMN2, carrying **two radios** (channels 1 and
2) and starting midway, relays every frame.  VMN2 moves "downwards" at
10 units/s, stretching both hops: ``r(t) = sqrt(120² + (10t)²)``.  All
packet loss is caused by the link model (P0=0.1, P1=0.9, D0=50, R=200);
the two hops use different channels, "to avoid any collision".

Fig 10 plots the packet loss rate over time, three curves:

* **Expected real-time** — the closed-form product of the per-hop loss
  model at the packet's true generation time
  (:class:`~repro.stats.theory.RelayScenario`).
* **Expected non-real-time** — the same truth as a *serially-stamped*
  recorder would report it: stamped late, so the curve trails
  (:func:`~repro.stats.theory.nonrealtime_curve`).
* **Experiment** — measured end-to-end on PoEm with client-side parallel
  time-stamping.  The paper's claim, which this reproduction confirms,
  is that the experiment tracks the expected *real-time* curve.

The relay is a static application (receive on channel 1 → retransmit on
channel 2), not a routing protocol, so measured loss isolates the link
model exactly as the paper's error analysis assumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.geometry import Vec2
from ..core.ids import NodeId
from ..core.packet import Packet
from ..core.server import InProcessEmulator, VirtualNodeHost
from ..models.link import BandwidthModel, DelayModel, LinkModel, PacketLossModel
from ..models.mobility import ConstantVelocity
from ..models.radio import Radio, RadioConfig
from ..stats.metrics import loss_rate_from_logs
from ..stats.theory import RelayScenario, nonrealtime_curve, serialize_stamps
from ..traffic.generators import CbrSource, parse_probe

__all__ = ["Fig10Params", "Fig10Result", "run_fig10"]


@dataclass(frozen=True)
class Fig10Params:
    """Table 3, verbatim."""

    hop_distance: float = 120.0
    radio_range: float = 200.0
    cbr_bps: float = 4_000_000.0
    speed: float = 10.0
    direction_deg: float = 270.0  # "downwards"
    p0: float = 0.1
    p1: float = 0.9
    d0: float = 50.0
    duration: float = 20.0
    window: float = 1.0
    packet_size_bits: int = 8192
    seed: int = 11

    def scenario(self) -> RelayScenario:
        return RelayScenario(
            hop_distance=self.hop_distance,
            radio_range=self.radio_range,
            speed=self.speed,
            loss=PacketLossModel(
                p0=self.p0, p1=self.p1, d0=self.d0,
                radio_range=self.radio_range,
            ),
        )

    def link(self) -> LinkModel:
        return LinkModel(
            loss=PacketLossModel(
                p0=self.p0, p1=self.p1, d0=self.d0,
                radio_range=self.radio_range,
            ),
            # High peak bandwidth so serialization does not throttle the
            # 4 Mbps offered load — the paper attributes all loss to the
            # loss model.
            bandwidth=BandwidthModel(peak=54e6, radio_range=self.radio_range),
            delay=DelayModel(base=0.0005),
        )


@dataclass
class Fig10Result:
    """The three Fig 10 curves plus bookkeeping."""

    t: np.ndarray
    expected_realtime: np.ndarray
    expected_nonrealtime: np.ndarray
    measured: np.ndarray
    measured_nonrealtime: np.ndarray
    sent: int
    received: int
    breakage_time: float

    def rows(self) -> list[tuple[float, float, float, float]]:
        """(time, expected_rt, expected_nonrt, measured) — the plot data."""
        return [
            (float(a), float(b), float(c), float(d))
            for a, b, c, d in zip(
                self.t,
                self.expected_realtime,
                self.expected_nonrealtime,
                self.measured,
            )
        ]

    def max_abs_error_realtime(self) -> float:
        """Peak |measured − expected_rt| over windows with traffic."""
        mask = ~np.isnan(self.measured)
        return float(
            np.max(np.abs(self.measured[mask] - self.expected_realtime[mask]))
        )

    def mean_abs_error_realtime(self) -> float:
        mask = ~np.isnan(self.measured)
        return float(
            np.mean(np.abs(self.measured[mask] - self.expected_realtime[mask]))
        )


class _StaticRelay:
    """VMN2's role: copy every channel-1 frame out on channel 2."""

    def __init__(self, host: VirtualNodeHost, destination: NodeId) -> None:
        self.host = host
        self.destination = destination
        self.relayed = 0
        host.on_app_packet = self._relay

    def _relay(self, packet: Packet) -> None:
        self.relayed += 1
        self.host.transmit(
            self.destination,
            packet.payload,
            channel=2,
            kind="data",
            size_bits=packet.size_bits,
        )


def run_fig10(params: Fig10Params = Fig10Params()) -> Fig10Result:
    """Run the experiment and assemble the three curves."""
    link = params.link()
    emu = InProcessEmulator(seed=params.seed)
    d = params.hop_distance
    vmn1 = emu.add_node(
        Vec2(0.0, 0.0),
        RadioConfig.of([Radio(1, params.radio_range, link)]),
        label="VMN1",
    )
    vmn2 = emu.add_node(
        Vec2(d, 0.0),
        RadioConfig.of(
            [Radio(1, params.radio_range, link),
             Radio(2, params.radio_range, link)]
        ),
        label="VMN2",
    )
    vmn3 = emu.add_node(
        Vec2(2 * d, 0.0),
        RadioConfig.of([Radio(2, params.radio_range, link)]),
        label="VMN3",
    )
    emu.scene.set_mobility(
        vmn2.node_id,
        ConstantVelocity(params.speed, params.direction_deg, leg_time=0.5),
    )

    _StaticRelay(vmn2, vmn3.node_id)
    received: set[int] = set()

    def sink(packet: Packet) -> None:
        probe = parse_probe(packet.payload)
        if probe is not None:
            received.add(probe[0])

    vmn3.on_app_packet = sink

    source = CbrSource(
        vmn1.timers(),
        vmn1.now,
        lambda payload, bits: vmn1.transmit(
            vmn2.node_id, payload, channel=1, size_bits=bits
        ),
        rate_bps=params.cbr_bps,
        packet_size_bits=params.packet_size_bits,
        seed=params.seed,
    )
    source.start()
    emu.run_until(params.duration)
    source.stop()

    measured = loss_rate_from_logs(
        source.sent_log, received, 0.0, params.duration, params.window
    )

    scenario = params.scenario()
    expected_rt = scenario.end_to_end_loss(measured.t)
    arrival_pps = params.cbr_bps / params.packet_size_bits
    # The modeled serial recorder stamps at ~60% of the offered rate —
    # "recording the traffic by one server in real time will be bounded
    # by the server processing power" (§2.1).
    service_pps = 0.6 * arrival_pps
    expected_nrt = nonrealtime_curve(
        scenario, measured.t, arrival_pps, service_pps
    )

    # The *measured* non-real-time curve: the identical run's outcomes,
    # attributed as a JEmu-style serial recorder would stamp them.
    true_times = np.array([t for t, _ in source.sent_log])
    distorted = serialize_stamps(true_times, service_pps)
    distorted_log = [
        (float(ts), seq) for ts, (_, seq) in zip(distorted, source.sent_log)
    ]
    measured_nrt = loss_rate_from_logs(
        distorted_log, received, 0.0, params.duration, params.window
    )

    return Fig10Result(
        t=measured.t,
        expected_realtime=expected_rt,
        expected_nonrealtime=expected_nrt,
        measured=measured.v,
        measured_nonrealtime=measured_nrt.v,
        sent=source.sent,
        received=len(received),
        breakage_time=scenario.breakage_time(),
    )


def format_result(result: Fig10Result) -> str:
    """Fig 10 as a text table (plus the headline agreement numbers)."""
    lines = [
        f"{'t (s)':>6} {'expected RT':>12} {'expected nonRT':>15} "
        f"{'measured':>10} {'measured nonRT':>15}",
        "-" * 64,
    ]
    for (t, rt, nrt, m), mn in zip(result.rows(),
                                   result.measured_nonrealtime):
        meas = "  n/a" if np.isnan(m) else f"{m:10.3f}"
        meas_n = "  n/a" if np.isnan(mn) else f"{mn:15.3f}"
        lines.append(f"{t:6.1f} {rt:12.3f} {nrt:15.3f} {meas} {meas_n}")
    lines.append("-" * 64)
    lines.append(
        f"sent={result.sent} received={result.received} "
        f"link breakage at t={result.breakage_time:.2f}s"
    )
    lines.append(
        f"mean |measured - expected RT| = "
        f"{result.mean_abs_error_realtime():.4f}"
    )
    return "\n".join(lines)
