"""Scalability — node-count scaling and the future-work cluster (§3, §7).

Two claims are measured:

1. "Scalable in the number of emulated nodes": the per-packet pipeline
   cost and wall-clock throughput of the in-process emulator as the node
   count grows (broadcast beacons make offered load grow superlinearly —
   the honest stress).
2. The future-work cluster: the same offered load against
   :class:`~repro.cluster.parallel.ParallelEmulator` with 1..K workers of
   fixed per-worker service rate.  The metric is the worst queueing lag a
   packet experienced before its pipeline ran — the bottleneck §2.1
   describes — which should fall roughly as 1/K until shard imbalance
   bites.
3. The *real* cluster: the identical scripted broadcast load against
   :class:`~repro.cluster.sharded.ShardedEmulator` at 1..K worker
   **processes**.  Here the metric is plain wall-clock (transmit +
   barrier + collect) — actual OS parallelism, so speedup vs the
   1-worker row is the headline number (and meaningless on a 1-core
   box, which is why the bench gate is core-aware).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..cluster.parallel import ParallelEmulator
from ..cluster.sharded import ShardedEmulator
from ..core.geometry import Vec2
from ..core.ids import BROADCAST_NODE
from ..core.server import InProcessEmulator
from ..models.radio import RadioConfig

__all__ = [
    "NodeScaleRow",
    "ClusterScaleRow",
    "ShardedScaleRow",
    "run_node_scaling",
    "run_cluster_scaling",
    "run_sharded_scaling",
]


@dataclass(frozen=True)
class NodeScaleRow:
    """Emulator throughput at one node count."""

    n_nodes: int
    frames_ingested: int
    frames_forwarded: int
    emu_seconds: float
    wall_seconds: float

    @property
    def frames_per_wall_second(self) -> float:
        return self.frames_ingested / max(self.wall_seconds, 1e-12)


@dataclass(frozen=True)
class ClusterScaleRow:
    """Cluster queueing behaviour at one worker count."""

    n_workers: int
    n_nodes: int
    offered_pps: float
    processed: int
    max_queue_lag: float
    imbalance: float


@dataclass(frozen=True)
class ShardedScaleRow:
    """Wall-clock of one sharded (multi-process) run at one worker count."""

    n_workers: int
    n_nodes: int
    frames_offered: int
    frames_forwarded: int
    wall_seconds: float
    speedup: float
    """Wall-clock of the first (reference) row over this row's —
    > 1 means this cluster size was faster."""


def _grid_nodes(emu, n: int, spacing: float = 60.0, radio_range: float = 150.0):
    """Place n nodes on a square grid with local connectivity."""
    side = int(np.ceil(np.sqrt(n)))
    hosts = []
    for i in range(n):
        hosts.append(
            emu.add_node(
                Vec2(spacing * (i % side), spacing * (i // side)),
                RadioConfig.single(1, radio_range),
            )
        )
    return hosts


def _broadcast_load(emu, hosts, duration: float, interval: float) -> None:
    """Every node broadcasts a beacon-sized frame every ``interval``."""

    def beat(host, t: float = 0.0) -> None:
        if t >= duration:
            return
        host.transmit(BROADCAST_NODE, b"scale-beacon", channel=1,
                      size_bits=512)
        emu.clock.call_after(interval, lambda: beat(host, t + interval))

    for host in hosts:
        beat(host)


def run_node_scaling(
    node_counts: tuple[int, ...] = (10, 25, 50, 100),
    *,
    duration: float = 5.0,
    interval: float = 0.5,
    seed: int = 4,
    profile_hz: Optional[float] = None,
) -> list[NodeScaleRow]:
    """Measure ingest throughput vs emulated-node count.

    ``profile_hz`` runs every emulator with the continuous sampling
    profiler on at that rate — the variant the profiler-overhead bench
    compares against the bare run.
    """
    rows = []
    for n in node_counts:
        emu = InProcessEmulator(seed=seed, profile_hz=profile_hz)
        try:
            hosts = _grid_nodes(emu, n)
            _broadcast_load(emu, hosts, duration, interval)
            t0 = time.perf_counter()
            emu.run_until(duration + 1.0)
            wall = time.perf_counter() - t0
            rows.append(
                NodeScaleRow(
                    n_nodes=n,
                    frames_ingested=emu.engine.ingested,
                    frames_forwarded=emu.engine.forwarded,
                    emu_seconds=duration,
                    wall_seconds=wall,
                )
            )
        finally:
            emu.shutdown()
    return rows


def run_cluster_scaling(
    worker_counts: tuple[int, ...] = (1, 2, 4, 8),
    *,
    n_nodes: int = 32,
    duration: float = 5.0,
    interval: float = 0.05,
    worker_service_rate: float = 2_000.0,
    seed: int = 4,
) -> list[ClusterScaleRow]:
    """Measure queueing lag vs cluster size under fixed offered load."""
    rows = []
    for k in worker_counts:
        emu = ParallelEmulator(
            n_workers=k,
            worker_service_rate=worker_service_rate,
            seed=seed,
        )
        hosts = _grid_nodes(emu, n_nodes)
        _broadcast_load(emu, hosts, duration, interval)
        emu.run_until(duration + 2.0)
        report = emu.load_report()
        rows.append(
            ClusterScaleRow(
                n_workers=k,
                n_nodes=n_nodes,
                offered_pps=n_nodes / interval,
                processed=report["processed_total"],
                max_queue_lag=report["max_queue_lag"],
                imbalance=report["imbalance"],
            )
        )
    return rows


def run_sharded_scaling(
    worker_counts: tuple[int, ...] = (1, 4),
    *,
    n_nodes: int = 32,
    frames_per_node: int = 64,
    interval: float = 0.01,
    seed: int = 4,
    size_bits: int = 512,
    telemetry: bool = False,
    sample_every: Optional[int] = None,
) -> list[ShardedScaleRow]:
    """Broadcast-ingest wall-clock vs real (multi-process) cluster size.

    Every worker count replays the *identical* scripted load: each of
    ``n_nodes`` grid nodes broadcasts ``frames_per_node`` beacons at
    origin stamps ``interval`` apart.  Timed region: transmit + barrier
    flush + collect — worker spawn/teardown is excluded, since a
    long-lived cluster pays it once, not per scenario.

    ``telemetry=True`` runs every cluster with full cluster-wide
    observability on (per-worker registries exported and merged at
    barriers, cross-process trace sampling at ``sample_every``) — the
    variant the telemetry-overhead bench compares against the bare run.
    """
    from ..obs.telemetry import Telemetry

    rows: list[ShardedScaleRow] = []
    base_wall: float | None = None
    horizon = interval * (frames_per_node + 1) + 2.0
    for k in worker_counts:
        bundle = (
            Telemetry(
                sample_every=sample_every or Telemetry.DEFAULT_SAMPLE_EVERY
            )
            if telemetry
            else None
        )
        with ShardedEmulator(n_workers=k, seed=seed, telemetry=bundle) as emu:
            hosts = _grid_nodes(emu, n_nodes)
            t0 = time.perf_counter()
            for f in range(frames_per_node):
                t = interval * (f + 1)
                for host in hosts:
                    host.transmit(
                        BROADCAST_NODE,
                        b"scale-beacon",
                        channel=1,
                        size_bits=size_bits,
                        t=t,
                    )
            emu.flush(horizon)
            emu.collect()
            wall = time.perf_counter() - t0
            forwarded = emu.forwarded
        if base_wall is None:
            base_wall = wall
        rows.append(
            ShardedScaleRow(
                n_workers=k,
                n_nodes=n_nodes,
                frames_offered=n_nodes * frames_per_node,
                frames_forwarded=forwarded,
                wall_seconds=wall,
                speedup=base_wall / max(wall, 1e-12),
            )
        )
    return rows


def format_node_rows(rows: list[NodeScaleRow]) -> str:
    lines = [
        f"{'nodes':>6} {'ingested':>9} {'forwarded':>10} {'wall (s)':>9} "
        f"{'frames/s':>10}",
        "-" * 50,
    ]
    for r in rows:
        lines.append(
            f"{r.n_nodes:>6} {r.frames_ingested:>9} {r.frames_forwarded:>10} "
            f"{r.wall_seconds:>9.3f} {r.frames_per_wall_second:>10.0f}"
        )
    return "\n".join(lines)


def format_cluster_rows(rows: list[ClusterScaleRow]) -> str:
    lines = [
        f"{'workers':>8} {'offered pps':>12} {'processed':>10} "
        f"{'max lag (ms)':>13} {'imbalance':>10}",
        "-" * 60,
    ]
    for r in rows:
        lines.append(
            f"{r.n_workers:>8} {r.offered_pps:>12.0f} {r.processed:>10} "
            f"{r.max_queue_lag * 1e3:>13.2f} {r.imbalance:>10.2f}"
        )
    return "\n".join(lines)


def format_sharded_rows(rows: list[ShardedScaleRow]) -> str:
    lines = [
        f"{'workers':>8} {'offered':>8} {'forwarded':>10} {'wall (s)':>9} "
        f"{'speedup':>8}",
        "-" * 48,
    ]
    for r in rows:
        lines.append(
            f"{r.n_workers:>8} {r.frames_offered:>8} {r.frames_forwarded:>10} "
            f"{r.wall_seconds:>9.3f} {r.speedup:>8.2f}"
        )
    return "\n".join(lines)
