"""Table 1 — feature comparison, reproduced as behavioural probes.

The paper's Table 1 asserts four capabilities across PoEm, JEmu and
MobiEmu.  Instead of copying the checkmarks, each probe *exercises* the
capability on each implementation and reports what actually happened:

* **Real-time scene construction** — mutate the scene mid-run and check
  every node's forwarding view reflects it immediately (central scene) or
  lags (broadcast replicas).
* **Real-time traffic recording** — simultaneous burst; the recording is
  real-time iff receipt anchors equal the clients' generation stamps.
* **Multi-radio environment** — try to create a two-radio node.
* **Post-emulation replay** — try to build a ReplayEngine over the run's
  recording.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..baselines.jemu import JEmuEmulator
from ..baselines.mobiemu import MobiEmuEmulator
from ..core.geometry import Vec2
from ..core.ids import BROADCAST_NODE
from ..core.replay import ReplayEngine
from ..core.server import InProcessEmulator
from ..errors import ConfigurationError, ReplayError
from ..models.radio import Radio, RadioConfig
from ..stats.metrics import stamp_errors

__all__ = ["Table1Row", "run_table1", "EXPECTED"]


@dataclass(frozen=True)
class Table1Row:
    """One emulator's probed feature set."""

    emulator: str
    realtime_scene_construction: bool
    realtime_traffic_recording: bool
    multi_radio: bool
    replay: bool

    def as_tuple(self) -> tuple[bool, bool, bool, bool]:
        return (
            self.realtime_scene_construction,
            self.realtime_traffic_recording,
            self.multi_radio,
            self.replay,
        )


EXPECTED = {
    "PoEm": (True, True, True, True),
    "JEmu": (True, False, False, False),
    "MobiEmu": (False, True, False, False),
}
"""The paper's Table 1 checkmarks."""


def _probe_poem() -> Table1Row:
    emu = InProcessEmulator(seed=1)
    a = emu.add_node(Vec2(0, 0), RadioConfig.single(1, 100.0))
    b = emu.add_node(Vec2(50, 0), RadioConfig.single(1, 100.0))
    emu.run_for(0.1)
    # Scene construction: mutation is visible to forwarding immediately.
    emu.scene.move_node(b.node_id, Vec2(500, 0))
    a.transmit(b.node_id, b"probe", channel=1)
    emu.run_for(1.0)
    scene_rt = len(b.received) == 0  # the move took effect instantly
    # Recording: receipt anchored at the client stamp.
    emu.scene.move_node(b.node_id, Vec2(50, 0))
    a.transmit(b.node_id, b"probe2", channel=1)
    emu.run_for(1.0)
    errs = stamp_errors(emu.recorder.packets())
    recording_rt = bool(errs.size) and float(np.max(np.abs(errs))) < 1e-9
    # Multi-radio support.
    try:
        emu.add_node(
            Vec2(10, 10),
            RadioConfig.of([Radio(1, 100.0), Radio(2, 100.0)]),
        )
        multi = True
    except ConfigurationError:
        multi = False
    # Replay support.
    try:
        ReplayEngine(emu.recorder).scene_at(0.5)
        replay = True
    except ReplayError:
        replay = False
    return Table1Row("PoEm", scene_rt, recording_rt, multi, replay)


def _probe_jemu() -> Table1Row:
    emu = JEmuEmulator(seed=1, service_time=0.001)
    hosts = [
        emu.add_node(Vec2(float(5 * i), 0.0), RadioConfig.single(1, 1000.0))
        for i in range(8)
    ]
    # Scene construction: centralized too — mutations are immediate.
    emu.scene.move_node(hosts[-1].node_id, Vec2(5000, 0))
    hosts[0].transmit(hosts[-1].node_id, b"probe", channel=1)
    emu.run_for(1.0)
    scene_rt = len(hosts[-1].received) == 0
    emu.scene.move_node(hosts[-1].node_id, Vec2(35, 0))
    # Recording: the serial burst gives non-zero stamp errors.
    for h in hosts:
        h.transmit(BROADCAST_NODE, b"burst", channel=1)
    emu.run_for(2.0)
    errs = stamp_errors(emu.recorder.packets())
    recording_rt = bool(errs.size) and float(np.max(np.abs(errs))) < 1e-9
    try:
        emu.add_node(
            Vec2(10, 10),
            RadioConfig.of([Radio(1, 100.0), Radio(2, 100.0)]),
        )
        multi = True
    except ConfigurationError:
        multi = False
    try:
        ReplayEngine(emu.recorder).scene_at(0.5)
        replay = bool(emu.recorder.scene_events())
    except ReplayError:
        replay = False
    return Table1Row("JEmu", scene_rt, recording_rt, multi, replay)


def _probe_mobiemu() -> Table1Row:
    emu = MobiEmuEmulator(seed=1, default_apply_lag=0.5)
    s1 = emu.add_station(Vec2(0, 0), RadioConfig.single(1, 100.0))
    s2 = emu.add_station(Vec2(50, 0), RadioConfig.single(1, 100.0))
    emu.run_for(2.0)  # replicas settle
    # Scene construction: a mutation takes apply_lag to reach replicas —
    # a frame sent immediately afterwards still follows the expired scene.
    emu.scene.move_node(s2.node_id, Vec2(5000, 0))
    s1.transmit(s2.node_id, b"probe", channel=1)
    scene_rt = emu.misdirected == 0  # False: the stale replica misdirected it
    emu.run_for(2.0)
    # Recording: stations stamp locally — receipt anchor == origin stamp.
    s1.transmit(BROADCAST_NODE, b"probe2", channel=1)
    emu.run_for(1.0)
    errs = stamp_errors(emu.recorder.packets())
    recording_rt = errs.size == 0 or float(np.max(np.abs(errs))) < 1e-9
    try:
        emu.add_station(
            Vec2(10, 10),
            RadioConfig.of([Radio(1, 100.0), Radio(2, 100.0)]),
        )
        multi = True
    except ConfigurationError:
        multi = False
    try:
        ReplayEngine(emu.recorder).scene_at(0.5)
        replay = bool(emu.recorder.scene_events())
    except ReplayError:
        replay = False
    return Table1Row("MobiEmu", scene_rt, recording_rt, multi, replay)


def run_table1() -> list[Table1Row]:
    """Probe all three emulators; rows ordered as in the paper."""
    return [_probe_poem(), _probe_jemu(), _probe_mobiemu()]


def format_rows(rows: list[Table1Row]) -> str:
    def mark(v: bool) -> str:
        return "yes" if v else "no "

    lines = [
        f"{'Emulator':<9} {'RT scene':>9} {'RT recording':>13} "
        f"{'Multi-radio':>12} {'Replay':>7} {'matches paper':>14}",
        "-" * 70,
    ]
    for r in rows:
        ok = r.as_tuple() == EXPECTED[r.emulator]
        lines.append(
            f"{r.emulator:<9} {mark(r.realtime_scene_construction):>9} "
            f"{mark(r.realtime_traffic_recording):>13} "
            f"{mark(r.multi_radio):>12} {mark(r.replay):>7} "
            f"{'OK' if ok else 'DIFF':>14}"
        )
    return "\n".join(lines)
