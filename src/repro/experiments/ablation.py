"""Ablation: channel assignment × MAC algorithm (§6.2 design note + §7).

The paper's performance experiment gives the two relay hops *different*
channels, noting "the two channels are assigned diverse channel IDs to
avoid any collision".  The base emulator cannot test that design note —
it has no collision model — but with the §7 MAC extension
(:mod:`repro.models.mac`) we can ablate it:

========================  =================  ==========================
configuration             channels           MAC
========================  =================  ==========================
``dual-channel``          hop1=1, hop2=2     ALOHA (collisions possible)
``single-aloha``          both on 1          ALOHA
``single-csma``           both on 1          CSMA/CA (defer + backoff)
========================  =================  ==========================

Geometry is the Fig 9 relay chain with the relay **stationary** and the
distance-loss model disabled, so *every* loss is a collision artifact.
The offered CBR rate is set so a frame's airtime is a large fraction of
the inter-packet gap — the relay's forwarding of packet *k* then overlaps
the source's transmission of packet *k+1* whenever they share a channel.

Expected shape: dual-channel delivers ~everything (validating the
paper's design choice); single-channel ALOHA loses heavily; CSMA
recovers most of the loss at the cost of added latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.geometry import Vec2
from ..core.ids import ChannelId
from ..core.packet import DropReason, Packet
from ..core.server import InProcessEmulator
from ..models.link import BandwidthModel, DelayModel, LinkModel
from ..models.mac import AlohaMac, CsmaCaMac, MacModel
from ..models.radio import Radio, RadioConfig
from ..stats.metrics import latency_stats
from ..traffic.generators import PoissonSource, parse_probe

__all__ = ["AblationRow", "run_channel_mac_ablation"]


@dataclass(frozen=True)
class AblationRow:
    """Outcome of one (channel plan, MAC) configuration."""

    name: str
    sent: int
    delivered: int
    collisions: int
    mean_latency: Optional[float]

    @property
    def delivery_rate(self) -> float:
        return self.delivered / self.sent if self.sent else 0.0


def _run_config(
    name: str,
    mac: MacModel,
    relay_out_channel: int,
    *,
    rate_bps: float,
    peak_bps: float,
    duration: float,
    seed: int,
) -> AblationRow:
    link = LinkModel(
        bandwidth=BandwidthModel(peak=peak_bps),
        delay=DelayModel(base=0.0002),
    )
    emu = InProcessEmulator(seed=seed, mac=mac)
    src = emu.add_node(
        Vec2(0, 0), RadioConfig.of([Radio(ChannelId(1), 200.0, link)]),
        label="SRC",
    )
    relay = emu.add_node(
        Vec2(120, 0),
        RadioConfig.of(
            [Radio(ChannelId(1), 200.0, link),
             Radio(ChannelId(relay_out_channel), 200.0, link)]
            if relay_out_channel != 1
            else [Radio(ChannelId(1), 200.0, link)]
        ),
        label="RLY",
    )
    dst = emu.add_node(
        Vec2(240, 0),
        RadioConfig.of([Radio(ChannelId(relay_out_channel), 200.0, link)]),
        label="DST",
    )

    def relay_fn(packet: Packet) -> None:
        relay.transmit(
            dst.node_id, packet.payload,
            channel=ChannelId(relay_out_channel), size_bits=packet.size_bits,
        )

    relay.on_app_packet = relay_fn
    received: set[int] = set()
    latencies = []

    def sink(packet: Packet) -> None:
        probe = parse_probe(packet.payload)
        if probe is not None:
            received.add(probe[0])

    dst.on_app_packet = sink

    # Poisson arrivals: overlaps are probabilistic, so the single-channel
    # configurations show partial (not all-or-nothing) collision loss.
    source = PoissonSource(
        src.timers(), src.now,
        lambda payload, bits: src.transmit(relay.node_id, payload,
                                           channel=ChannelId(1),
                                           size_bits=bits),
        rate_pps=rate_bps / 8192.0, packet_size_bits=8192, seed=seed,
    )
    source.start()
    emu.run_until(duration)
    source.stop()

    collisions = sum(
        1 for r in emu.recorder.dropped_packets()
        if r.drop_reason == DropReason.COLLISION
    )
    lat = latency_stats(
        r for r in emu.recorder.packets() if r.receiver == int(dst.node_id)
    )
    return AblationRow(
        name=name,
        sent=source.sent,
        delivered=len(received),
        collisions=collisions,
        mean_latency=None if lat is None else lat.mean,
    )


def run_channel_mac_ablation(
    *,
    rate_bps: float = 1_500_000.0,
    peak_bps: float = 6_000_000.0,
    duration: float = 5.0,
    seed: int = 13,
) -> list[AblationRow]:
    """The three-configuration ablation (see module docstring)."""
    return [
        _run_config(
            "dual-channel (paper)", AlohaMac(), relay_out_channel=2,
            rate_bps=rate_bps, peak_bps=peak_bps, duration=duration,
            seed=seed,
        ),
        _run_config(
            "single-channel ALOHA", AlohaMac(), relay_out_channel=1,
            rate_bps=rate_bps, peak_bps=peak_bps, duration=duration,
            seed=seed,
        ),
        _run_config(
            "single-channel CSMA/CA",
            CsmaCaMac(slot_time=50e-6, cw=32, seed=seed),
            relay_out_channel=1,
            rate_bps=rate_bps, peak_bps=peak_bps, duration=duration,
            seed=seed,
        ),
    ]


def format_rows(rows: list[AblationRow]) -> str:
    lines = [
        f"{'configuration':<24} {'sent':>6} {'delivered':>10} "
        f"{'rate':>8} {'collisions':>11} {'mean lat (ms)':>14}",
        "-" * 80,
    ]
    for r in rows:
        lat = "-" if r.mean_latency is None else f"{r.mean_latency * 1e3:.2f}"
        lines.append(
            f"{r.name:<24} {r.sent:>6} {r.delivered:>10} "
            f"{r.delivery_rate:>8.1%} {r.collisions:>11} {lat:>14}"
        )
    return "\n".join(lines)
