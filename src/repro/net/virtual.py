"""Deterministic in-process transport with configurable latency.

The paper deploys over a "fast Ethernet LAN in a lab setting" (§5) whose
transport delays are real but unrepeatable.  :class:`VirtualLink` gives
the timing experiments a dial instead: fixed base latency, optional
deterministic jitter, and — crucially for the clock-sync error analysis
(Fig 5 bench) — *asymmetric* up/down delays, since delay asymmetry is
exactly the residual error term of the §4.1 synchronization scheme.

A :class:`VirtualLink` connects two endpoints over a
:class:`~repro.core.clock.VirtualClock`: ``send(side, data)`` schedules
the peer's receive callback ``latency`` seconds later.  Delivery order per
direction is FIFO even when jitter would reorder (TCP semantics — this
substitutes for a TCP connection, not a radio; radio behaviour lives in
the link models).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from ..core.clock import VirtualClock
from ..errors import ConfigurationError, TransportError

__all__ = ["LatencySpec", "VirtualLink"]


@dataclass(frozen=True)
class LatencySpec:
    """One direction's delay model: ``base + U[0, jitter)`` seconds."""

    base: float = 0.001
    jitter: float = 0.0

    def __post_init__(self) -> None:
        if self.base < 0 or self.jitter < 0:
            raise ConfigurationError("latency components must be non-negative")

    def sample(self, rng: np.random.Generator) -> float:
        if self.jitter == 0.0:
            return self.base
        return self.base + float(rng.uniform(0.0, self.jitter))


class VirtualLink:
    """A bidirectional, ordered, lossless pipe between endpoints A and B."""

    SIDES = ("a", "b")

    def __init__(
        self,
        clock: VirtualClock,
        a_to_b: LatencySpec = LatencySpec(),
        b_to_a: Optional[LatencySpec] = None,
        seed: int = 0,
    ) -> None:
        self.clock = clock
        self._lat = {"a": a_to_b, "b": b_to_a if b_to_a is not None else a_to_b}
        self._rng = np.random.default_rng(seed)
        self._on_receive: dict[str, Optional[Callable[[bytes], None]]] = {
            "a": None,
            "b": None,
        }
        # Per-direction watermark enforcing FIFO delivery under jitter.
        self._last_arrival = {"a": 0.0, "b": 0.0}
        self._closed = False
        self.sent = {"a": 0, "b": 0}
        self.delivered = {"a": 0, "b": 0}
        # Optional fault-injection hook (see repro.net.faults): called per
        # send with (side, data); returns a decision that may drop the
        # message, delay it further, or duplicate it.  None = lossless.
        self.fault_injector: Optional[
            Callable[[str, bytes], "FaultDecision"]
        ] = None
        self.faulted = {"a": 0, "b": 0}  # messages dropped by injection

    def on_receive(self, side: str, callback: Callable[[bytes], None]) -> None:
        """Install ``side``'s receive handler (called at arrival time)."""
        self._check_side(side)
        self._on_receive[side] = callback

    def send(self, side: str, data: bytes) -> float:
        """Send from ``side`` to its peer; returns the arrival time."""
        self._check_side(side)
        if self._closed:
            raise TransportError("link is closed")
        peer = "b" if side == "a" else "a"
        delay = self._lat[side].sample(self._rng)
        copies = 1
        if self.fault_injector is not None:
            decision = self.fault_injector(side, data)
            if decision.drop:
                self.sent[side] += 1
                self.faulted[side] += 1
                return self.clock.now() + delay  # would-have-been arrival
            delay += max(decision.extra_delay, 0.0)
            copies = max(int(decision.copies), 1)
        arrival = max(
            self.clock.now() + delay, self._last_arrival[peer]
        )
        self._last_arrival[peer] = arrival
        self.sent[side] += 1

        def deliver() -> None:
            if self._closed:
                return
            handler = self._on_receive[peer]
            if handler is None:
                raise TransportError(
                    f"side {peer!r} has no receive handler installed"
                )
            self.delivered[peer] += 1
            handler(data)

        for _ in range(copies):
            self.clock.call_at(arrival, deliver)
        return arrival

    def close(self) -> None:
        """Drop everything still in flight and refuse further sends."""
        self._closed = True

    @staticmethod
    def _check_side(side: str) -> None:
        if side not in VirtualLink.SIDES:
            raise TransportError(f"unknown link side: {side!r}")
