"""Deterministic, seeded fault injection for both PoEm transports.

"When Should I Use Network Emulation?" (Lochin et al., PAPERS.md) argues
an emulator is only trustworthy if its failure behaviour is *controlled
and reproducible* — you cannot claim the server survives misbehaving
clients without a harness that misbehaves on demand, identically on
every run.  This module is that harness:

:class:`FaultyTransport`
    wraps a real TCP socket (client- or test-side) and injects faults on
    the **send path**: dropped frames, extra delay, duplicated frames,
    truncated frames (partial write then forced close → the peer sees a
    :class:`~repro.errors.FramingError` mid-frame), silent blackholing
    (the stalled-client scenario the heartbeat layer must catch), and
    mid-stream disconnects.  All decisions come from one seeded
    ``random.Random``, so a given (seed, spec, call sequence) produces
    the same fault schedule every time.

:class:`LinkFaultInjector`
    the same decision engine shaped as the
    :attr:`~repro.net.virtual.VirtualLink.fault_injector` hook of the
    in-process virtual transport, so deterministic virtual-time tests can
    exercise identical fault schedules.

:class:`SkewedClock`
    a deterministic clock fault: wraps any
    :class:`~repro.core.clock.EmulationClock` with a fixed offset and a
    linear drift rate (:class:`ClockSkew`).  Installed as a
    :class:`~repro.core.client.PoEmClient`'s ``local_clock``, it models a
    workstation whose oscillator runs fast/slow — the §4.1 sync corrects
    the offset at each exchange but the drift re-accumulates between
    exchanges, which is exactly what the forensics plane's clock-drift
    audit (:mod:`repro.analysis.drift`) must detect.

Both keep per-category counters in :attr:`injected` so tests can assert
the schedule actually fired.
"""

from __future__ import annotations

import random
import socket
import threading
import time
from collections import Counter
from dataclasses import dataclass
from typing import Optional

from ..core.clock import EmulationClock
from ..core.supervision import SupervisedThread
from ..errors import FaultInjectionError

__all__ = [
    "FaultSpec",
    "FaultDecision",
    "FaultyTransport",
    "LinkFaultInjector",
    "ClockSkew",
    "SkewedClock",
    "OverloadSpec",
    "OverloadInjector",
]


@dataclass(frozen=True)
class FaultSpec:
    """Probabilities and trigger points of one fault schedule.

    ``drop``/``duplicate``/``truncate`` are per-send probabilities in
    ``[0, 1]``; ``delay`` is the *maximum* uniform extra delay per send
    (seconds).  ``disconnect_after``/``blackhole_after`` are send counts
    after which the transport force-closes, respectively silently
    swallows everything (a hung client: the socket stays open but
    nothing flows — the case only heartbeats can detect).
    """

    drop: float = 0.0
    duplicate: float = 0.0
    truncate: float = 0.0
    delay: float = 0.0
    disconnect_after: Optional[int] = None
    blackhole_after: Optional[int] = None

    def __post_init__(self) -> None:
        for name in ("drop", "duplicate", "truncate"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise FaultInjectionError(
                    f"{name} must be a probability in [0,1], got {p}"
                )
        if self.delay < 0.0:
            raise FaultInjectionError(f"delay must be >= 0, got {self.delay}")
        for name in ("disconnect_after", "blackhole_after"):
            v = getattr(self, name)
            if v is not None and v < 0:
                raise FaultInjectionError(f"{name} must be >= 0, got {v}")


@dataclass(frozen=True)
class FaultDecision:
    """What the injector decided for one message."""

    drop: bool = False
    extra_delay: float = 0.0
    copies: int = 1


class _DecisionEngine:
    """Seeded decision core shared by both transport shapes."""

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = random.Random(seed)
        self.sends = 0
        self.injected: Counter = Counter()

    def decide(self) -> FaultDecision:
        self.sends += 1
        s = self.spec
        if s.drop and self._rng.random() < s.drop:
            self.injected["drop"] += 1
            return FaultDecision(drop=True)
        extra = self._rng.uniform(0.0, s.delay) if s.delay else 0.0
        if extra > 0.0:
            self.injected["delay"] += 1
        copies = 1
        if s.duplicate and self._rng.random() < s.duplicate:
            self.injected["duplicate"] += 1
            copies = 2
        return FaultDecision(extra_delay=extra, copies=copies)


class FaultyTransport:
    """A socket wrapper injecting the :class:`FaultSpec` on every send.

    Duck-types the subset of the socket API the framing layer and
    :class:`~repro.core.client.PoEmClient` use (``sendall``, ``recv``,
    ``close``, ``shutdown``, ``settimeout`` …); everything else is
    delegated to the wrapped socket.  Install via the client's
    ``transport_wrapper`` hook::

        client = PoEmClient(addr, pos, radios,
                            transport_wrapper=lambda s: FaultyTransport(
                                s, FaultSpec(blackhole_after=10), seed=7))
    """

    def __init__(
        self, sock: socket.socket, spec: FaultSpec, seed: int = 0
    ) -> None:
        self._sock = sock
        self._engine = _DecisionEngine(spec, seed)
        self._blackholed = False
        self._disconnected = False

    # -- introspection ------------------------------------------------------

    @property
    def spec(self) -> FaultSpec:
        return self._engine.spec

    @property
    def sends(self) -> int:
        return self._engine.sends

    @property
    def injected(self) -> Counter:
        return self._engine.injected

    # -- the faulted send path ----------------------------------------------

    def sendall(self, data: bytes) -> None:
        s = self._engine.spec
        n = self._engine.sends  # sends completed before this one
        if self._disconnected:
            raise OSError("fault injection: transport disconnected")
        if (
            s.blackhole_after is not None
            and n >= s.blackhole_after
        ):
            self._engine.sends += 1
            self._engine.injected["blackhole"] += 1
            self._blackholed = True
            return  # swallowed: the peer sees a silent stall
        if (
            s.disconnect_after is not None
            and n >= s.disconnect_after
        ):
            self._engine.sends += 1
            self._engine.injected["disconnect"] += 1
            self._disconnected = True
            self._force_close()
            raise OSError("fault injection: mid-stream disconnect")
        if s.truncate and self._engine._rng.random() < s.truncate:
            self._engine.sends += 1
            self._engine.injected["truncate"] += 1
            self._disconnected = True
            cut = max(1, len(data) // 2)
            try:
                self._sock.sendall(data[:cut])
            except OSError:
                pass
            self._force_close()
            raise OSError("fault injection: truncated frame")
        decision = self._engine.decide()
        if decision.drop:
            return
        if decision.extra_delay > 0.0:
            time.sleep(decision.extra_delay)
        for _ in range(decision.copies):
            self._sock.sendall(data)

    # -- receive path: blackhole also silences inbound traffic ---------------

    def recv(self, bufsize: int) -> bytes:
        if self._blackholed:
            # A hung process neither sends nor reads: block until the
            # peer (or our owner) closes the socket, then report EOF.
            try:
                while True:
                    chunk = self._sock.recv(bufsize)
                    if not chunk:
                        return b""
                    self._engine.injected["blackhole-recv"] += 1
            except OSError:
                return b""
        return self._sock.recv(bufsize)

    # -- lifecycle ----------------------------------------------------------

    def _force_close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def close(self) -> None:
        self._sock.close()

    def shutdown(self, how: int) -> None:
        self._sock.shutdown(how)

    def settimeout(self, value: Optional[float]) -> None:
        self._sock.settimeout(value)

    def __getattr__(self, name: str):
        # setsockopt / getsockname / fileno / … pass straight through.
        return getattr(self._sock, name)


@dataclass(frozen=True)
class ClockSkew:
    """A deterministic clock fault: constant offset + linear drift.

    ``offset`` is added outright; ``drift`` is seconds of accumulated
    error per second of true time (``0.01`` = the clock gains 10 ms
    every second).  Both zero ⇒ a faithful clock.
    """

    offset: float = 0.0
    drift: float = 0.0


class SkewedClock(EmulationClock):
    """An :class:`EmulationClock` whose reading is skewed on purpose.

    ``now() = base.now() * (1 + drift) + offset`` — the classic
    crystal-oscillator error model.  Install as a client's
    ``local_clock`` to emulate a workstation with a bad clock::

        client = PoEmClient(addr, pos, radios,
                            local_clock=SkewedClock(RealTimeClock(),
                                                    ClockSkew(drift=0.05)))

    The §4.1 exchange then measures a *different* offset every time it
    runs, and the recorded ``sync_samples`` expose the drift rate to the
    offline audit.
    """

    def __init__(self, base: EmulationClock, skew: ClockSkew) -> None:
        self._base = base
        self.skew = skew

    @property
    def base(self) -> EmulationClock:
        return self._base

    def now(self) -> float:
        return self._base.now() * (1.0 + self.skew.drift) + self.skew.offset


class LinkFaultInjector:
    """The same seeded schedule as a :class:`VirtualLink` hook.

    Install with::

        link.fault_injector = LinkFaultInjector(FaultSpec(drop=0.2), seed=3)

    Truncation/disconnect do not apply to the message-based virtual
    transport (it has no byte stream to cut); drop/delay/duplicate do.
    """

    def __init__(self, spec: FaultSpec, seed: int = 0) -> None:
        self._engine = _DecisionEngine(spec, seed)

    @property
    def sends(self) -> int:
        return self._engine.sends

    @property
    def injected(self) -> Counter:
        return self._engine.injected

    def __call__(self, side: str, data: bytes) -> FaultDecision:
        return self._engine.decide()


@dataclass(frozen=True)
class OverloadSpec:
    """One seeded saturation scenario for the overload chaos harness.

    ``bursts`` waves of ``burst_packets`` back-to-back sends, separated
    by ``burst_gap`` seconds plus a seeded uniform jitter in
    ``[0, jitter]`` — enough concentrated arrival to outrun the
    scanning thread.  ``cpu_stealers`` spin-loop threads emulate the
    paper's "overload of server computation" (a co-located workload
    stealing the cores the scan loop needs) for ``steal_seconds``.
    """

    bursts: int = 5
    burst_packets: int = 200
    burst_gap: float = 0.001
    jitter: float = 0.0
    cpu_stealers: int = 0
    steal_seconds: float = 0.0

    def __post_init__(self) -> None:
        for name in ("bursts", "burst_packets"):
            v = getattr(self, name)
            if v < 1:
                raise FaultInjectionError(f"{name} must be >= 1, got {v}")
        for name in ("burst_gap", "jitter", "steal_seconds"):
            v = getattr(self, name)
            if v < 0.0:
                raise FaultInjectionError(f"{name} must be >= 0, got {v}")
        if self.cpu_stealers < 0:
            raise FaultInjectionError(
                f"cpu_stealers must be >= 0, got {self.cpu_stealers}"
            )


class OverloadInjector:
    """Drives a server into (and back out of) overload, reproducibly.

    The injector owns the *pressure*, not the transport: the caller
    supplies a ``send(burst, index)`` callable (ingest a packet, write a
    frame — whatever the deployment under test uses) and the injector
    fires it on the seeded burst schedule.  CPU stealers are supervised
    spin threads; use the injector as a context manager so they always
    stop::

        inj = OverloadInjector(OverloadSpec(cpu_stealers=2,
                                            steal_seconds=1.0), seed=7)
        with inj:
            inj.run_bursts(lambda b, i: engine.ingest(src, make(b, i)))

    Per-category counts land in :attr:`injected` (``burst-send``,
    ``steal-slice``) so tests can assert the schedule actually fired.
    """

    def __init__(self, spec: OverloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self._rng = random.Random(seed)
        self.injected: Counter = Counter()
        self._stealers: list[SupervisedThread] = []
        self._stop = threading.Event()
        self._count_lock = threading.Lock()

    # -- burst traffic ---------------------------------------------------------

    def run_bursts(self, send, gate=None) -> int:
        """Fire the full burst schedule on the calling thread.

        ``send(burst, index)`` is invoked once per packet; ``gate()``
        (optional) is polled between packets and aborts the schedule
        when it returns False.  Returns the number of sends made.
        """
        sent = 0
        for burst in range(self.spec.bursts):
            if burst and self.spec.burst_gap + self.spec.jitter > 0.0:
                gap = self.spec.burst_gap
                if self.spec.jitter:
                    gap += self._rng.uniform(0.0, self.spec.jitter)
                time.sleep(gap)
            for index in range(self.spec.burst_packets):
                if gate is not None and not gate():
                    self.injected["aborted"] += 1
                    return sent
                send(burst, index)
                sent += 1
        self.injected["burst-send"] += sent
        return sent

    # -- CPU stealers ----------------------------------------------------------

    def start_stealers(self) -> None:
        """Launch the spin threads (no-op when the spec asks for none)."""
        if self._stealers:
            raise FaultInjectionError("stealers already started")
        self._stop.clear()
        for k in range(self.spec.cpu_stealers):
            t = SupervisedThread(
                f"poem-cpu-stealer-{k}", self._steal_loop,
                restartable=False,
            )
            self._stealers.append(t)
            t.start()

    def _steal_loop(self) -> None:
        deadline = time.monotonic() + self.spec.steal_seconds
        slices = 0
        x = 1.0
        while not self._stop.is_set() and time.monotonic() < deadline:
            for _ in range(10_000):  # pure-CPU slice between deadline checks
                x = (x * 1.0000001) % 1e9
            slices += 1
        with self._count_lock:
            self.injected["steal-slice"] += slices

    def stop(self) -> None:
        """Stop the stealers and join them (idempotent)."""
        self._stop.set()
        for t in self._stealers:
            t.stop(timeout=2.0)
        self._stealers.clear()

    def __enter__(self) -> "OverloadInjector":
        self.start_stealers()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()
