"""Client↔server wire protocol of the real-time (TCP) deployment.

JSON messages inside length-prefixed frames (:mod:`.framing`).  The
operation set mirrors Fig 4's structure:

==============  direction        purpose
``register``    client → server  map this connection to a VMN (position,
                                 radios, label)
``registered``  server → client  confirms, returns the allocated node id
``sync_req``    client → server  clock-sync step 1 (carries ``t_c1``)
``sync_rep``    server → client  clock-sync step 3 (``t_s3`` + echo)
``packet``      client → server  a transmitted frame (with ``t_origin``)
``deliver``     server → client  a forwarded frame arriving at this VMN
``scene_op``    client → server  a GUI-equivalent scene mutation (topology
                                 control from an operator console)
``ping``        either           liveness heartbeat (carries sender time
                                 ``t``); answered with ``pong``
``pong``        either           heartbeat answer (echoes the ping's ``t``)
``bye``         either           orderly shutdown
==============  ==============================================================

The heartbeat pair is the liveness layer of the fault-tolerance
subsystem: the server pings every client on a fixed interval and marks a
client *stale* after ``heartbeat_misses`` silent intervals — its VMN is
quarantined (traffic drops as ``node-stale``) for a grace period before
removal, so a transient stall does not tear routes out of the topology.

Packets serialize all addressing and stamps; payload bytes ride latin-1.

Binary fast path
----------------

JSON is fine for control traffic (a handful of messages per client per
session) but wasteful for the two high-rate operations, ``packet`` and
``deliver``: every frame re-encodes field names and floats as text, and
payload bytes pay a latin-1 round trip.  Those two ops therefore also
have a struct-packed **binary encoding**, negotiated at registration: a
client that sends ``"binary": true`` in its ``register`` message and
sees ``"binary": true`` echoed in ``registered`` may send and will
receive binary packet frames.  Old clients never set the flag and the
server keeps talking JSON to them — the two encodings coexist on one
port because a binary frame's first byte is the magic ``0xB1`` while a
JSON message always starts with ``{`` (``0x7B``).

Binary frame layout (inside the usual length prefix)::

    offset  size  field
    0       1     magic 0xB1
    1       1     op (1 = packet, 2 = deliver)
    2       8     source        (int64, -1 = broadcast sentinel)
    10      8     destination   (int64)
    18      8     seqno         (int64)
    26      8     size_bits     (int64)
    34      4     channel       (int32)
    38      2     radio         (uint16)
    40      8×4   t_origin, t_receipt, t_forward, t_delivered
                  (float64; NaN encodes None — stamps are never NaN)
    72      1     kind length K
    73      K     kind (utf-8)
    73+K    rest  payload (raw bytes, no text round trip)
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Optional

from ..core.ids import ChannelId, NodeId, RadioIndex, SequenceNumber
from ..core.packet import Packet
from ..errors import ConfigurationError, TransportError

__all__ = [
    "encode_message",
    "decode_message",
    "packet_to_wire",
    "packet_from_wire",
    "make_ping",
    "make_pong",
    "BINARY_MAGIC",
    "BINARY_OP_PACKET",
    "BINARY_OP_DELIVER",
    "is_binary_frame",
    "encode_packet_binary",
    "decode_packet_binary",
]


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message."""
    if "op" not in message:
        raise TransportError(f"message missing op: {message}")
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> dict[str, Any]:
    """Parse one protocol message; raises TransportError on garbage."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError(f"malformed message: {message!r}")
    return message


def make_ping(t: float, overload: Optional[str] = None) -> dict[str, Any]:
    """Build a liveness heartbeat stamped with the sender's clock.

    ``overload`` optionally piggybacks the server's overload state
    (``"pressured"``/``"saturated"``) so clients learn the emulator has
    left real-time territory without an extra message type.
    """
    msg: dict[str, Any] = {"op": "ping", "t": float(t)}
    if overload is not None:
        msg["overload"] = str(overload)
    return msg


def make_pong(ping: dict[str, Any]) -> dict[str, Any]:
    """Answer a ``ping``, echoing its time-stamp so the sender can
    estimate heartbeat round-trip if it cares to."""
    return {"op": "pong", "t": _opt_float(ping.get("t"))}


def packet_to_wire(packet: Packet) -> dict[str, Any]:
    """Packet → JSON-safe dict (used inside packet/deliver messages)."""
    return {
        "src": int(packet.source),
        "dst": int(packet.destination),
        "payload": packet.payload.decode("latin-1"),
        "bits": packet.size_bits,
        "seq": int(packet.seqno),
        "ch": int(packet.channel),
        "radio": int(packet.radio),
        "kind": packet.kind,
        "t_origin": packet.t_origin,
        "t_receipt": packet.t_receipt,
        "t_forward": packet.t_forward,
        "t_delivered": packet.t_delivered,
    }


def packet_from_wire(raw: dict[str, Any]) -> Packet:
    """Inverse of :func:`packet_to_wire`."""
    try:
        return Packet(
            source=NodeId(int(raw["src"])),
            destination=NodeId(int(raw["dst"])),
            payload=str(raw["payload"]).encode("latin-1"),
            size_bits=int(raw["bits"]),
            seqno=SequenceNumber(int(raw["seq"])),
            channel=ChannelId(int(raw["ch"])),
            radio=RadioIndex(int(raw.get("radio", 0))),
            kind=str(raw.get("kind", "data")),
            t_origin=_opt_float(raw.get("t_origin")),
            t_receipt=_opt_float(raw.get("t_receipt")),
            t_forward=_opt_float(raw.get("t_forward")),
            t_delivered=_opt_float(raw.get("t_delivered")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed packet dict: {raw!r}") from exc


def _opt_float(v: Any) -> Optional[float]:
    return None if v is None else float(v)


# -- binary fast path ---------------------------------------------------------

BINARY_MAGIC = 0xB1
"""First byte of every binary frame (a JSON message starts with 0x7B)."""

BINARY_OP_PACKET = 1
BINARY_OP_DELIVER = 2

_BINARY_OPS = {BINARY_OP_PACKET: "packet", BINARY_OP_DELIVER: "deliver"}
_BINARY_CODES = {name: code for code, name in _BINARY_OPS.items()}

_BIN_HEADER = struct.Struct(">BBqqqqiHddddB")
"""magic, op, source, destination, seqno, size_bits, channel, radio,
four stamps, kind length — everything before the kind/payload tail."""

_NAN = float("nan")
_isnan = math.isnan


def is_binary_frame(data: bytes) -> bool:
    """True when ``data`` is a binary packet frame (magic-byte sniff)."""
    return bool(data) and data[0] == BINARY_MAGIC


def encode_packet_binary(op: str, packet: Packet) -> bytes:
    """Encode a ``packet`` or ``deliver`` message as one binary frame."""
    code = _BINARY_CODES.get(op)
    if code is None:
        raise TransportError(f"op {op!r} has no binary encoding")
    kind = packet.kind.encode("utf-8")
    if len(kind) > 255:
        raise TransportError(f"packet kind too long for binary wire: {packet.kind!r}")
    t = packet.t_origin
    header = _BIN_HEADER.pack(
        BINARY_MAGIC,
        code,
        int(packet.source),
        int(packet.destination),
        int(packet.seqno),
        packet.size_bits,
        int(packet.channel),
        int(packet.radio),
        _NAN if packet.t_origin is None else packet.t_origin,
        _NAN if packet.t_receipt is None else packet.t_receipt,
        _NAN if packet.t_forward is None else packet.t_forward,
        _NAN if packet.t_delivered is None else packet.t_delivered,
        len(kind),
    )
    return b"".join((header, kind, packet.payload))


def decode_packet_binary(data: bytes) -> tuple[str, Packet]:
    """Decode one binary frame; returns ``(op_name, packet)``.

    Raises :class:`TransportError` on truncation, a bad magic/op byte, or
    field values the :class:`Packet` constructor rejects.
    """
    try:
        (
            magic, code, src, dst, seq, bits, ch, radio,
            t_origin, t_receipt, t_forward, t_delivered, kind_len,
        ) = _BIN_HEADER.unpack_from(data)
    except struct.error as exc:
        raise TransportError(f"truncated binary frame: {exc}") from exc
    if magic != BINARY_MAGIC:
        raise TransportError(f"bad binary magic: {magic:#x}")
    op = _BINARY_OPS.get(code)
    if op is None:
        raise TransportError(f"unknown binary op code: {code}")
    kind_end = _BIN_HEADER.size + kind_len
    if len(data) < kind_end:
        raise TransportError("binary frame truncated inside kind field")
    try:
        packet = Packet(
            source=NodeId(src),
            destination=NodeId(dst),
            payload=data[kind_end:],
            size_bits=bits,
            seqno=SequenceNumber(seq),
            channel=ChannelId(ch),
            radio=RadioIndex(radio),
            kind=data[_BIN_HEADER.size : kind_end].decode("utf-8"),
            t_origin=None if _isnan(t_origin) else t_origin,
            t_receipt=None if _isnan(t_receipt) else t_receipt,
            t_forward=None if _isnan(t_forward) else t_forward,
            t_delivered=None if _isnan(t_delivered) else t_delivered,
        )
    except (ValueError, UnicodeDecodeError, ConfigurationError) as exc:
        raise TransportError(f"malformed binary packet frame: {exc}") from exc
    return op, packet
