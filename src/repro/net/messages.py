"""Client↔server wire protocol of the real-time (TCP) deployment.

JSON messages inside length-prefixed frames (:mod:`.framing`).  The
operation set mirrors Fig 4's structure:

==============  direction        purpose
``register``    client → server  map this connection to a VMN (position,
                                 radios, label)
``registered``  server → client  confirms, returns the allocated node id
``sync_req``    client → server  clock-sync step 1 (carries ``t_c1``)
``sync_rep``    server → client  clock-sync step 3 (``t_s3`` + echo)
``packet``      client → server  a transmitted frame (with ``t_origin``)
``deliver``     server → client  a forwarded frame arriving at this VMN
``scene_op``    client → server  a GUI-equivalent scene mutation (topology
                                 control from an operator console)
``ping``        either           liveness heartbeat (carries sender time
                                 ``t``); answered with ``pong``
``pong``        either           heartbeat answer (echoes the ping's ``t``)
``bye``         either           orderly shutdown
==============  ==============================================================

The heartbeat pair is the liveness layer of the fault-tolerance
subsystem: the server pings every client on a fixed interval and marks a
client *stale* after ``heartbeat_misses`` silent intervals — its VMN is
quarantined (traffic drops as ``node-stale``) for a grace period before
removal, so a transient stall does not tear routes out of the topology.

Packets serialize all addressing and stamps; payload bytes ride latin-1.
"""

from __future__ import annotations

import json
from typing import Any, Optional

from ..core.ids import ChannelId, NodeId, RadioIndex, SequenceNumber
from ..core.packet import Packet
from ..errors import TransportError

__all__ = [
    "encode_message",
    "decode_message",
    "packet_to_wire",
    "packet_from_wire",
    "make_ping",
    "make_pong",
]


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message."""
    if "op" not in message:
        raise TransportError(f"message missing op: {message}")
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> dict[str, Any]:
    """Parse one protocol message; raises TransportError on garbage."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError(f"malformed message: {message!r}")
    return message


def make_ping(t: float) -> dict[str, Any]:
    """Build a liveness heartbeat stamped with the sender's clock."""
    return {"op": "ping", "t": float(t)}


def make_pong(ping: dict[str, Any]) -> dict[str, Any]:
    """Answer a ``ping``, echoing its time-stamp so the sender can
    estimate heartbeat round-trip if it cares to."""
    return {"op": "pong", "t": _opt_float(ping.get("t"))}


def packet_to_wire(packet: Packet) -> dict[str, Any]:
    """Packet → JSON-safe dict (used inside packet/deliver messages)."""
    return {
        "src": int(packet.source),
        "dst": int(packet.destination),
        "payload": packet.payload.decode("latin-1"),
        "bits": packet.size_bits,
        "seq": int(packet.seqno),
        "ch": int(packet.channel),
        "radio": int(packet.radio),
        "kind": packet.kind,
        "t_origin": packet.t_origin,
        "t_receipt": packet.t_receipt,
        "t_forward": packet.t_forward,
        "t_delivered": packet.t_delivered,
    }


def packet_from_wire(raw: dict[str, Any]) -> Packet:
    """Inverse of :func:`packet_to_wire`."""
    try:
        return Packet(
            source=NodeId(int(raw["src"])),
            destination=NodeId(int(raw["dst"])),
            payload=str(raw["payload"]).encode("latin-1"),
            size_bits=int(raw["bits"]),
            seqno=SequenceNumber(int(raw["seq"])),
            channel=ChannelId(int(raw["ch"])),
            radio=RadioIndex(int(raw.get("radio", 0))),
            kind=str(raw.get("kind", "data")),
            t_origin=_opt_float(raw.get("t_origin")),
            t_receipt=_opt_float(raw.get("t_receipt")),
            t_forward=_opt_float(raw.get("t_forward")),
            t_delivered=_opt_float(raw.get("t_delivered")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed packet dict: {raw!r}") from exc


def _opt_float(v: Any) -> Optional[float]:
    return None if v is None else float(v)
