"""Client↔server wire protocol of the real-time (TCP) deployment.

JSON messages inside length-prefixed frames (:mod:`.framing`).  The
operation set mirrors Fig 4's structure:

==============  direction        purpose
``register``    client → server  map this connection to a VMN (position,
                                 radios, label)
``registered``  server → client  confirms, returns the allocated node id
``sync_req``    client → server  clock-sync step 1 (carries ``t_c1``)
``sync_rep``    server → client  clock-sync step 3 (``t_s3`` + echo)
``packet``      client → server  a transmitted frame (with ``t_origin``)
``deliver``     server → client  a forwarded frame arriving at this VMN
``scene_op``    client → server  a GUI-equivalent scene mutation (topology
                                 control from an operator console)
``ping``        either           liveness heartbeat (carries sender time
                                 ``t``); answered with ``pong``
``pong``        either           heartbeat answer (echoes the ping's ``t``)
``bye``         either           orderly shutdown
==============  ==============================================================

The sharded cluster (:mod:`repro.cluster.sharded`) reuses this codec on
its parent↔worker pipes for **control traffic** (packets ride the binary
fast path, batched by :mod:`repro.cluster.ipc`):

==================  direction        purpose
``scene_snapshot``  parent → worker  replicate an immutable version-stamped
                                     scene (:class:`~repro.core.scene.SceneSnapshot`)
``flush``           parent → worker  barrier: run the worker's clock/engine
                                     up to ``t`` and report back
``flushed``         worker → parent  barrier ack: pipeline counters, queue
                                     depth, busy fraction
``collect``         parent → worker  drain the worker's packet log
``worker_report``   worker → parent  the drained records + final counters
``shutdown``        parent → worker  orderly worker exit (acked with ``bye``)
``worker_error``    worker → parent  a worker pipeline failure (the parent
                                     raises it as :class:`ClusterError`)
==================  =========================================================

The heartbeat pair is the liveness layer of the fault-tolerance
subsystem: the server pings every client on a fixed interval and marks a
client *stale* after ``heartbeat_misses`` silent intervals — its VMN is
quarantined (traffic drops as ``node-stale``) for a grace period before
removal, so a transient stall does not tear routes out of the topology.

Packets serialize all addressing and stamps; payload bytes ride latin-1.

Binary fast path
----------------

JSON is fine for control traffic (a handful of messages per client per
session) but wasteful for the two high-rate operations, ``packet`` and
``deliver``: every frame re-encodes field names and floats as text, and
payload bytes pay a latin-1 round trip.  Those two ops therefore also
have a struct-packed **binary encoding**, negotiated at registration: a
client that sends ``"binary": true`` in its ``register`` message and
sees ``"binary": true`` echoed in ``registered`` may send and will
receive binary packet frames.  Old clients never set the flag and the
server keeps talking JSON to them — the two encodings coexist on one
port because a binary frame's first byte is the magic ``0xB1`` while a
JSON message always starts with ``{`` (``0x7B``).

Binary frame layout (inside the usual length prefix)::

    offset  size  field
    0       1     magic 0xB1
    1       1     op (1 = packet, 2 = deliver)
    2       8     source        (int64, -1 = broadcast sentinel)
    10      8     destination   (int64)
    18      8     seqno         (int64)
    26      8     size_bits     (int64)
    34      4     channel       (int32)
    38      2     radio         (uint16)
    40      8×4   t_origin, t_receipt, t_forward, t_delivered
                  (float64; NaN encodes None — stamps are never NaN)
    72      1     kind length K
    73      K     kind (utf-8)
    73+K    rest  payload (raw bytes, no text round trip)
"""

from __future__ import annotations

import json
import math
import struct
from typing import Any, Optional

from ..core.ids import ChannelId, NodeId, RadioIndex, SequenceNumber
from ..core.packet import Packet
from ..errors import ConfigurationError, TransportError

__all__ = [
    "encode_message",
    "decode_message",
    "packet_to_wire",
    "packet_from_wire",
    "make_ping",
    "make_pong",
    "make_scene_snapshot",
    "make_flush",
    "make_flushed",
    "make_collect",
    "make_worker_report",
    "make_telemetry_pull",
    "make_telemetry_report",
    "make_shutdown",
    "make_worker_error",
    "BINARY_MAGIC",
    "BINARY_OP_PACKET",
    "BINARY_OP_DELIVER",
    "is_binary_frame",
    "encode_packet_binary",
    "decode_packet_binary",
]


def encode_message(message: dict[str, Any]) -> bytes:
    """Serialize one protocol message."""
    if "op" not in message:
        raise TransportError(f"message missing op: {message}")
    return json.dumps(message, separators=(",", ":")).encode("utf-8")


def decode_message(data: bytes) -> dict[str, Any]:
    """Parse one protocol message; raises TransportError on garbage."""
    try:
        message = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise TransportError(f"undecodable message: {exc}") from exc
    if not isinstance(message, dict) or "op" not in message:
        raise TransportError(f"malformed message: {message!r}")
    return message


def make_ping(t: float, overload: Optional[str] = None) -> dict[str, Any]:
    """Build a liveness heartbeat stamped with the sender's clock.

    ``overload`` optionally piggybacks the server's overload state
    (``"pressured"``/``"saturated"``) so clients learn the emulator has
    left real-time territory without an extra message type.
    """
    msg: dict[str, Any] = {"op": "ping", "t": float(t)}
    if overload is not None:
        msg["overload"] = str(overload)
    return msg


def make_pong(ping: dict[str, Any]) -> dict[str, Any]:
    """Answer a ``ping``, echoing its time-stamp so the sender can
    estimate heartbeat round-trip if it cares to."""
    return {"op": "pong", "t": _opt_float(ping.get("t"))}


# -- sharded-cluster control frames (parent ↔ worker pipes) --------------------


def make_scene_snapshot(scene: dict[str, Any], version: int) -> dict[str, Any]:
    """Replicate a scene snapshot to a worker.

    ``scene`` is the JSON form produced by
    :func:`repro.cluster.snapshot.snapshot_to_dict`; ``version`` is the
    snapshot's :attr:`~repro.core.scene.Scene.version` stamp — workers
    ignore snapshots at or below the version they already hold.
    """
    return {"op": "scene_snapshot", "version": int(version), "scene": scene}


def make_flush(t: float, flush_id: int) -> dict[str, Any]:
    """Barrier request: run the worker up to emulation time ``t``.

    ``flush_id`` is echoed in the ``flushed`` reply so the parent can
    match acks under strict request/response pipelining.
    """
    return {"op": "flush", "t": float(t), "id": int(flush_id)}


def make_flushed(
    flush_id: int,
    worker: int,
    *,
    counters: dict[str, int],
    queue_depth: int,
    busy_fraction: float,
    shard_ingested: int,
    telemetry: Optional[dict[str, Any]] = None,
    profile: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Barrier ack carrying the worker's health/telemetry sample.

    ``telemetry`` is the worker registry's
    :meth:`~repro.obs.metrics.MetricsRegistry.snapshot` (None when the
    worker runs without telemetry); the parent folds it in through
    :class:`~repro.obs.metrics.SnapshotMerger`.  ``profile`` is the
    worker sampler's cumulative folded-stack snapshot
    (:meth:`~repro.obs.profiler.SamplingProfiler.snapshot`), folded the
    same way through :class:`~repro.obs.profiler.ProfileMerger`.
    """
    msg = {
        "op": "flushed",
        "id": int(flush_id),
        "worker": int(worker),
        "counters": counters,
        "queue_depth": int(queue_depth),
        "busy_fraction": float(busy_fraction),
        "shard_ingested": int(shard_ingested),
    }
    if telemetry is not None:
        msg["telemetry"] = telemetry
    if profile is not None:
        msg["profile"] = profile
    return msg


def make_collect() -> dict[str, Any]:
    """Drain request: the worker replies with a ``worker_report``."""
    return {"op": "collect"}


def make_worker_report(
    worker: int,
    *,
    records: list[list[Any]],
    counters: dict[str, int],
    spans: Optional[list[list[Any]]] = None,
    telemetry: Optional[dict[str, Any]] = None,
    queue_depth: int = 0,
    busy_fraction: float = 0.0,
    shard_ingested: int = 0,
    profile: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The worker's drained packet log (row-encoded) + final counters.

    Also carries the worker's drained trace spans
    (:func:`repro.cluster.ipc.span_to_row` rows), its registry snapshot,
    its profiler snapshot, and a fresh health sample — collect doubles
    as a telemetry pull so shard gauges stay current without waiting
    for the next barrier.
    """
    msg = {
        "op": "worker_report",
        "worker": int(worker),
        "records": records,
        "counters": counters,
        "queue_depth": int(queue_depth),
        "busy_fraction": float(busy_fraction),
        "shard_ingested": int(shard_ingested),
    }
    if spans is not None:
        msg["spans"] = spans
    if telemetry is not None:
        msg["telemetry"] = telemetry
    if profile is not None:
        msg["profile"] = profile
    return msg


def make_telemetry_pull() -> dict[str, Any]:
    """Ask a worker for a fresh telemetry/health sample (no barrier)."""
    return {"op": "telemetry_pull"}


def make_telemetry_report(
    worker: int,
    *,
    queue_depth: int,
    busy_fraction: float,
    shard_ingested: int,
    counters: dict[str, int],
    telemetry: Optional[dict[str, Any]] = None,
    spans: Optional[list[list[Any]]] = None,
    profile: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """The worker's answer to a ``telemetry_pull``: same sample shape as
    a ``flushed`` ack, without running the clock anywhere."""
    msg = {
        "op": "telemetry_report",
        "worker": int(worker),
        "queue_depth": int(queue_depth),
        "busy_fraction": float(busy_fraction),
        "shard_ingested": int(shard_ingested),
        "counters": counters,
    }
    if telemetry is not None:
        msg["telemetry"] = telemetry
    if spans is not None:
        msg["spans"] = spans
    if profile is not None:
        msg["profile"] = profile
    return msg


def make_shutdown() -> dict[str, Any]:
    """Orderly worker shutdown; the worker acks with ``bye`` and exits."""
    return {"op": "shutdown"}


def make_worker_error(
    worker: int, error: str, flight: Optional[str] = None
) -> dict[str, Any]:
    """A worker-side pipeline failure, surfaced to the parent.

    ``flight`` is the path of the flight-recorder artifact the dying
    worker managed to dump (None when the dump itself failed).
    """
    msg = {"op": "worker_error", "worker": int(worker), "error": str(error)}
    if flight is not None:
        msg["flight"] = str(flight)
    return msg


def packet_to_wire(packet: Packet) -> dict[str, Any]:
    """Packet → JSON-safe dict (used inside packet/deliver messages)."""
    return {
        "src": int(packet.source),
        "dst": int(packet.destination),
        "payload": packet.payload.decode("latin-1"),
        "bits": packet.size_bits,
        "seq": int(packet.seqno),
        "ch": int(packet.channel),
        "radio": int(packet.radio),
        "kind": packet.kind,
        "t_origin": packet.t_origin,
        "t_receipt": packet.t_receipt,
        "t_forward": packet.t_forward,
        "t_delivered": packet.t_delivered,
    }


def packet_from_wire(raw: dict[str, Any]) -> Packet:
    """Inverse of :func:`packet_to_wire`."""
    try:
        return Packet(
            source=NodeId(int(raw["src"])),
            destination=NodeId(int(raw["dst"])),
            payload=str(raw["payload"]).encode("latin-1"),
            size_bits=int(raw["bits"]),
            seqno=SequenceNumber(int(raw["seq"])),
            channel=ChannelId(int(raw["ch"])),
            radio=RadioIndex(int(raw.get("radio", 0))),
            kind=str(raw.get("kind", "data")),
            t_origin=_opt_float(raw.get("t_origin")),
            t_receipt=_opt_float(raw.get("t_receipt")),
            t_forward=_opt_float(raw.get("t_forward")),
            t_delivered=_opt_float(raw.get("t_delivered")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise TransportError(f"malformed packet dict: {raw!r}") from exc


def _opt_float(v: Any) -> Optional[float]:
    return None if v is None else float(v)


# -- binary fast path ---------------------------------------------------------

BINARY_MAGIC = 0xB1
"""First byte of every binary frame (a JSON message starts with 0x7B)."""

BINARY_OP_PACKET = 1
BINARY_OP_DELIVER = 2

_BINARY_OPS = {BINARY_OP_PACKET: "packet", BINARY_OP_DELIVER: "deliver"}
_BINARY_CODES = {name: code for code, name in _BINARY_OPS.items()}

_BIN_HEADER = struct.Struct(">BBqqqqiHddddB")
"""magic, op, source, destination, seqno, size_bits, channel, radio,
four stamps, kind length — everything before the kind/payload tail."""

_NAN = float("nan")
_isnan = math.isnan


def is_binary_frame(data: bytes) -> bool:
    """True when ``data`` is a binary packet frame (magic-byte sniff)."""
    return bool(data) and data[0] == BINARY_MAGIC


def encode_packet_binary(op: str, packet: Packet) -> bytes:
    """Encode a ``packet`` or ``deliver`` message as one binary frame."""
    code = _BINARY_CODES.get(op)
    if code is None:
        raise TransportError(f"op {op!r} has no binary encoding")
    kind = packet.kind.encode("utf-8")
    if len(kind) > 255:
        raise TransportError(f"packet kind too long for binary wire: {packet.kind!r}")
    t = packet.t_origin
    header = _BIN_HEADER.pack(
        BINARY_MAGIC,
        code,
        int(packet.source),
        int(packet.destination),
        int(packet.seqno),
        packet.size_bits,
        int(packet.channel),
        int(packet.radio),
        _NAN if packet.t_origin is None else packet.t_origin,
        _NAN if packet.t_receipt is None else packet.t_receipt,
        _NAN if packet.t_forward is None else packet.t_forward,
        _NAN if packet.t_delivered is None else packet.t_delivered,
        len(kind),
    )
    return b"".join((header, kind, packet.payload))


def decode_packet_binary(data: bytes) -> tuple[str, Packet]:
    """Decode one binary frame; returns ``(op_name, packet)``.

    Raises :class:`TransportError` on truncation, a bad magic/op byte, or
    field values the :class:`Packet` constructor rejects.
    """
    try:
        (
            magic, code, src, dst, seq, bits, ch, radio,
            t_origin, t_receipt, t_forward, t_delivered, kind_len,
        ) = _BIN_HEADER.unpack_from(data)
    except struct.error as exc:
        raise TransportError(f"truncated binary frame: {exc}") from exc
    if magic != BINARY_MAGIC:
        raise TransportError(f"bad binary magic: {magic:#x}")
    op = _BINARY_OPS.get(code)
    if op is None:
        raise TransportError(f"unknown binary op code: {code}")
    kind_end = _BIN_HEADER.size + kind_len
    if len(data) < kind_end:
        raise TransportError("binary frame truncated inside kind field")
    try:
        packet = Packet(
            source=NodeId(src),
            destination=NodeId(dst),
            payload=data[kind_end:],
            size_bits=bits,
            seqno=SequenceNumber(seq),
            channel=ChannelId(ch),
            radio=RadioIndex(radio),
            kind=data[_BIN_HEADER.size : kind_end].decode("utf-8"),
            t_origin=None if _isnan(t_origin) else t_origin,
            t_receipt=None if _isnan(t_receipt) else t_receipt,
            t_forward=None if _isnan(t_forward) else t_forward,
            t_delivered=None if _isnan(t_delivered) else t_delivered,
        )
    except (ValueError, UnicodeDecodeError, ConfigurationError) as exc:
        raise TransportError(f"malformed binary packet frame: {exc}") from exc
    return op, packet
