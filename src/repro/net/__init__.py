"""TCP/IP substrate: framing, wire messages, deterministic virtual links."""
