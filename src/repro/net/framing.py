"""Length-prefixed message framing over stream sockets.

PoEm connects clients and server "through TCP/IP connections independent
of low layers" (§3.1).  TCP is a byte stream, so every message is framed
with a 4-byte big-endian length prefix.  A maximum frame size guards the
server against a misbehaving client streaming an absurd length (the frame
would otherwise be buffered wholesale).
"""

from __future__ import annotations

import socket
import struct
from typing import Optional

from ..errors import FramingError, TransportError

__all__ = [
    "MAX_FRAME",
    "send_frame",
    "send_frames",
    "recv_frame",
    "pack_frame",
    "FrameBuffer",
]

MAX_FRAME = 16 * 1024 * 1024
"""Upper bound on one frame's payload (16 MiB)."""

_HEADER = struct.Struct(">I")


def pack_frame(payload: bytes) -> bytes:
    """Prefix ``payload`` with its length."""
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame too large: {len(payload)} > {MAX_FRAME}")
    return _HEADER.pack(len(payload)) + payload


def send_frame(sock: socket.socket, payload: bytes) -> None:
    """Send one framed message (blocking)."""
    try:
        sock.sendall(pack_frame(payload))
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def send_frames(sock: socket.socket, payloads: list[bytes]) -> None:
    """Send several framed messages with **one** ``sendall``.

    The sender-loop hot path: a burst of deliveries leaving for the same
    client coalesces into a single syscall (and usually one TCP segment)
    instead of one write per frame.
    """
    if not payloads:
        return
    try:
        sock.sendall(b"".join(pack_frame(p) for p in payloads))
    except OSError as exc:
        raise TransportError(f"send failed: {exc}") from exc


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on orderly EOF at a frame boundary."""
    chunks: list[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(min(n - got, 65536))
        except OSError as exc:
            raise TransportError(f"recv failed: {exc}") from exc
        if not chunk:
            if got == 0:
                return None
            raise FramingError(f"connection closed mid-frame ({got}/{n} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> Optional[bytes]:
    """Receive one framed message; None on orderly peer close."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise FramingError(f"peer announced oversized frame: {length}")
    if length == 0:
        return b""
    body = _recv_exact(sock, length)
    if body is None:
        raise FramingError("connection closed between header and body")
    return body


class FrameBuffer:
    """Incremental de-framer for non-blocking / chunked input.

    Feed arbitrary byte chunks; complete frames pop out.  Used by tests to
    validate framing without sockets and available for selector-based
    servers.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Append ``data``; return every now-complete frame payload."""
        self._buf.extend(data)
        frames: list[bytes] = []
        while True:
            if len(self._buf) < _HEADER.size:
                break
            (length,) = _HEADER.unpack(self._buf[: _HEADER.size])
            if length > MAX_FRAME:
                raise FramingError(f"oversized frame announced: {length}")
            if len(self._buf) < _HEADER.size + length:
                break
            start = _HEADER.size
            frames.append(bytes(self._buf[start : start + length]))
            del self._buf[: start + length]
        return frames

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet forming a complete frame."""
        return len(self._buf)
